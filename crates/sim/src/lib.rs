//! Discrete-event simulator for preemptive multi-DNN execution
//! (the paper's Phase-2 *Scheduler Engine*).
//!
//! The engine models the paper's execution substrate: a single
//! time-shared accelerator (NPU) that executes one layer(-block) at a
//! time. At every layer completion — and at arrival when idle — the
//! scheduler is consulted for the next request to run, which is exactly
//! the preemption granularity of the paper's Algorithm 2. Layer latencies
//! are replayed from the Phase-1 traces, so all schedulers see identical
//! work and differ only in ordering decisions.
//!
//! [`metrics`] computes the paper's three evaluation metrics: average
//! normalized turnaround time (ANTT), latency-SLO violation rate, and
//! system throughput (STP).
//!
//! # Examples
//!
//! ```
//! use dysta_core::Policy;
//! use dysta_sim::{simulate, EngineConfig};
//! use dysta_workload::{Scenario, WorkloadBuilder};
//!
//! let workload = WorkloadBuilder::new(Scenario::MultiCnn)
//!     .num_requests(30)
//!     .samples_per_variant(8)
//!     .seed(1)
//!     .build();
//! let report = simulate(&workload, Policy::Dysta.build().as_mut(), &EngineConfig::default());
//! assert_eq!(report.completed().len(), 30);
//! assert!(report.antt() >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod metrics;
mod node;
mod report;

pub use engine::{simulate, simulate_traced, EngineConfig};
pub use node::{NodeEngine, TransferableTask};
pub use report::{
    percentile_ns, percentile_ns_sorted, CompletedRequest, Metrics, SimReport, TimelineSegment,
};
