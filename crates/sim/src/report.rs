//! Simulation results and summary metrics.

use serde::{Deserialize, Serialize};

use dysta_trace::SparseModelSpec;

/// The lifecycle record of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// Request id.
    pub id: u64,
    /// Sparse-model variant.
    pub spec: SparseModelSpec,
    /// Arrival time (ns).
    pub arrival_ns: u64,
    /// Completion time (ns).
    pub completion_ns: u64,
    /// Isolated execution time `T_isol` (ns).
    pub isolated_ns: u64,
    /// Relative latency SLO (ns).
    pub slo_ns: u64,
}

impl CompletedRequest {
    /// Turnaround time under multi-tenancy `T_multi` (ns).
    pub fn turnaround_ns(&self) -> u64 {
        self.completion_ns - self.arrival_ns
    }

    /// Normalized turnaround `T_multi / T_isol` (≥ 1).
    pub fn normalized_turnaround(&self) -> f64 {
        self.turnaround_ns() as f64 / self.isolated_ns.max(1) as f64
    }

    /// True if the request missed its latency SLO.
    pub fn violated(&self) -> bool {
        self.turnaround_ns() > self.slo_ns
    }
}

/// Aggregate metrics of one run — the paper's evaluation triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Average normalized turnaround time (Eyerman & Eeckhout).
    pub antt: f64,
    /// Fraction of requests that missed their SLO, in `[0, 1]`.
    pub violation_rate: f64,
    /// System throughput in completed inferences per second.
    pub throughput_inf_s: f64,
}

/// One contiguous stretch of accelerator time given to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineSegment {
    /// Request id being served.
    pub task_id: u64,
    /// Segment start (ns).
    pub start_ns: u64,
    /// Segment end (ns, exclusive).
    pub end_ns: u64,
}

impl TimelineSegment {
    /// Segment duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Nearest-rank percentile of a set of nanosecond samples: the smallest
/// sample such that at least `p` percent of the set is `<=` it. Defined
/// as 0 for an empty set (mirroring the other neutral empty-report
/// metrics) and as the minimum for `p == 0`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// use dysta_sim::percentile_ns;
///
/// let waits = [40, 10, 20, 30];
/// assert_eq!(percentile_ns(&waits, 50.0), 20);
/// assert_eq!(percentile_ns(&waits, 99.0), 40);
/// assert_eq!(percentile_ns(&[], 99.0), 0);
/// ```
pub fn percentile_ns(values: &[u64], p: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    percentile_ns_sorted(&sorted, p)
}

/// [`percentile_ns`] over an already-sorted sample set — for callers
/// that read several percentiles from one set and want to sort once.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`. Debug-asserts the input is
/// sorted.
pub fn percentile_ns_sorted(sorted: &[u64], p: f64) -> u64 {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be in [0, 100], got {p}"
    );
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The full outcome of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    completed: Vec<CompletedRequest>,
    preemptions: u64,
    scheduler_invocations: u64,
    timeline: Vec<TimelineSegment>,
}

impl SimReport {
    /// Assembles a report. An empty completion list is allowed (a
    /// cluster node that was never routed a request reports one).
    pub fn new(
        completed: Vec<CompletedRequest>,
        preemptions: u64,
        scheduler_invocations: u64,
    ) -> Self {
        SimReport::with_timeline(completed, preemptions, scheduler_invocations, Vec::new())
    }

    /// Assembles a report including the execution timeline.
    pub fn with_timeline(
        completed: Vec<CompletedRequest>,
        preemptions: u64,
        scheduler_invocations: u64,
        timeline: Vec<TimelineSegment>,
    ) -> Self {
        SimReport {
            completed,
            preemptions,
            scheduler_invocations,
            timeline,
        }
    }

    /// The execution timeline: maximal contiguous service segments in
    /// time order (empty unless the engine was asked to record it).
    pub fn timeline(&self) -> &[TimelineSegment] {
        &self.timeline
    }

    /// All completed requests, sorted by id.
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Number of times execution switched between different requests.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Number of scheduling decisions taken (one per executed layer).
    pub fn scheduler_invocations(&self) -> u64 {
        self.scheduler_invocations
    }

    /// Average normalized turnaround time (0 for an empty report).
    pub fn antt(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed
            .iter()
            .map(CompletedRequest::normalized_turnaround)
            .sum::<f64>()
            / self.completed.len() as f64
    }

    /// SLO violation rate in `[0, 1]` (0 for an empty report).
    pub fn violation_rate(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().filter(|c| c.violated()).count() as f64 / self.completed.len() as f64
    }

    /// System throughput: completions per second of wall-clock span
    /// (first arrival to last completion).
    pub fn throughput_inf_s(&self) -> f64 {
        let first = self
            .completed
            .iter()
            .map(|c| c.arrival_ns)
            .min()
            .unwrap_or(0);
        let last = self
            .completed
            .iter()
            .map(|c| c.completion_ns)
            .max()
            .unwrap_or(1);
        let span_s = (last.saturating_sub(first)) as f64 / 1e9;
        if span_s <= 0.0 {
            0.0
        } else {
            self.completed.len() as f64 / span_s
        }
    }

    /// Nearest-rank percentile of per-request turnaround time — the
    /// tail-latency view serving systems are judged by (p99 next to the
    /// mean-centric ANTT). 0 for an empty report.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn turnaround_percentile_ns(&self, p: f64) -> u64 {
        let turnarounds: Vec<u64> = self
            .completed
            .iter()
            .map(CompletedRequest::turnaround_ns)
            .collect();
        percentile_ns(&turnarounds, p)
    }

    /// The three paper metrics as one value.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            antt: self.antt(),
            violation_rate: self.violation_rate(),
            throughput_inf_s: self.throughput_inf_s(),
        }
    }

    /// Per-model breakdown: `(model, request count, ANTT, violation
    /// rate)`, sorted by model id. Shows *which* tenants a scheduler
    /// sacrifices (FCFS hurts short models, EDF hurts long ones).
    pub fn per_model(&self) -> Vec<(dysta_models::ModelId, usize, f64, f64)> {
        let mut by_model: std::collections::BTreeMap<dysta_models::ModelId, (usize, f64, usize)> =
            std::collections::BTreeMap::new();
        for c in &self.completed {
            let entry = by_model.entry(c.spec.model).or_insert((0, 0.0, 0));
            entry.0 += 1;
            entry.1 += c.normalized_turnaround();
            entry.2 += usize::from(c.violated());
        }
        by_model
            .into_iter()
            .map(|(model, (n, ntt_sum, viols))| {
                (model, n, ntt_sum / n as f64, viols as f64 / n as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;

    fn req(id: u64, arrival: u64, completion: u64, isolated: u64, slo: u64) -> CompletedRequest {
        CompletedRequest {
            id,
            spec: SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0),
            arrival_ns: arrival,
            completion_ns: completion,
            isolated_ns: isolated,
            slo_ns: slo,
        }
    }

    #[test]
    fn antt_formula() {
        // NTTs: 2.0 and 4.0 -> ANTT 3.0.
        let r = SimReport::new(vec![req(0, 0, 20, 10, 100), req(1, 0, 40, 10, 100)], 0, 0);
        assert!((r.antt() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn violation_rate_counts_misses() {
        let r = SimReport::new(
            vec![
                req(0, 0, 20, 10, 15), // violated (turnaround 20 > 15)
                req(1, 0, 12, 10, 15), // met
            ],
            0,
            0,
        );
        assert!((r.violation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_spans_first_arrival_to_last_completion() {
        let r = SimReport::new(
            vec![
                req(0, 1_000_000_000, 2_000_000_000, 10, u64::MAX),
                req(1, 1_500_000_000, 3_000_000_000, 10, u64::MAX),
            ],
            0,
            0,
        );
        // 2 completions over 2 seconds.
        assert!((r.throughput_inf_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_model_breakdown_partitions_requests() {
        let mut bert_req = req(0, 0, 20, 10, 15);
        bert_req.spec = SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0);
        let r = SimReport::new(vec![bert_req, req(1, 0, 12, 10, 15)], 0, 0);
        let breakdown = r.per_model();
        assert_eq!(breakdown.len(), 2);
        let total: usize = breakdown.iter().map(|(_, n, _, _)| n).sum();
        assert_eq!(total, 2);
        let bert = breakdown
            .iter()
            .find(|(m, ..)| *m == ModelId::Bert)
            .unwrap();
        assert_eq!(bert.1, 1);
        assert!((bert.2 - 2.0).abs() < 1e-12); // NTT 20/10
        assert_eq!(bert.3, 1.0); // violated
    }

    #[test]
    fn ntt_is_at_least_one_for_feasible_schedules() {
        let c = req(0, 0, 10, 10, 100);
        assert!(c.normalized_turnaround() >= 1.0);
        assert!(!c.violated());
    }
}
