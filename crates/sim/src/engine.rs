//! The event loop.

use dysta_core::{ModelInfoLut, MonitoredLayer, Scheduler, TaskState};
use dysta_workload::Workload;

use crate::report::{CompletedRequest, SimReport};

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Cost of switching the accelerator to a *different* request than
    /// the one that ran last (weight/activation refetch across the
    /// off-chip boundary). The paper's penalty term exists to bound how
    /// often this is paid.
    pub preemption_overhead_ns: u64,
    /// Record the execution timeline (maximal contiguous service
    /// segments) in the report. Off by default: large workloads produce
    /// many segments.
    pub record_timeline: bool,
    /// Scheduling granularity: how many consecutive layers of the chosen
    /// request execute before the scheduler is consulted again. The
    /// paper's execution model is "per-layer or per-layer-block"
    /// (Algorithm 2); 1 = per-layer, larger values model fused blocks
    /// with cheaper scheduling but coarser preemption.
    pub layers_per_block: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            preemption_overhead_ns: 20_000,
            record_timeline: false,
            layers_per_block: 1,
        }
    }
}

/// Replays `workload` under `scheduler` and returns the completion record.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Panics
///
/// Panics if the workload is empty.
pub fn simulate(
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    config: &EngineConfig,
) -> SimReport {
    let requests = workload.requests();
    assert!(!requests.is_empty(), "workload must contain requests");
    assert!(config.layers_per_block > 0, "block must contain layers");
    let lut = ModelInfoLut::from_store(workload.store());

    let mut tasks: Vec<TaskState> = Vec::with_capacity(requests.len());
    // Trace backing each task, parallel to `tasks` (ids need not index
    // `requests`).
    let mut traces: Vec<&dysta_trace::SampleTrace> = Vec::with_capacity(requests.len());
    let mut active: Vec<usize> = Vec::new();
    let mut completed: Vec<CompletedRequest> = Vec::with_capacity(requests.len());
    let mut next_arrival = 0usize;
    let mut now_ns = 0u64;
    let mut last_ran: Option<u64> = None;
    let mut preemptions = 0u64;
    let mut invocations = 0u64;
    let mut timeline: Vec<crate::report::TimelineSegment> = Vec::new();

    loop {
        // Admit everything that has arrived by `now`.
        while next_arrival < requests.len() && requests[next_arrival].arrival_ns <= now_ns {
            let req = &requests[next_arrival];
            let trace = workload.trace_for(req);
            let task = TaskState {
                id: req.id,
                spec: req.spec,
                arrival_ns: req.arrival_ns,
                slo_ns: req.slo_ns,
                next_layer: 0,
                num_layers: trace.num_layers(),
                executed_ns: 0,
                monitored: Vec::new(),
                true_remaining_ns: trace.isolated_latency_ns(),
            };
            scheduler.on_arrival(&task, &lut, req.arrival_ns);
            tasks.push(task);
            traces.push(trace);
            active.push(tasks.len() - 1);
            next_arrival += 1;
        }

        if active.is_empty() {
            if next_arrival >= requests.len() {
                break;
            }
            // Idle: jump to the next arrival.
            now_ns = now_ns.max(requests[next_arrival].arrival_ns);
            continue;
        }

        // Consult the scheduler.
        let queue: Vec<&TaskState> = active.iter().map(|&i| &tasks[i]).collect();
        invocations += 1;
        let pick = scheduler.pick_next(&queue, &lut, now_ns);
        assert!(pick < queue.len(), "scheduler returned out-of-range index");
        let task_idx = active[pick];

        // Pay the context switch when execution moves between requests.
        let switching = last_ran.is_some() && last_ran != Some(tasks[task_idx].id);
        if switching {
            preemptions += 1;
            now_ns += config.preemption_overhead_ns;
        }
        last_ran = Some(tasks[task_idx].id);

        // Execute one scheduling quantum: up to `layers_per_block`
        // consecutive layers of the chosen request.
        let trace = traces[task_idx];
        for _ in 0..config.layers_per_block {
            if tasks[task_idx].finished() {
                break;
            }
            let layer = trace.layers()[tasks[task_idx].next_layer];
            if config.record_timeline {
                let start = now_ns;
                let end = now_ns + layer.latency_ns;
                // Extend the previous segment when the same task
                // continues back-to-back.
                match timeline.last_mut() {
                    Some(seg)
                        if seg.task_id == tasks[task_idx].id && seg.end_ns == start =>
                    {
                        seg.end_ns = end;
                    }
                    _ => timeline.push(crate::report::TimelineSegment {
                        task_id: tasks[task_idx].id,
                        start_ns: start,
                        end_ns: end,
                    }),
                }
            }
            now_ns += layer.latency_ns;
            let task = &mut tasks[task_idx];
            task.next_layer += 1;
            task.executed_ns += layer.latency_ns;
            task.monitored.push(MonitoredLayer {
                sparsity: layer.sparsity,
                latency_ns: layer.latency_ns,
            });
            task.true_remaining_ns = trace.remaining_ns(task.next_layer);
        }
        scheduler.on_layer_complete(&tasks[task_idx], &lut, now_ns);

        if tasks[task_idx].finished() {
            let task = &tasks[task_idx];
            scheduler.on_task_complete(task, now_ns);
            completed.push(CompletedRequest {
                id: task.id,
                spec: task.spec,
                arrival_ns: task.arrival_ns,
                completion_ns: now_ns,
                isolated_ns: trace.isolated_latency_ns(),
                slo_ns: task.slo_ns,
            });
            active.remove(
                active
                    .iter()
                    .position(|&i| i == task_idx)
                    .expect("task was active"),
            );
        }
    }

    completed.sort_by_key(|c| c.id);
    SimReport::with_timeline(completed, preemptions, invocations, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_core::Policy;
    use dysta_workload::{Scenario, WorkloadBuilder};

    fn tiny_workload(seed: u64) -> Workload {
        WorkloadBuilder::new(Scenario::MultiCnn)
            .num_requests(40)
            .samples_per_variant(8)
            .seed(seed)
            .build()
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let w = tiny_workload(1);
        for policy in Policy::ALL {
            let r = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
            assert_eq!(r.completed().len(), 40, "{policy}");
            let mut ids: Vec<u64> = r.completed().iter().map(|c| c.id).collect();
            ids.dedup();
            assert_eq!(ids.len(), 40, "{policy}: duplicate completions");
        }
    }

    #[test]
    fn completions_after_arrivals() {
        let w = tiny_workload(2);
        let r = simulate(&w, Policy::Sjf.build().as_mut(), &EngineConfig::default());
        for c in r.completed() {
            assert!(c.completion_ns >= c.arrival_ns + c.isolated_ns);
        }
    }

    #[test]
    fn fcfs_completes_in_arrival_order() {
        let w = tiny_workload(3);
        let r = simulate(&w, Policy::Fcfs.build().as_mut(), &EngineConfig::default());
        let mut by_completion: Vec<&CompletedRequest> = r.completed().iter().collect();
        by_completion.sort_by_key(|c| c.completion_ns);
        let arrivals: Vec<u64> = by_completion.iter().map(|c| c.arrival_ns).collect();
        assert!(
            arrivals.windows(2).all(|p| p[0] <= p[1]),
            "FCFS must finish in arrival order"
        );
    }

    #[test]
    fn deterministic_replay() {
        let w = tiny_workload(4);
        let a = simulate(&w, Policy::Dysta.build().as_mut(), &EngineConfig::default());
        let b = simulate(&w, Policy::Dysta.build().as_mut(), &EngineConfig::default());
        assert_eq!(a.completed(), b.completed());
    }

    #[test]
    fn preemption_overhead_lengthens_makespan() {
        let w = tiny_workload(5);
        let cheap = simulate(
            &w,
            Policy::Dysta.build().as_mut(),
            &EngineConfig {
                preemption_overhead_ns: 0,
                ..EngineConfig::default()
            },
        );
        let costly = simulate(
            &w,
            Policy::Dysta.build().as_mut(),
            &EngineConfig {
                preemption_overhead_ns: 5_000_000,
                ..EngineConfig::default()
            },
        );
        let makespan = |r: &SimReport| r.completed().iter().map(|c| c.completion_ns).max();
        assert!(makespan(&costly) >= makespan(&cheap));
    }

    #[test]
    fn fcfs_never_preempts() {
        let w = tiny_workload(6);
        let r = simulate(&w, Policy::Fcfs.build().as_mut(), &EngineConfig::default());
        // FCFS runs each task to completion: switches = completions - 1
        // at most (one switch per task boundary), never mid-task.
        assert!(r.preemptions() <= 39, "{}", r.preemptions());
    }

    #[test]
    fn timeline_is_ordered_disjoint_and_covers_all_work() {
        let w = tiny_workload(8);
        let config = EngineConfig {
            record_timeline: true,
            ..EngineConfig::default()
        };
        for policy in [Policy::Fcfs, Policy::Dysta] {
            let r = simulate(&w, policy.build().as_mut(), &config);
            let timeline = r.timeline();
            assert!(!timeline.is_empty(), "{policy}");
            for pair in timeline.windows(2) {
                assert!(pair[0].end_ns <= pair[1].start_ns, "{policy}: overlap");
            }
            // Total service equals the sum of isolated latencies.
            let served: u64 = timeline.iter().map(|s| s.duration_ns()).sum();
            let total: u64 = w.requests().iter().map(|r| w.isolated_ns(r)).sum();
            assert_eq!(served, total, "{policy}");
            // Per-task service matches each request's isolated latency.
            for req in w.requests() {
                let per_task: u64 = timeline
                    .iter()
                    .filter(|s| s.task_id == req.id)
                    .map(|s| s.duration_ns())
                    .sum();
                assert_eq!(per_task, w.isolated_ns(req), "{policy}: task {}", req.id);
            }
        }
    }

    #[test]
    fn coarser_blocks_reduce_scheduler_invocations() {
        let w = tiny_workload(10);
        let total_layers: u64 = w
            .requests()
            .iter()
            .map(|r| w.trace_for(r).num_layers() as u64)
            .sum();
        let mut prev_invocations = u64::MAX;
        for block in [1usize, 4, 16] {
            let config = EngineConfig {
                layers_per_block: block,
                ..EngineConfig::default()
            };
            let r = simulate(&w, Policy::Dysta.build().as_mut(), &config);
            assert_eq!(r.completed().len(), 40, "block {block}");
            assert!(
                r.scheduler_invocations() < prev_invocations,
                "block {block}"
            );
            assert!(r.scheduler_invocations() >= total_layers / block as u64);
            prev_invocations = r.scheduler_invocations();
        }
    }

    #[test]
    #[should_panic(expected = "block must contain layers")]
    fn zero_block_rejected() {
        let w = tiny_workload(11);
        let config = EngineConfig {
            layers_per_block: 0,
            ..EngineConfig::default()
        };
        let _ = simulate(&w, Policy::Fcfs.build().as_mut(), &config);
    }

    #[test]
    fn timeline_off_by_default() {
        let w = tiny_workload(9);
        let r = simulate(&w, Policy::Fcfs.build().as_mut(), &EngineConfig::default());
        assert!(r.timeline().is_empty());
    }

    #[test]
    fn scheduler_invoked_once_per_layer() {
        let w = tiny_workload(7);
        let total_layers: u64 = w
            .requests()
            .iter()
            .map(|r| w.trace_for(r).num_layers() as u64)
            .sum();
        let r = simulate(&w, Policy::Sjf.build().as_mut(), &EngineConfig::default());
        assert_eq!(r.scheduler_invocations(), total_layers);
    }
}
