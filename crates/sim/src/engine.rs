//! The event loop.

use dysta_core::{ModelInfoLut, Scheduler};
use dysta_obs::{EventKind, TraceEvent, Tracer, NODE_FRONTEND};
use dysta_trace::SparseModelSpec;
use dysta_workload::Workload;

use crate::node::NodeEngine;
use crate::report::SimReport;

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Cost of switching the accelerator to a *different* request than
    /// the one that ran last (weight/activation refetch across the
    /// off-chip boundary). The paper's penalty term exists to bound how
    /// often this is paid.
    pub preemption_overhead_ns: u64,
    /// Record the execution timeline (maximal contiguous service
    /// segments) in the report. Off by default: large workloads produce
    /// many segments.
    pub record_timeline: bool,
    /// Scheduling granularity: how many consecutive layers of the chosen
    /// request execute before the scheduler is consulted again. The
    /// paper's execution model is "per-layer or per-layer-block"
    /// (Algorithm 2); 1 = per-layer, larger values model fused blocks
    /// with cheaper scheduling but coarser preemption.
    pub layers_per_block: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            preemption_overhead_ns: 20_000,
            record_timeline: false,
            layers_per_block: 1,
        }
    }
}

/// Replays `workload` under `scheduler` and returns the completion record.
///
/// A thin wrapper over [`NodeEngine`]: every request is enqueued up
/// front on one node, which then runs to completion. Deterministic:
/// identical inputs produce identical reports.
///
/// # Panics
///
/// Panics if the workload is empty.
pub fn simulate(
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    config: &EngineConfig,
) -> SimReport {
    let requests = workload.requests();
    assert!(!requests.is_empty(), "workload must contain requests");
    let lut = ModelInfoLut::from_store(workload.store());
    let mut node: NodeEngine<'_, &mut dyn Scheduler> = NodeEngine::new(0, scheduler, *config, lut);
    for req in requests {
        node.enqueue(req, workload.trace_for(req));
    }
    node.run_to_completion();
    node.into_report()
}

/// [`simulate`] with observability: the single node reports to
/// `tracer` (pass `&RingTracer` to record), emitting an arrival and a
/// dispatch event per request up front plus execution segments,
/// preemptions, and completions as the run unfolds.
///
/// With the same workload, scheduler, and config, the returned report
/// is identical to [`simulate`]'s — tracing observes the run without
/// perturbing it (pinned by tests).
///
/// # Panics
///
/// Panics if the workload is empty.
pub fn simulate_traced<T: Tracer>(
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    config: &EngineConfig,
    tracer: T,
) -> SimReport {
    let requests = workload.requests();
    assert!(!requests.is_empty(), "workload must contain requests");
    let lut = ModelInfoLut::from_store(workload.store());
    tracer.name_node(0, "node0");
    // Intern one label per model variant; the per-request loop then
    // reuses ids (and one scratch string) instead of re-formatting.
    // Keyed by spec equality (a linear scan over a handful of variants)
    // rather than `variant_id` — enqueue already pays that binary
    // search, and a disabled tracer skips this block outright, so the
    // NullTracer path does exactly the work `simulate` does.
    let mut labels: Vec<(SparseModelSpec, u32)> = Vec::new();
    let mut scratch = String::new();
    let mut node: NodeEngine<'_, &mut dyn Scheduler, &T> =
        NodeEngine::with_tracer(0, scheduler, *config, lut, &tracer);
    for req in requests {
        if tracer.enabled() {
            let label = match labels.iter().find(|(spec, _)| *spec == req.spec) {
                Some(&(_, id)) => id,
                None => {
                    use std::fmt::Write as _;
                    scratch.clear();
                    write!(scratch, "{}", req.spec).expect("write to String");
                    let id = tracer.intern(&scratch);
                    labels.push((req.spec, id));
                    id
                }
            };
            tracer.record(TraceEvent {
                t_ns: req.arrival_ns,
                request: req.id,
                node: NODE_FRONTEND,
                kind: EventKind::Arrival,
                a: u64::from(label),
                b: req.slo_ns as i64,
            });
            // Single-node serving has no front-end: requests land on
            // the node the instant they arrive.
            tracer.record(TraceEvent {
                t_ns: req.arrival_ns,
                request: req.id,
                node: 0,
                kind: EventKind::Dispatch,
                a: 0,
                b: req.slo_ns as i64,
            });
        }
        node.enqueue(req, workload.trace_for(req));
    }
    node.run_to_completion();
    node.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CompletedRequest;
    use dysta_core::Policy;
    use dysta_workload::{Scenario, WorkloadBuilder};

    fn tiny_workload(seed: u64) -> Workload {
        WorkloadBuilder::new(Scenario::MultiCnn)
            .num_requests(40)
            .samples_per_variant(8)
            .seed(seed)
            .build()
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let w = tiny_workload(1);
        for policy in Policy::ALL {
            let r = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
            assert_eq!(r.completed().len(), 40, "{policy}");
            let mut ids: Vec<u64> = r.completed().iter().map(|c| c.id).collect();
            ids.dedup();
            assert_eq!(ids.len(), 40, "{policy}: duplicate completions");
        }
    }

    #[test]
    fn completions_after_arrivals() {
        let w = tiny_workload(2);
        let r = simulate(&w, Policy::Sjf.build().as_mut(), &EngineConfig::default());
        for c in r.completed() {
            assert!(c.completion_ns >= c.arrival_ns + c.isolated_ns);
        }
    }

    #[test]
    fn fcfs_completes_in_arrival_order() {
        let w = tiny_workload(3);
        let r = simulate(&w, Policy::Fcfs.build().as_mut(), &EngineConfig::default());
        let mut by_completion: Vec<&CompletedRequest> = r.completed().iter().collect();
        by_completion.sort_by_key(|c| c.completion_ns);
        let arrivals: Vec<u64> = by_completion.iter().map(|c| c.arrival_ns).collect();
        assert!(
            arrivals.windows(2).all(|p| p[0] <= p[1]),
            "FCFS must finish in arrival order"
        );
    }

    #[test]
    fn deterministic_replay() {
        let w = tiny_workload(4);
        let a = simulate(&w, Policy::Dysta.build().as_mut(), &EngineConfig::default());
        let b = simulate(&w, Policy::Dysta.build().as_mut(), &EngineConfig::default());
        assert_eq!(a.completed(), b.completed());
    }

    #[test]
    fn preemption_overhead_lengthens_makespan() {
        let w = tiny_workload(5);
        let cheap = simulate(
            &w,
            Policy::Dysta.build().as_mut(),
            &EngineConfig {
                preemption_overhead_ns: 0,
                ..EngineConfig::default()
            },
        );
        let costly = simulate(
            &w,
            Policy::Dysta.build().as_mut(),
            &EngineConfig {
                preemption_overhead_ns: 5_000_000,
                ..EngineConfig::default()
            },
        );
        let makespan = |r: &SimReport| r.completed().iter().map(|c| c.completion_ns).max();
        assert!(makespan(&costly) >= makespan(&cheap));
    }

    #[test]
    fn fcfs_never_preempts() {
        let w = tiny_workload(6);
        let r = simulate(&w, Policy::Fcfs.build().as_mut(), &EngineConfig::default());
        // FCFS runs each task to completion: switches = completions - 1
        // at most (one switch per task boundary), never mid-task.
        assert!(r.preemptions() <= 39, "{}", r.preemptions());
    }

    #[test]
    fn timeline_is_ordered_disjoint_and_covers_all_work() {
        let w = tiny_workload(8);
        let config = EngineConfig {
            record_timeline: true,
            ..EngineConfig::default()
        };
        for policy in [Policy::Fcfs, Policy::Dysta] {
            let r = simulate(&w, policy.build().as_mut(), &config);
            let timeline = r.timeline();
            assert!(!timeline.is_empty(), "{policy}");
            for pair in timeline.windows(2) {
                assert!(pair[0].end_ns <= pair[1].start_ns, "{policy}: overlap");
            }
            // Total service equals the sum of isolated latencies.
            let served: u64 = timeline.iter().map(|s| s.duration_ns()).sum();
            let total: u64 = w.requests().iter().map(|r| w.isolated_ns(r)).sum();
            assert_eq!(served, total, "{policy}");
            // Per-task service matches each request's isolated latency.
            for req in w.requests() {
                let per_task: u64 = timeline
                    .iter()
                    .filter(|s| s.task_id == req.id)
                    .map(|s| s.duration_ns())
                    .sum();
                assert_eq!(per_task, w.isolated_ns(req), "{policy}: task {}", req.id);
            }
        }
    }

    #[test]
    fn coarser_blocks_reduce_scheduler_invocations() {
        let w = tiny_workload(10);
        let total_layers: u64 = w
            .requests()
            .iter()
            .map(|r| w.trace_for(r).num_layers() as u64)
            .sum();
        let mut prev_invocations = u64::MAX;
        for block in [1usize, 4, 16] {
            let config = EngineConfig {
                layers_per_block: block,
                ..EngineConfig::default()
            };
            let r = simulate(&w, Policy::Dysta.build().as_mut(), &config);
            assert_eq!(r.completed().len(), 40, "block {block}");
            assert!(
                r.scheduler_invocations() < prev_invocations,
                "block {block}"
            );
            assert!(r.scheduler_invocations() >= total_layers / block as u64);
            prev_invocations = r.scheduler_invocations();
        }
    }

    #[test]
    #[should_panic(expected = "block must contain layers")]
    fn zero_block_rejected() {
        let w = tiny_workload(11);
        let config = EngineConfig {
            layers_per_block: 0,
            ..EngineConfig::default()
        };
        let _ = simulate(&w, Policy::Fcfs.build().as_mut(), &config);
    }

    #[test]
    fn timeline_off_by_default() {
        let w = tiny_workload(9);
        let r = simulate(&w, Policy::Fcfs.build().as_mut(), &EngineConfig::default());
        assert!(r.timeline().is_empty());
    }

    #[test]
    fn scheduler_invoked_once_per_layer() {
        let w = tiny_workload(7);
        let total_layers: u64 = w
            .requests()
            .iter()
            .map(|r| w.trace_for(r).num_layers() as u64)
            .sum();
        let r = simulate(&w, Policy::Sjf.build().as_mut(), &EngineConfig::default());
        assert_eq!(r.scheduler_invocations(), total_layers);
    }

    #[test]
    fn queue_compaction_preserves_determinism_for_every_policy() {
        // Completion removal uses `swap_remove`, which permutes the
        // scheduler-visible queue order. Every shipped policy decides
        // from task fields with id tie-breaks, so replays must stay
        // bit-identical — this is the regression test pinning that down.
        let w = tiny_workload(12);
        for policy in Policy::ALL {
            let a = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
            let b = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
            assert_eq!(a.completed(), b.completed(), "{policy}");
            assert_eq!(a.preemptions(), b.preemptions(), "{policy}");
            assert_eq!(
                a.scheduler_invocations(),
                b.scheduler_invocations(),
                "{policy}"
            );
        }
    }

    #[test]
    fn queue_compaction_keeps_fcfs_arrival_order_under_churn() {
        // Heavy completion churn (many short requests in flight) is
        // where swap_remove shuffles the queue hardest; FCFS semantics
        // must be unaffected.
        let w = WorkloadBuilder::new(Scenario::MultiCnn)
            .arrival_rate(20.0)
            .num_requests(120)
            .samples_per_variant(4)
            .seed(13)
            .build();
        let r = simulate(&w, Policy::Fcfs.build().as_mut(), &EngineConfig::default());
        let mut by_completion: Vec<&CompletedRequest> = r.completed().iter().collect();
        by_completion.sort_by_key(|c| c.completion_ns);
        let arrivals: Vec<u64> = by_completion.iter().map(|c| c.arrival_ns).collect();
        assert!(arrivals.windows(2).all(|p| p[0] <= p[1]));
    }
}
