//! The resumable per-accelerator engine.
//!
//! [`NodeEngine`] is the paper's single-accelerator event loop broken
//! into explicit, externally driveable steps — admit due arrivals, pick,
//! execute one scheduling quantum — so that a pool of nodes can be
//! co-simulated on a shared global clock (see the `dysta-cluster` crate).
//! The classic whole-workload [`crate::simulate`] is a thin wrapper that
//! enqueues every request up front and runs the engine to completion.
//!
//! # Time model
//!
//! Each node owns a local clock `now_ns`. Executing a quantum advances
//! the clock by the quantum's service time (plus a context-switch
//! penalty when execution moves between requests); when the node is idle
//! it jumps forward to the next queued arrival. A cluster driver keeps
//! nodes causally consistent by calling [`NodeEngine::run_until`] with
//! each request's arrival time before routing it: every quantum that
//! *starts* before the arrival has then been executed, which is exactly
//! the information a real dispatcher could have observed.

use std::collections::VecDeque;

use dysta_core::{
    scale_ns, ModelInfoLut, MonitoredLayer, QueuePositions, Scheduler, TaskQueue, TaskState,
};
use dysta_obs::{EventKind, NullTracer, Phase, TraceEvent, Tracer};
use dysta_trace::SampleTrace;
use dysta_workload::Request;

use crate::report::{CompletedRequest, SimReport, TimelineSegment};
use crate::EngineConfig;

/// A request queued on a node but not yet visible to the scheduler
/// (its arrival time is still in the node's future).
struct PendingTask<'w> {
    task: TaskState,
    trace: &'w SampleTrace,
    /// Service-time multiplier on this node (1.0 = the trace's native
    /// accelerator; >1 models running on a mismatched accelerator).
    scale: f64,
}

/// A queued, never-started request withdrawn from one node so a cluster
/// front-end can hand it to a peer (work stealing / migration).
///
/// Produced by [`NodeEngine::take_unstarted`] and consumed by
/// [`NodeEngine::accept_transfer`]; the trace reference stays private so
/// a withdrawn request can only re-enter the system whole.
pub struct TransferableTask<'w> {
    task: TaskState,
    trace: &'w SampleTrace,
}

impl TransferableTask<'_> {
    /// The withdrawn request's scheduler-visible state (always
    /// unstarted).
    pub fn task(&self) -> &TaskState {
        &self.task
    }
}

/// An execution run of one task still accumulating back-to-back
/// quanta; closed (recorded as one [`EventKind::Segment`] event) when
/// execution switches away or the task completes. Coalescing keeps
/// traced runs at one event per context switch instead of one per
/// layer, and the open segment stores only its *start* — the end time
/// is whatever the clock reads at close, and the layer count is the
/// task's `next_layer` delta — so extending a segment costs nothing
/// per quantum. Sound because a same-task *idle* gap cannot occur: an
/// active task stays runnable until it finishes, and the only mid-run
/// clock jump is a transfer's `fetch_ns` ([`NodeEngine::accept_transfer`]),
/// which the running segment absorbs — the node is busy fetching then,
/// not idle.
struct OpenSegment {
    /// Index into the task arena (stable: completions `swap_remove`
    /// from `active`, never from `tasks`).
    task_idx: usize,
    start_ns: u64,
    /// The task's `next_layer` when the segment opened.
    start_layer: usize,
}

/// A single simulated accelerator node: scheduler, task queues, local
/// clock, and completion records.
///
/// Generic over the scheduler storage so the single-node wrapper can
/// borrow (`&mut dyn Scheduler`) while a cluster owns its schedulers
/// (`Box<dyn Scheduler>`, the default), and over the [`Tracer`] so the
/// default untraced engine ([`NullTracer`]) monomorphizes every
/// observability hook away.
///
/// # Examples
///
/// ```
/// use dysta_core::{ModelInfoLut, Policy};
/// use dysta_sim::{EngineConfig, NodeEngine};
/// use dysta_workload::{Scenario, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(Scenario::MultiCnn)
///     .num_requests(10)
///     .samples_per_variant(4)
///     .seed(1)
///     .build();
/// let lut = ModelInfoLut::from_store(w.store());
/// let mut node = NodeEngine::new(0, Policy::Sjf.build(), EngineConfig::default(), lut);
/// for req in w.requests() {
///     node.enqueue(req, w.trace_for(req));
/// }
/// node.run_to_completion();
/// assert_eq!(node.into_report().completed().len(), 10);
/// ```
pub struct NodeEngine<'w, S = Box<dyn Scheduler>, T = NullTracer> {
    id: usize,
    scheduler: S,
    config: EngineConfig,
    lut: ModelInfoLut,
    tracer: T,
    /// Tracing only: the in-progress execution segment (see
    /// [`OpenSegment`]). Stays `None` under a disabled tracer.
    open_seg: Option<OpenSegment>,
    /// Enqueued-but-not-admitted requests, in arrival order.
    pending: VecDeque<PendingTask<'w>>,
    /// All admitted tasks (completed ones stay in place; `active` holds
    /// the live indices).
    tasks: Vec<TaskState>,
    traces: Vec<&'w SampleTrace>,
    scales: Vec<f64>,
    /// Indices into `tasks` of admitted, unfinished tasks. Order is
    /// arbitrary (completion removal is `swap_remove`); schedulers must
    /// not read meaning into queue positions, only into task fields.
    active: Vec<usize>,
    /// id → position in `active`, maintained in lockstep so the
    /// scheduler's indexed pick path can resolve a winning id without a
    /// scan ([`TaskQueue::hooked`]), and so withdrawals are O(log n).
    positions: QueuePositions,
    /// Bumped on every externally observable mutation (clock movement,
    /// queue change, executed work); a cluster front-end caches its
    /// per-node dispatch views against this.
    mutation_epoch: u64,
    now_ns: u64,
    last_ran: Option<u64>,
    preemptions: u64,
    invocations: u64,
    busy_ns: u64,
    timeline: Vec<TimelineSegment>,
    completed: Vec<CompletedRequest>,
}

impl<'w, S: Scheduler> NodeEngine<'w, S, NullTracer> {
    /// Creates an idle, untraced node.
    ///
    /// # Panics
    ///
    /// Panics if the config requests zero layers per block.
    pub fn new(id: usize, scheduler: S, config: EngineConfig, lut: ModelInfoLut) -> Self {
        NodeEngine::with_tracer(id, scheduler, config, lut, NullTracer)
    }
}

impl<'w, S: Scheduler, T: Tracer> NodeEngine<'w, S, T> {
    /// Creates an idle node reporting to `tracer`. The tracer is held
    /// by value; a pool of nodes shares one recorder by passing
    /// `&RingTracer` (every `&T` where `T: Tracer` is itself a tracer).
    ///
    /// # Panics
    ///
    /// Panics if the config requests zero layers per block.
    pub fn with_tracer(
        id: usize,
        scheduler: S,
        config: EngineConfig,
        lut: ModelInfoLut,
        tracer: T,
    ) -> Self {
        assert!(config.layers_per_block > 0, "block must contain layers");
        NodeEngine {
            id,
            scheduler,
            config,
            lut,
            tracer,
            open_seg: None,
            pending: VecDeque::new(),
            tasks: Vec::new(),
            traces: Vec::new(),
            scales: Vec::new(),
            active: Vec::new(),
            positions: QueuePositions::new(),
            mutation_epoch: 0,
            now_ns: 0,
            last_ran: None,
            preemptions: 0,
            invocations: 0,
            busy_ns: 0,
            timeline: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// The node's identifier (used in cluster reports).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's local clock in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// A counter bumped on every externally observable mutation of the
    /// node (clock movement, queue change, executed work). Two equal
    /// readings bracket a window in which any dispatch view of the node
    /// is still valid — the cluster front-end uses this to skip
    /// rebuilding views of untouched nodes.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch
    }

    /// Total service time executed so far (excludes switch overhead and
    /// idle time) — the numerator of the node's utilization.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Number of requests finished so far.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// The completion records appended since `cursor` (a previous
    /// [`NodeEngine::completed_count`] reading), in completion order.
    /// A cluster front-end uses this to retire its live-request
    /// bookkeeping incrementally, so its working set tracks the pool's
    /// backlog instead of the whole trace.
    ///
    /// # Panics
    ///
    /// Panics if `cursor` exceeds the current completion count.
    pub fn completed_since(&self, cursor: usize) -> &[CompletedRequest] {
        &self.completed[cursor..]
    }

    /// Number of admitted-or-queued unfinished requests.
    pub fn queue_len(&self) -> usize {
        self.active.len() + self.pending.len()
    }

    /// True when no unfinished work remains anywhere on the node.
    pub fn is_drained(&self) -> bool {
        self.active.is_empty() && self.pending.is_empty()
    }

    /// The node's LUT (profiled per-variant statistics).
    pub fn lut(&self) -> &ModelInfoLut {
        &self.lut
    }

    /// The node's tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Iterates over every unfinished request on the node — admitted
    /// tasks first, then not-yet-admitted arrivals — paired with the
    /// node-local service-time scale each would execute under.
    pub fn queued_tasks(&self) -> impl Iterator<Item = (&TaskState, f64)> {
        self.active
            .iter()
            .map(|&i| (&self.tasks[i], self.scales[i]))
            .chain(self.pending.iter().map(|p| (&p.task, p.scale)))
    }

    /// Sums `estimator` over every unfinished request, weighting each
    /// estimate by the node-local service-time scale. Dispatchers use
    /// this with a LUT or predictor estimate of remaining work.
    pub fn estimated_backlog_ns(&self, estimator: impl Fn(&TaskState) -> f64) -> f64 {
        self.queued_tasks()
            .map(|(task, scale)| estimator(task) * scale)
            .sum()
    }

    /// Iterates the *admitted but never started* requests — the only
    /// ones a cluster front-end may steal or migrate — paired with the
    /// node-local service-time scale each would execute under.
    pub fn unstarted_tasks(&self) -> impl Iterator<Item = (&TaskState, f64)> {
        self.active
            .iter()
            .map(|&i| (&self.tasks[i], self.scales[i]))
            .filter(|(t, _)| !t.started())
    }

    /// Withdraws the admitted request `id` from the node, provided it
    /// has not executed a single layer. Returns `None` when the request
    /// is unknown here, already started, pending (its arrival is still
    /// in the node's future), or finished — a started task is never
    /// stealable. On success the node's queue shrinks by exactly one and
    /// the scheduler is notified via
    /// [`dysta_core::Scheduler::on_task_removed`].
    pub fn take_unstarted(&mut self, id: u64) -> Option<TransferableTask<'w>> {
        let pos = self.positions.get(id)?;
        let idx = self.active[pos];
        debug_assert_eq!(self.tasks[idx].id, id, "positions out of sync");
        if self.tasks[idx].started() {
            return None;
        }
        // The arena slot stays behind (like completed tasks); only the
        // live index is dropped, so `swap_remove` keeps removal O(1).
        self.remove_active(pos);
        self.mutation_epoch += 1;
        let task = self.tasks[idx].clone();
        self.scheduler.on_task_removed(&task, self.now_ns);
        Some(TransferableTask {
            task,
            trace: self.traces[idx],
        })
    }

    /// Drops `active[pos]`, keeping the id → position map in lockstep
    /// with the `swap_remove` (the old last entry moves into `pos`).
    fn remove_active(&mut self, pos: usize) {
        let idx = self.active.swap_remove(pos);
        self.positions.remove(self.tasks[idx].id);
        if pos < self.active.len() {
            self.positions.set(self.tasks[self.active[pos]].id, pos);
        }
    }

    /// Admits a request withdrawn from a peer node at transfer time
    /// `at_ns`, re-scaling its service time for this node's accelerator.
    /// The request keeps its original arrival time (turnaround metrics
    /// keep charging the full wait) but cannot execute before `at_ns` —
    /// an idle node's clock is pulled forward to the transfer instant.
    ///
    /// `fetch_ns` is the weight/activation re-fetch cost of re-homing
    /// the request: the receiving node's memory interface is occupied
    /// for that long before anything else can run, so the cost lands on
    /// the clock *and* on `busy_ns` (a transfer is work, not idle time).
    /// Pass 0 for the historical free-transfer behavior.
    ///
    /// # Panics
    ///
    /// Panics if `scale < 1` or the task has already started.
    pub fn accept_transfer(
        &mut self,
        transfer: TransferableTask<'w>,
        scale: f64,
        at_ns: u64,
        fetch_ns: u64,
    ) {
        assert!(
            scale >= 1.0 && scale.is_finite(),
            "service-time scale must be >= 1"
        );
        let TransferableTask { mut task, trace } = transfer;
        assert!(!task.started(), "only unstarted tasks can transfer");
        task.true_remaining_ns = scale_ns(trace.isolated_latency_ns(), scale);
        self.now_ns = self.now_ns.max(at_ns) + fetch_ns;
        self.busy_ns += fetch_ns;
        self.mutation_epoch += 1;
        self.scheduler.on_arrival(&task, &self.lut, self.now_ns);
        self.positions.insert(task.id, self.active.len());
        self.tasks.push(task);
        self.traces.push(trace);
        self.scales.push(scale);
        self.active.push(self.tasks.len() - 1);
    }

    /// Crashes the node: every unfinished request — queued, pending,
    /// *and in-flight* — is withdrawn for re-dispatch elsewhere, and the
    /// node is left drained. Returns the withdrawn requests in
    /// `(arrival, id)` order, each paired with the executed work the
    /// crash destroyed on this node (0 for never-started requests).
    ///
    /// A started request is rebuilt from scratch — it will restart from
    /// layer 0 wherever it lands, with a fresh sparsity monitor — so
    /// the returned tasks all satisfy [`NodeEngine::accept_transfer`]'s
    /// unstarted precondition. The node's `busy_ns` keeps the destroyed
    /// work (the accelerator really was occupied); callers account the
    /// returned per-task losses separately. The open trace segment is
    /// flushed first, so executed quanta stay visible in the trace.
    pub fn crash_salvage(&mut self) -> Vec<(TransferableTask<'w>, u64)> {
        self.flush_segment();
        self.mutation_epoch += 1;
        let mut salvaged: Vec<(TransferableTask<'w>, u64)> = Vec::new();
        let active = std::mem::take(&mut self.active);
        self.positions.clear();
        for idx in active {
            let task = self.tasks[idx].clone();
            let lost_ns = task.executed_ns;
            self.scheduler.on_task_removed(&task, self.now_ns);
            let task = if task.started() {
                // Restart from layer 0: fresh monitor state, no executed
                // layers. `accept_transfer` recomputes the remaining
                // time under the new node's scale.
                TaskState::arrived(
                    task.id,
                    task.spec,
                    task.variant,
                    task.arrival_ns,
                    task.slo_ns,
                    self.traces[idx].num_layers(),
                )
            } else {
                task
            };
            salvaged.push((
                TransferableTask {
                    task,
                    trace: self.traces[idx],
                },
                lost_ns,
            ));
        }
        // Pending arrivals were never shown to the scheduler, so there
        // is nothing to notify; they salvage with zero loss.
        for p in self.pending.drain(..) {
            salvaged.push((
                TransferableTask {
                    task: p.task,
                    trace: p.trace,
                },
                0,
            ));
        }
        self.last_ran = None;
        salvaged.sort_by_key(|(t, _)| (t.task.arrival_ns, t.task.id));
        salvaged
    }

    /// Queues `request` on the node at its native service time.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are enqueued out of order.
    pub fn enqueue(&mut self, request: &Request, trace: &'w SampleTrace) {
        self.enqueue_scaled(request, trace, 1.0);
    }

    /// Queues `request` like [`NodeEngine::enqueue_scaled`], flooring
    /// execution at the front-end dispatch instant `at_ns`. The request
    /// keeps its original arrival time (turnaround metrics keep charging
    /// the admission wait), but the node cannot start it before `at_ns`:
    /// an idle node's clock is pulled forward to the dispatch instant,
    /// the same causality guard [`NodeEngine::accept_transfer`] applies
    /// to transfers.
    ///
    /// # Panics
    ///
    /// Panics if `scale < 1`, `at_ns` precedes the request's arrival, or
    /// arrivals are enqueued out of order.
    pub fn enqueue_scaled_at(
        &mut self,
        request: &Request,
        trace: &'w SampleTrace,
        scale: f64,
        at_ns: u64,
    ) {
        assert!(
            at_ns >= request.arrival_ns,
            "dispatch cannot precede arrival"
        );
        self.enqueue_scaled(request, trace, scale);
        self.now_ns = self.now_ns.max(at_ns);
        self.mutation_epoch += 1;
    }

    /// Queues `request` with a service-time multiplier (≥ 1), modelling
    /// execution on an accelerator the model was not profiled on.
    ///
    /// # Panics
    ///
    /// Panics if `scale < 1` or arrivals are enqueued out of order.
    pub fn enqueue_scaled(&mut self, request: &Request, trace: &'w SampleTrace, scale: f64) {
        assert!(
            scale >= 1.0 && scale.is_finite(),
            "service-time scale must be >= 1"
        );
        if let Some(back) = self.pending.back() {
            assert!(
                back.task.arrival_ns <= request.arrival_ns,
                "requests must be enqueued in arrival order"
            );
        }
        // Intern the variant once per request; every per-decision LUT
        // access from here on is a dense array index.
        let variant = self.lut.variant_id(&request.spec).unwrap_or_else(|| {
            panic!(
                "request {} uses unprofiled variant {}",
                request.id, request.spec
            )
        });
        let task = TaskState {
            true_remaining_ns: scale_ns(trace.isolated_latency_ns(), scale),
            ..TaskState::arrived(
                request.id,
                request.spec,
                variant,
                request.arrival_ns,
                request.slo_ns,
                trace.num_layers(),
            )
        };
        self.pending.push_back(PendingTask { task, trace, scale });
        self.mutation_epoch += 1;
    }

    /// Admits every queued arrival whose time has come, in arrival
    /// order, notifying the scheduler.
    pub fn admit_due(&mut self) {
        while let Some(front) = self.pending.front() {
            if front.task.arrival_ns > self.now_ns {
                break;
            }
            let PendingTask { task, trace, scale } = self.pending.pop_front().expect("non-empty");
            self.scheduler.on_arrival(&task, &self.lut, task.arrival_ns);
            self.positions.insert(task.id, self.active.len());
            self.tasks.push(task);
            self.traces.push(trace);
            self.scales.push(scale);
            self.active.push(self.tasks.len() - 1);
        }
    }

    /// Runs one engine step: admit due arrivals, then either execute one
    /// scheduling quantum or jump the clock to the next arrival. Returns
    /// `false` once the node is drained.
    pub fn step(&mut self) -> bool {
        self.admit_due();
        if self.active.is_empty() {
            let Some(arrival) = self.pending.front().map(|p| p.task.arrival_ns) else {
                return false;
            };
            self.now_ns = self.now_ns.max(arrival);
            self.mutation_epoch += 1;
            self.admit_due();
        }
        self.execute_quantum();
        true
    }

    /// Advances the node up to (exclusive) `t_ns`: every quantum that
    /// would *start* before `t_ns` is executed, and idle gaps before
    /// `t_ns` are skipped. The clock may end beyond `t_ns` when a
    /// quantum straddles it — a node cannot abandon a layer mid-flight.
    pub fn run_until(&mut self, t_ns: u64) {
        loop {
            self.admit_due();
            if !self.active.is_empty() {
                if self.now_ns >= t_ns {
                    return;
                }
                self.execute_quantum();
            } else if let Some(arrival) = self.pending.front().map(|p| p.task.arrival_ns) {
                if arrival >= t_ns {
                    return;
                }
                self.now_ns = self.now_ns.max(arrival);
                self.mutation_epoch += 1;
            } else {
                return;
            }
        }
    }

    /// Runs until every queued request has completed.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// One scheduling quantum: consult the scheduler, pay the context
    /// switch if execution moves between requests, execute up to
    /// `layers_per_block` consecutive layers of the choice, and retire
    /// it when it finishes.
    ///
    /// # Panics
    ///
    /// Panics if no task is runnable (callers admit first) or the
    /// scheduler returns an out-of-range index.
    fn execute_quantum(&mut self) {
        // The scheduler reads the task arena through the live indices
        // directly — no per-quantum `Vec<&TaskState>` materialisation.
        // The hooked constructor certifies that every queued task's
        // lifecycle has gone through the scheduler hooks (this engine's
        // invariant), unlocking the sub-linear indexed pick paths.
        self.mutation_epoch += 1;
        let queue = TaskQueue::hooked(&self.tasks, &self.active, &self.positions);
        debug_assert!(!queue.is_empty(), "execute_quantum needs a runnable task");
        self.invocations += 1;
        let profiling = self.tracer.profiling();
        let pick_t0 = profiling.then(std::time::Instant::now);
        let pick = self.scheduler.pick_next(queue, &self.lut, self.now_ns);
        if let Some(t0) = pick_t0 {
            self.tracer
                .phase_ns(Phase::Pick, t0.elapsed().as_nanos() as u64);
        }
        assert!(
            pick < self.active.len(),
            "scheduler returned out-of-range index"
        );
        let task_idx = self.active[pick];
        let exec_t0 = profiling.then(std::time::Instant::now);

        // Pay the context switch when execution moves between requests.
        let switching = self.last_ran.is_some() && self.last_ran != Some(self.tasks[task_idx].id);
        if switching {
            self.preemptions += 1;
            if self.tracer.enabled() {
                // The outgoing task's segment ends here, before the
                // switch overhead is paid.
                self.flush_segment();
                self.tracer.record(TraceEvent {
                    t_ns: self.now_ns,
                    request: self.tasks[task_idx].id,
                    node: self.id as u32,
                    kind: EventKind::Preemption,
                    a: self.last_ran.expect("switching implies a previous task"),
                    b: self.config.preemption_overhead_ns as i64,
                });
            }
            self.now_ns += self.config.preemption_overhead_ns;
            if self.tracer.enabled() {
                // The incoming task's segment starts once the switch
                // overhead is paid.
                self.open_segment(task_idx);
            }
        } else if self.last_ran.is_none() && self.tracer.enabled() {
            // Very first quantum of the run. Every other segment opens
            // in the switching arm above: a task completion leaves
            // `last_ran` pointing at the finished task, so the next
            // quantum (necessarily a different task) counts as a
            // switch. Extending an open segment is therefore free —
            // steady-state quanta skip both arms — and the close reads
            // the clock and the task's layer counter directly.
            self.open_segment(task_idx);
        }
        self.last_ran = Some(self.tasks[task_idx].id);

        let trace = self.traces[task_idx];
        let scale = self.scales[task_idx];
        let info = self.lut.info(self.tasks[task_idx].variant);
        for _ in 0..self.config.layers_per_block {
            if self.tasks[task_idx].finished() {
                break;
            }
            let layer = trace.layers()[self.tasks[task_idx].next_layer];
            let latency_ns = scale_ns(layer.latency_ns, scale);
            if self.config.record_timeline {
                let start = self.now_ns;
                let end = self.now_ns + latency_ns;
                // Extend the previous segment when the same task
                // continues back-to-back.
                match self.timeline.last_mut() {
                    Some(seg) if seg.task_id == self.tasks[task_idx].id && seg.end_ns == start => {
                        seg.end_ns = end;
                    }
                    _ => self.timeline.push(TimelineSegment {
                        task_id: self.tasks[task_idx].id,
                        start_ns: start,
                        end_ns: end,
                    }),
                }
            }
            self.now_ns += latency_ns;
            self.busy_ns += latency_ns;
            let task = &mut self.tasks[task_idx];
            task.next_layer += 1;
            task.executed_ns += latency_ns;
            task.record_layer(
                MonitoredLayer {
                    sparsity: layer.sparsity,
                    latency_ns,
                },
                info,
            );
            task.true_remaining_ns = scale_ns(trace.remaining_ns(task.next_layer), scale);
        }
        self.scheduler
            .on_layer_complete(&self.tasks[task_idx], &self.lut, self.now_ns);

        if let Some(t0) = exec_t0 {
            self.tracer
                .phase_ns(Phase::Execute, t0.elapsed().as_nanos() as u64);
        }

        if self.tasks[task_idx].finished() {
            self.scheduler
                .on_task_complete(&self.tasks[task_idx], self.now_ns);
            if self.tracer.enabled() {
                // The finished task's segment is the open one; close it
                // so its completion event never precedes its last work.
                self.flush_segment();
                let task = &self.tasks[task_idx];
                let deadline_ns = task.arrival_ns + task.slo_ns;
                self.tracer.record(TraceEvent {
                    t_ns: self.now_ns,
                    request: task.id,
                    node: self.id as u32,
                    kind: EventKind::Completion,
                    a: u64::from(self.now_ns > deadline_ns),
                    b: deadline_ns as i64 - self.now_ns as i64,
                });
            }
            let task = &self.tasks[task_idx];
            self.completed.push(CompletedRequest {
                id: task.id,
                spec: task.spec,
                arrival_ns: task.arrival_ns,
                completion_ns: self.now_ns,
                isolated_ns: trace.isolated_latency_ns(),
                slo_ns: task.slo_ns,
            });
            // O(1) removal. The hole is filled by the last active entry,
            // so scheduler-visible queue *order* changes — every shipped
            // scheduler decides from task fields with id tie-breaks, so
            // decisions are order-independent (pinned by the determinism
            // regression tests in `engine.rs`).
            self.remove_active(pick);
        }
    }

    /// Starts a segment for `task_idx` at the current clock. The caller
    /// guarantees no segment is open (the previous one was flushed at
    /// the switch or completion that made this open necessary).
    fn open_segment(&mut self, task_idx: usize) {
        debug_assert!(self.open_seg.is_none(), "segment already open");
        self.open_seg = Some(OpenSegment {
            task_idx,
            start_ns: self.now_ns,
            start_layer: self.tasks[task_idx].next_layer,
        });
    }

    /// Records and clears the open execution segment, ending it at the
    /// current clock. The layer count is the task's `next_layer` delta
    /// since the segment opened, so extending a segment costs nothing
    /// per quantum — all bookkeeping happens here, at the close.
    fn flush_segment(&mut self) {
        if let Some(seg) = self.open_seg.take() {
            let task = &self.tasks[seg.task_idx];
            let event = TraceEvent {
                t_ns: seg.start_ns,
                request: task.id,
                node: self.id as u32,
                kind: EventKind::Segment,
                a: self.now_ns,
                b: (task.next_layer - seg.start_layer) as i64,
            };
            self.tracer.record(event);
        }
    }

    /// Finishes the node, returning its completion report.
    ///
    /// # Panics
    ///
    /// Panics if unfinished work remains.
    pub fn into_report(mut self) -> SimReport {
        assert!(self.is_drained(), "node {} still has queued work", self.id);
        // A drained node closed every segment at task completion, but
        // flush defensively so no recorded work can be lost.
        self.flush_segment();
        let mut completed = self.completed;
        completed.sort_by_key(|c| c.id);
        SimReport::with_timeline(completed, self.preemptions, self.invocations, self.timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_core::Policy;
    use dysta_workload::{Scenario, Workload, WorkloadBuilder};

    fn tiny(seed: u64) -> Workload {
        WorkloadBuilder::new(Scenario::MultiCnn)
            .num_requests(30)
            .samples_per_variant(6)
            .seed(seed)
            .build()
    }

    fn engine_for<'w>(w: &'w Workload, policy: Policy) -> NodeEngine<'w> {
        let lut = ModelInfoLut::from_store(w.store());
        let mut node = NodeEngine::new(0, policy.build(), EngineConfig::default(), lut);
        for req in w.requests() {
            node.enqueue(req, w.trace_for(req));
        }
        node
    }

    #[test]
    fn stepping_matches_run_to_completion() {
        let w = tiny(1);
        let mut stepped = engine_for(&w, Policy::Dysta);
        while stepped.step() {}
        let mut ran = engine_for(&w, Policy::Dysta);
        ran.run_to_completion();
        assert_eq!(stepped.into_report(), ran.into_report());
    }

    #[test]
    fn run_until_is_equivalent_to_uninterrupted_execution() {
        // Driving the engine with arbitrary run_until barriers must not
        // change any completion: barriers only bound how far the node
        // may get ahead, never what it executes.
        let w = tiny(2);
        let mut reference = engine_for(&w, Policy::Dysta);
        reference.run_to_completion();
        let reference = reference.into_report();

        let mut chunked = engine_for(&w, Policy::Dysta);
        let horizon = w.requests().last().unwrap().arrival_ns * 2;
        let mut t = 0;
        while t < horizon {
            chunked.run_until(t);
            t += horizon / 37 + 1;
        }
        chunked.run_to_completion();
        assert_eq!(chunked.into_report(), reference);
    }

    #[test]
    fn run_until_does_not_start_quanta_at_or_past_the_barrier() {
        let w = tiny(3);
        let mut node = engine_for(&w, Policy::Fcfs);
        let barrier = w.requests()[10].arrival_ns;
        node.run_until(barrier);
        // Pending requests arriving at or after the barrier are untouched.
        assert!(node
            .queued_tasks()
            .all(|(t, _)| t.started() || t.arrival_ns <= node.now_ns() || t.arrival_ns >= barrier));
    }

    #[test]
    fn backlog_estimates_shrink_as_work_completes() {
        let w = tiny(4);
        let lut = ModelInfoLut::from_store(w.store());
        let mut node = engine_for(&w, Policy::Sjf);
        let full =
            node.estimated_backlog_ns(|t| lut.info(t.variant).avg_remaining_ns(t.next_layer));
        assert!(full > 0.0);
        node.run_to_completion();
        let empty =
            node.estimated_backlog_ns(|t| lut.info(t.variant).avg_remaining_ns(t.next_layer));
        assert_eq!(empty, 0.0);
        assert!(node.is_drained());
        assert!(node.busy_ns() > 0);
    }

    #[test]
    fn scaled_execution_slows_the_node_but_keeps_native_isolated_times() {
        let w = tiny(5);
        let lut = ModelInfoLut::from_store(w.store());
        let mut native = engine_for(&w, Policy::Fcfs);
        native.run_to_completion();
        let native = native.into_report();

        let mut slowed = NodeEngine::new(0, Policy::Fcfs.build(), EngineConfig::default(), lut);
        for req in w.requests() {
            slowed.enqueue_scaled(req, w.trace_for(req), 2.0);
        }
        slowed.run_to_completion();
        let slowed = slowed.into_report();

        let makespan = |r: &SimReport| r.completed().iter().map(|c| c.completion_ns).max();
        assert!(makespan(&slowed) > makespan(&native));
        // `isolated_ns` stays the native profile, so slowdown shows up
        // as worse normalized turnaround rather than a moved goalpost.
        for (a, b) in native.completed().iter().zip(slowed.completed()) {
            assert_eq!(a.isolated_ns, b.isolated_ns);
            assert!(b.completion_ns >= a.completion_ns);
        }
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn out_of_order_enqueue_rejected() {
        let w = tiny(6);
        let lut = ModelInfoLut::from_store(w.store());
        let mut node: NodeEngine =
            NodeEngine::new(0, Policy::Fcfs.build(), EngineConfig::default(), lut);
        let reqs = w.requests();
        node.enqueue(&reqs[5], w.trace_for(&reqs[5]));
        node.enqueue(&reqs[0], w.trace_for(&reqs[0]));
    }

    #[test]
    fn take_unstarted_refuses_started_and_unknown_tasks() {
        let w = tiny(8);
        let mut node = engine_for(&w, Policy::Fcfs);
        // Run a few quanta so the first request has started.
        node.run_until(w.requests()[3].arrival_ns);
        let started: Vec<u64> = node
            .queued_tasks()
            .filter(|(t, _)| t.started())
            .map(|(t, _)| t.id)
            .collect();
        for id in started {
            assert!(node.take_unstarted(id).is_none(), "started task {id}");
        }
        assert!(node.take_unstarted(9_999).is_none(), "unknown id");
    }

    #[test]
    fn take_unstarted_shrinks_the_queue_by_exactly_one() {
        let w = tiny(9);
        let mut node = engine_for(&w, Policy::Fcfs);
        node.run_until(w.requests()[10].arrival_ns);
        let victim = node
            .unstarted_tasks()
            .map(|(t, _)| t.id)
            .next()
            .expect("an admitted unstarted task exists");
        let before = node.queue_len();
        let taken = node.take_unstarted(victim).expect("victim is unstarted");
        assert_eq!(taken.task().id, victim);
        assert!(!taken.task().started());
        assert_eq!(node.queue_len(), before - 1);
    }

    #[test]
    fn transfer_preserves_completion_exactly_once() {
        // Move one unstarted request from a loaded node to an idle one;
        // every request still completes exactly once across both nodes,
        // and the moved request keeps its original arrival time.
        let w = tiny(10);
        let lut = ModelInfoLut::from_store(w.store());
        let mut src = engine_for(&w, Policy::Sjf);
        let mut dst: NodeEngine =
            NodeEngine::new(1, Policy::Sjf.build(), EngineConfig::default(), lut);
        let barrier = w.requests()[15].arrival_ns;
        src.run_until(barrier);
        let victim = src
            .unstarted_tasks()
            .map(|(t, _)| t.id)
            .min()
            .expect("unstarted work exists");
        let arrival = w.requests()[victim as usize].arrival_ns;
        let transfer = src.take_unstarted(victim).expect("victim is unstarted");
        dst.accept_transfer(transfer, 2.0, barrier, 0);
        assert!(dst.now_ns() >= barrier, "idle thief clock pulled forward");
        src.run_to_completion();
        dst.run_to_completion();
        let src_report = src.into_report();
        let dst_report = dst.into_report();
        assert_eq!(dst_report.completed().len(), 1);
        assert_eq!(dst_report.completed()[0].id, victim);
        assert_eq!(dst_report.completed()[0].arrival_ns, arrival);
        assert_eq!(src_report.completed().len(), 29);
        assert!(src_report.completed().iter().all(|c| c.id != victim));
    }

    #[test]
    fn crash_salvage_drains_the_node_and_resets_started_work() {
        let w = tiny(14);
        let mut node = engine_for(&w, Policy::Fcfs);
        let barrier = w.requests()[12].arrival_ns;
        node.run_until(barrier);
        let busy_before = node.busy_ns();
        let in_flight: Vec<u64> = node
            .queued_tasks()
            .filter(|(t, _)| t.started())
            .map(|(t, _)| t.id)
            .collect();
        let queued = node.queue_len() + node.completed_count();
        let salvaged = node.crash_salvage();
        // Everything unfinished came out, in (arrival, id) order, reset
        // to unstarted.
        assert_eq!(salvaged.len() + node.completed_count(), queued);
        assert!(node.is_drained());
        assert_eq!(node.busy_ns(), busy_before, "busy time is not erased");
        for w in salvaged.windows(2) {
            assert!(
                (w[0].0.task().arrival_ns, w[0].0.task().id)
                    <= (w[1].0.task().arrival_ns, w[1].0.task().id)
            );
        }
        for (t, lost_ns) in &salvaged {
            assert!(!t.task().started());
            assert_eq!(t.task().executed_ns, 0);
            if in_flight.contains(&t.task().id) {
                assert!(*lost_ns > 0, "in-flight work reports its loss");
            } else {
                assert_eq!(*lost_ns, 0);
            }
        }
        // A crashed-then-drained node still produces a report for what
        // it did finish.
        let report = node.into_report();
        assert!(report.completed().len() + salvaged.len() == queued);
    }

    #[test]
    fn salvaged_tasks_redispatch_and_complete_elsewhere() {
        let w = tiny(15);
        let lut = ModelInfoLut::from_store(w.store());
        let mut src = engine_for(&w, Policy::Sjf);
        let mut dst: NodeEngine =
            NodeEngine::new(1, Policy::Sjf.build(), EngineConfig::default(), lut);
        let crash_ns = w.requests()[10].arrival_ns;
        src.run_until(crash_ns);
        let done_on_src = src.completed_count();
        let salvaged = src.crash_salvage();
        assert!(!salvaged.is_empty());
        let moved = salvaged.len();
        for (t, _) in salvaged {
            dst.accept_transfer(t, 1.0, crash_ns, 0);
        }
        dst.run_to_completion();
        let dst_report = dst.into_report();
        // Exactly-once across the crash: src's completions plus the
        // re-homed ones cover the workload with no duplicates.
        assert_eq!(dst_report.completed().len(), moved);
        assert_eq!(done_on_src + moved, 30);
        let src_ids: Vec<u64> = src.into_report().completed().iter().map(|c| c.id).collect();
        assert!(dst_report
            .completed()
            .iter()
            .all(|c| !src_ids.contains(&c.id)));
    }

    #[test]
    fn costed_transfer_charges_the_receiving_node() {
        // A nonzero fetch cost delays the receiving node's clock by
        // exactly the fetch and shows up in its busy time, so transfer
        // traffic is visible in utilization and load-imbalance metrics.
        let w = tiny(13);
        let lut = ModelInfoLut::from_store(w.store());
        let mut src = engine_for(&w, Policy::Fcfs);
        let mut dst: NodeEngine =
            NodeEngine::new(1, Policy::Fcfs.build(), EngineConfig::default(), lut);
        let barrier = w.requests()[10].arrival_ns;
        src.run_until(barrier);
        let victim = src
            .unstarted_tasks()
            .map(|(t, _)| t.id)
            .min()
            .expect("unstarted work exists");
        let fetch = 3_000_000u64;
        let transfer = src.take_unstarted(victim).expect("victim is unstarted");
        dst.accept_transfer(transfer, 1.0, barrier, fetch);
        assert_eq!(dst.now_ns(), barrier + fetch);
        assert_eq!(dst.busy_ns(), fetch);
        dst.run_to_completion();
        let report = dst.into_report();
        assert!(report.completed()[0].completion_ns >= barrier + fetch);
    }

    #[test]
    fn enqueue_at_floors_execution_at_the_dispatch_instant() {
        // A request dispatched late (front-end admission batching) keeps
        // its arrival time for metrics but cannot execute before the
        // dispatch instant.
        let w = tiny(11);
        let lut = ModelInfoLut::from_store(w.store());
        let mut node: NodeEngine =
            NodeEngine::new(0, Policy::Fcfs.build(), EngineConfig::default(), lut);
        let dispatch_ns = w.requests().last().unwrap().arrival_ns + 5_000_000;
        for req in w.requests() {
            node.enqueue_scaled_at(req, w.trace_for(req), 1.0, dispatch_ns);
        }
        assert!(node.now_ns() >= dispatch_ns, "clock floored at dispatch");
        node.run_to_completion();
        let report = node.into_report();
        for c in report.completed() {
            assert!(c.completion_ns >= dispatch_ns);
            assert_eq!(c.arrival_ns, w.requests()[c.id as usize].arrival_ns);
        }
    }

    #[test]
    #[should_panic(expected = "dispatch cannot precede arrival")]
    fn dispatch_before_arrival_rejected() {
        let w = tiny(12);
        let lut = ModelInfoLut::from_store(w.store());
        let mut node: NodeEngine =
            NodeEngine::new(0, Policy::Fcfs.build(), EngineConfig::default(), lut);
        let req = w.requests().last().unwrap();
        node.enqueue_scaled_at(req, w.trace_for(req), 1.0, req.arrival_ns - 1);
    }

    #[test]
    #[should_panic(expected = "scale must be >= 1")]
    fn speedup_scales_rejected() {
        let w = tiny(7);
        let lut = ModelInfoLut::from_store(w.store());
        let mut node: NodeEngine =
            NodeEngine::new(0, Policy::Fcfs.build(), EngineConfig::default(), lut);
        let req = &w.requests()[0];
        node.enqueue_scaled(req, w.trace_for(req), 0.5);
    }
}
