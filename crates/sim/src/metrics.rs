//! Multi-seed experiment helpers: the paper evaluates every metric with
//! five random seeds and reports the average.

use dysta_core::{DystaConfig, Policy};
use dysta_workload::WorkloadBuilder;

use crate::{simulate, EngineConfig, Metrics};

/// The paper's seed count.
pub const PAPER_SEEDS: u64 = 5;

/// Runs `policy` over `seeds` workload replications and averages the
/// metrics, mirroring the paper's evaluation protocol.
///
/// The builder's own seed is combined with each replication index so the
/// replications differ in arrivals, model draws and trace sampling.
///
/// # Panics
///
/// Panics if `seeds` is zero.
///
/// # Examples
///
/// ```
/// use dysta_core::Policy;
/// use dysta_sim::metrics::average_over_seeds;
/// use dysta_workload::{Scenario, WorkloadBuilder};
///
/// let builder = WorkloadBuilder::new(Scenario::MultiCnn)
///     .num_requests(20)
///     .samples_per_variant(4);
/// let m = average_over_seeds(&builder, Policy::Sjf, 2);
/// assert!(m.antt >= 1.0);
/// ```
pub fn average_over_seeds(builder: &WorkloadBuilder, policy: Policy, seeds: u64) -> Metrics {
    average_over_seeds_with(builder, policy, seeds, DystaConfig::default())
}

/// [`average_over_seeds`] with explicit Dysta hyperparameters.
///
/// # Panics
///
/// Panics if `seeds` is zero.
pub fn average_over_seeds_with(
    builder: &WorkloadBuilder,
    policy: Policy,
    seeds: u64,
    config: DystaConfig,
) -> Metrics {
    assert!(seeds > 0, "need at least one seed");
    let mut antt = 0.0;
    let mut viol = 0.0;
    let mut stp = 0.0;
    for seed in 0..seeds {
        let workload = builder
            .clone()
            .seed(seed.wrapping_mul(0x9E37) ^ seed)
            .build();
        let mut sched = policy.build_with(config);
        let m = simulate(&workload, sched.as_mut(), &EngineConfig::default()).metrics();
        antt += m.antt;
        viol += m.violation_rate;
        stp += m.throughput_inf_s;
    }
    let n = seeds as f64;
    Metrics {
        antt: antt / n,
        violation_rate: viol / n,
        throughput_inf_s: stp / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_workload::Scenario;

    #[test]
    fn averaging_is_deterministic() {
        let builder = WorkloadBuilder::new(Scenario::MultiCnn)
            .num_requests(15)
            .samples_per_variant(4);
        let a = average_over_seeds(&builder, Policy::Fcfs, 2);
        let b = average_over_seeds(&builder, Policy::Fcfs, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let builder = WorkloadBuilder::new(Scenario::MultiCnn).num_requests(5);
        let _ = average_over_seeds(&builder, Policy::Fcfs, 0);
    }
}
