//! Pins the "no per-event heap allocation" property of the tracing hot
//! path: recording into a [`NullTracer`] is free, recording into a
//! warmed-up [`RingTracer`] is allocation-free even across ring
//! wraparound, and a fully traced engine run allocates exactly as much
//! as an untraced one.
//!
//! Same counting-global-allocator pattern as `crates/core/tests/
//! alloc_free.rs`: a thread-local counter measures the exact region
//! under test, immune to parallel test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dysta_core::{ModelInfoLut, Policy};
use dysta_obs::{EventKind, NullTracer, RingTracer, TraceEvent, Tracer};
use dysta_sim::{EngineConfig, NodeEngine};
use dysta_workload::{Scenario, Workload, WorkloadBuilder};

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Heap allocations performed by `f` on this thread.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

fn event(kind: EventKind, t_ns: u64) -> TraceEvent {
    TraceEvent {
        t_ns,
        request: t_ns % 7,
        node: (t_ns % 3) as u32,
        kind,
        a: t_ns,
        b: t_ns as i64 - 500,
    }
}

#[test]
fn null_tracer_record_never_allocates() {
    let tracer = NullTracer;
    let allocs = allocations_in(|| {
        for i in 0..10_000u64 {
            tracer.record(event(EventKind::Segment, i));
            tracer.phase_ns(dysta_obs::Phase::Pick, i);
        }
    });
    assert_eq!(allocs, 0, "NullTracer is supposed to be free");
}

#[test]
fn warm_ring_tracer_record_never_allocates_even_across_wraparound() {
    // Small ring so 10k events wrap it ~39 times.
    let tracer = RingTracer::new(256);
    // Warm the live instruments: each metric key and gauge slot the
    // record() match can touch is created once, then reused.
    for kind in EventKind::ALL {
        for node in 0..3u64 {
            let mut e = event(kind, node);
            e.node = node as u32;
            tracer.record(e);
        }
    }
    let allocs = allocations_in(|| {
        for i in 0..10_000u64 {
            let kind = EventKind::ALL[(i % EventKind::ALL.len() as u64) as usize];
            tracer.record(event(kind, i));
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state RingTracer::record allocated (ring wraparound or metrics map)"
    );
    assert!(tracer.dropped() > 0, "test must actually exercise overflow");
}

fn alloc_workload() -> Workload {
    WorkloadBuilder::new(Scenario::MultiCnn)
        .num_requests(30)
        .samples_per_variant(4)
        .seed(42)
        .build()
}

/// Runs the engine over `w` against `tracer` and reports the heap
/// allocations of the *whole* run (engine construction + enqueue +
/// execution). Arrival events are recorded directly (no label
/// interning) so the traced and untraced runs do byte-for-byte the same
/// non-tracer work.
fn engine_run_allocs<T: Tracer + Copy>(w: &Workload, tracer: T) -> u64 {
    allocations_in(|| {
        let lut = ModelInfoLut::from_store(w.store());
        let mut sched = Policy::Dysta.build();
        let mut node: NodeEngine<'_, &mut dyn dysta_core::Scheduler, T> =
            NodeEngine::with_tracer(0, sched.as_mut(), EngineConfig::default(), lut, tracer);
        for req in w.requests() {
            tracer.record(TraceEvent {
                t_ns: req.arrival_ns,
                request: req.id,
                node: 0,
                kind: EventKind::Dispatch,
                a: 0,
                b: req.slo_ns as i64,
            });
            node.enqueue(req, w.trace_for(req));
        }
        node.run_to_completion();
        let report = node.into_report();
        assert_eq!(report.completed().len(), 30);
    })
}

#[test]
fn traced_engine_run_allocates_exactly_like_untraced() {
    let w = alloc_workload();
    // Warm-up run: sizes the ring tracer's metric keys and gauge slots
    // (and the allocator's own warm state for the untraced side).
    let tracer = RingTracer::new(1 << 15);
    let _ = engine_run_allocs(&w, NullTracer);
    let _ = engine_run_allocs(&w, &tracer);
    tracer.clear();

    let untraced = engine_run_allocs(&w, NullTracer);
    let traced = engine_run_allocs(&w, &tracer);
    assert_eq!(
        traced, untraced,
        "a steady-state traced run must not allocate beyond the untraced baseline"
    );
    assert!(
        tracer.kind_count(EventKind::Completion) > 0,
        "the traced run must actually record"
    );
}
