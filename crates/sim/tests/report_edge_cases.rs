//! Edge cases of the report metrics: degenerate inputs every aggregation
//! must handle without dividing by zero or inventing violations.

use dysta_models::ModelId;
use dysta_sim::{percentile_ns, CompletedRequest, SimReport, TimelineSegment};
use dysta_sparsity::SparsityPattern;
use dysta_trace::SparseModelSpec;

fn req(id: u64, arrival: u64, completion: u64, isolated: u64, slo: u64) -> CompletedRequest {
    CompletedRequest {
        id,
        spec: SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0),
        arrival_ns: arrival,
        completion_ns: completion,
        isolated_ns: isolated,
        slo_ns: slo,
    }
}

#[test]
fn timeline_defaults_to_empty_and_survives_aggregation() {
    let r = SimReport::new(vec![req(0, 0, 10, 10, 100)], 0, 1);
    assert!(r.timeline().is_empty());
    // Metrics are computable with no timeline recorded.
    let m = r.metrics();
    assert!(m.antt >= 1.0);
}

#[test]
fn empty_report_yields_neutral_metrics() {
    // A cluster node that served nothing reports zero everywhere rather
    // than NaN (which would poison any cluster-level average).
    let r = SimReport::new(Vec::new(), 0, 0);
    assert_eq!(r.completed().len(), 0);
    assert_eq!(r.antt(), 0.0);
    assert_eq!(r.violation_rate(), 0.0);
    assert_eq!(r.throughput_inf_s(), 0.0);
    assert!(r.per_model().is_empty());
    assert!(!r.antt().is_nan());
}

#[test]
fn single_request_report() {
    // One request, served start-to-finish: NTT exactly 1, no violation,
    // throughput over its own span.
    let r = SimReport::new(
        vec![req(
            7,
            1_000_000_000,
            1_500_000_000,
            500_000_000,
            600_000_000,
        )],
        0,
        1,
    );
    assert_eq!(r.completed().len(), 1);
    assert!((r.antt() - 1.0).abs() < 1e-12);
    assert_eq!(r.violation_rate(), 0.0);
    // 1 completion over a 0.5 s span.
    assert!((r.throughput_inf_s() - 2.0).abs() < 1e-9);
    let breakdown = r.per_model();
    assert_eq!(breakdown.len(), 1);
    assert_eq!(breakdown[0].1, 1);
}

#[test]
fn single_instant_request_has_zero_span_and_zero_throughput() {
    // Completion at the arrival instant: the span is empty, throughput
    // must define itself as 0 rather than divide by zero.
    let r = SimReport::new(vec![req(0, 5, 5, 1, 10)], 0, 0);
    assert_eq!(r.throughput_inf_s(), 0.0);
}

#[test]
fn zero_slack_slo_boundary_is_not_a_violation() {
    // SLO equal to the achieved turnaround: the paper counts a request
    // violated only when turnaround *exceeds* the SLO.
    let exact = req(0, 100, 200, 100, 100); // turnaround 100 == slo 100
    assert!(!exact.violated());
    let over = req(1, 100, 201, 100, 100);
    assert!(over.violated());
    let r = SimReport::new(vec![exact, over], 0, 0);
    assert!((r.violation_rate() - 0.5).abs() < 1e-12);
}

#[test]
fn normalized_turnaround_clamps_zero_isolated_time() {
    // A degenerate trace with zero isolated time must not divide by
    // zero: the denominator clamps to 1 ns.
    let c = req(0, 0, 50, 0, 100);
    assert!((c.normalized_turnaround() - 50.0).abs() < 1e-12);
    assert!(c.normalized_turnaround().is_finite());
    let r = SimReport::new(vec![c], 0, 0);
    assert!(r.antt().is_finite());
}

#[test]
fn percentiles_match_hand_computed_values() {
    // Nearest-rank on {10, 20, 30, 40, 50}: rank = ceil(p/100 * 5).
    let v = [50, 10, 40, 20, 30]; // unsorted on purpose
    assert_eq!(percentile_ns(&v, 50.0), 30); // ceil(2.5) = 3rd
    assert_eq!(percentile_ns(&v, 90.0), 50); // ceil(4.5) = 5th
    assert_eq!(percentile_ns(&v, 99.0), 50);
    assert_eq!(percentile_ns(&v, 20.0), 10); // ceil(1.0) = 1st
    assert_eq!(percentile_ns(&v, 21.0), 20); // ceil(1.05) = 2nd
    assert_eq!(percentile_ns(&v, 0.0), 10); // minimum by convention
    assert_eq!(percentile_ns(&v, 100.0), 50);
    // Even count {10, 20, 30, 40}: the nearest-rank median is the 2nd.
    assert_eq!(percentile_ns(&[40, 30, 20, 10], 50.0), 20);
}

#[test]
fn percentiles_of_empty_and_single_value_sets() {
    // The empty set is 0 at every rank — including both boundary
    // percentiles, where an unguarded nearest-rank index would be out
    // of bounds rather than NaN-like.
    assert_eq!(percentile_ns(&[], 0.0), 0);
    assert_eq!(percentile_ns(&[], 50.0), 0);
    assert_eq!(percentile_ns(&[], 99.0), 0);
    assert_eq!(percentile_ns(&[], 100.0), 0);
    for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
        assert_eq!(percentile_ns(&[7], p), 7, "p{p}");
    }
}

#[test]
#[should_panic(expected = "percentile must be in [0, 100]")]
fn out_of_range_percentile_rejected() {
    let _ = percentile_ns(&[1, 2, 3], 101.0);
}

#[test]
fn report_turnaround_percentiles() {
    // Turnarounds: 10, 20, 40 ns.
    let r = SimReport::new(
        vec![
            req(0, 0, 10, 5, 100),
            req(1, 5, 25, 5, 100),
            req(2, 10, 50, 5, 100),
        ],
        0,
        0,
    );
    assert_eq!(r.turnaround_percentile_ns(50.0), 20);
    assert_eq!(r.turnaround_percentile_ns(99.0), 40);
    // Empty report: percentiles are 0, like the other neutral metrics.
    let empty = SimReport::new(Vec::new(), 0, 0);
    assert_eq!(empty.turnaround_percentile_ns(99.0), 0);
    // Single request: every percentile is its turnaround.
    let single = SimReport::new(vec![req(0, 100, 130, 30, 100)], 0, 1);
    assert_eq!(single.turnaround_percentile_ns(50.0), 30);
    assert_eq!(single.turnaround_percentile_ns(99.0), 30);
}

#[test]
fn timeline_segment_durations() {
    let seg = TimelineSegment {
        task_id: 3,
        start_ns: 10,
        end_ns: 25,
    };
    assert_eq!(seg.duration_ns(), 15);
    let r = SimReport::with_timeline(vec![req(3, 0, 25, 15, 100)], 0, 1, vec![seg]);
    assert_eq!(r.timeline().len(), 1);
    assert_eq!(r.timeline()[0].duration_ns(), 15);
}
