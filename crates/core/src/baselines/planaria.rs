//! Planaria's task scheduler (Ghodrati et al., MICRO 2020), specialised
//! to time-shared execution.

use crate::scheduler::{lut_remaining_ns, Scheduler};
use crate::{ModelInfoLut, TaskState};

/// Planaria schedules by deadline urgency: its dispatcher sorts tasks by
/// slack, *checks feasibility* (can the task still meet its deadline with
/// the resources available?) and admits the most urgent feasible tasks
/// first. The paper sets every task's resource requirement to 1 because
/// both target accelerators are time-shared, which reduces Planaria's
/// scheduler to earliest-deadline-first over the deadline-feasible tasks
/// (tasks whose estimated slack is already negative are served
/// best-effort behind them, mirroring Planaria's admission behaviour) —
/// strongly SLO-optimized, weak on ANTT, exactly its Table 5 profile.
///
/// # Examples
///
/// ```
/// use dysta_core::{Planaria, Scheduler};
/// assert_eq!(Planaria::new().name(), "planaria");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Planaria;

impl Planaria {
    /// Creates a Planaria scheduler.
    pub fn new() -> Self {
        Planaria
    }
}

impl Scheduler for Planaria {
    fn name(&self) -> &str {
        "planaria"
    }

    fn pick_next(&mut self, queue: &[&TaskState], lut: &ModelInfoLut, now_ns: u64) -> usize {
        let infeasible = |t: &TaskState| {
            let slack = t.deadline_ns() as f64 - now_ns as f64 - lut_remaining_ns(t, lut);
            slack < 0.0
        };
        queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                infeasible(a)
                    .cmp(&infeasible(b))
                    .then(a.deadline_ns().cmp(&b.deadline_ns()))
                    .then_with(|| lut_remaining_ns(a, lut).total_cmp(&lut_remaining_ns(b, lut)))
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
            .expect("engine never passes an empty queue")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

    fn setup() -> (SparseModelSpec, ModelInfoLut) {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        store.insert(TraceGenerator::default().generate(&spec, 2, 0));
        (spec, ModelInfoLut::from_store(&store))
    }

    fn mk(id: u64, spec: SparseModelSpec, arrival: u64, slo: u64) -> TaskState {
        TaskState {
            id,
            spec,
            arrival_ns: arrival,
            slo_ns: slo,
            next_layer: 0,
            num_layers: 3,
            executed_ns: 0,
            monitored: Vec::new(),
            true_remaining_ns: 0,
        }
    }

    #[test]
    fn earliest_feasible_deadline_first() {
        let (spec, lut) = setup();
        // Task 1 arrives later but has a much tighter (yet feasible) SLO.
        let a = mk(0, spec, 0, 10_000_000_000);
        let b = mk(1, spec, 100, 1_000_000_000);
        let queue = [&a, &b];
        assert_eq!(Planaria::new().pick_next(&queue, &lut, 200), 1);
    }

    #[test]
    fn lost_causes_are_served_best_effort() {
        let (spec, lut) = setup();
        // Task 0's deadline has already passed; the feasible task 1 with a
        // later-but-reachable deadline must run first.
        let expired = mk(0, spec, 0, 1);
        let feasible = mk(1, spec, 0, 10_000_000_000);
        let queue = [&expired, &feasible];
        assert_eq!(Planaria::new().pick_next(&queue, &lut, 1_000_000), 1);
    }
}
