//! Planaria's task scheduler (Ghodrati et al., MICRO 2020), specialised
//! to time-shared execution.

use crate::indexed::DeadlinePick;
use crate::scheduler::{lut_remaining_ns, Scheduler, TaskQueue};
use crate::{ModelInfoLut, TaskState};

/// Planaria schedules by deadline urgency: its dispatcher sorts tasks by
/// slack, *checks feasibility* (can the task still meet its deadline with
/// the resources available?) and admits the most urgent feasible tasks
/// first. The paper sets every task's resource requirement to 1 because
/// both target accelerators are time-shared, which reduces Planaria's
/// scheduler to earliest-deadline-first over the deadline-feasible tasks
/// (tasks whose estimated slack is already negative are served
/// best-effort behind them, mirroring Planaria's admission behaviour) —
/// strongly SLO-optimized, weak on ANTT, exactly its Table 5 profile.
///
/// On a hooked queue the pick is served from feasible/infeasible
/// deadline heaps with lapse-on-surface migration (O(log n)); unhooked
/// queues take the reference fold.
///
/// # Examples
///
/// ```
/// use dysta_core::{Planaria, Scheduler};
/// assert_eq!(Planaria::new().name(), "planaria");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Planaria {
    index: DeadlinePick,
}

impl Planaria {
    /// Creates a Planaria scheduler.
    pub fn new() -> Self {
        Planaria::default()
    }

    fn fold_pick(queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) -> usize {
        // Single pass; each task's LUT estimate (the only non-trivial
        // term) is computed exactly once and reused for both the
        // feasibility flag and the remaining-time tie-break.
        let mut best: Option<((bool, u64, f64, u64), usize)> = None;
        for (pos, t) in queue.iter().enumerate() {
            let remaining = lut_remaining_ns(t, lut);
            let infeasible = t.deadline_ns() as f64 - now_ns as f64 - remaining < 0.0;
            let key = (infeasible, t.deadline_ns(), remaining, t.id);
            let better = match &best {
                None => true,
                Some((bk, _)) => key
                    .0
                    .cmp(&bk.0)
                    .then(key.1.cmp(&bk.1))
                    .then(key.2.total_cmp(&bk.2))
                    .then(key.3.cmp(&bk.3))
                    .is_lt(),
            };
            if better {
                best = Some((key, pos));
            }
        }
        best.expect("engine never passes an empty queue").1
    }
}

impl Scheduler for Planaria {
    fn name(&self) -> &str {
        "planaria"
    }

    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        self.index
            .set_key(task, lut_remaining_ns(task, lut), now_ns);
    }

    fn on_layer_complete(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        self.index
            .set_key(task, lut_remaining_ns(task, lut), now_ns);
    }

    fn on_task_complete(&mut self, task: &TaskState, _now_ns: u64) {
        self.index.on_remove(task.id);
    }

    fn on_task_removed(&mut self, task: &TaskState, _now_ns: u64) {
        self.index.on_remove(task.id);
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) -> usize {
        if queue.is_hooked() {
            if let Some(pos) = self
                .index
                .pick(&queue, now_ns, |t| lut_remaining_ns(t, lut))
            {
                debug_assert_eq!(
                    pos,
                    Planaria::fold_pick(queue, lut, now_ns),
                    "indexed Planaria diverged from fold"
                );
                return pos;
            }
        }
        Planaria::fold_pick(queue, lut, now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskState;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

    fn setup() -> (SparseModelSpec, ModelInfoLut) {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        store.insert(TraceGenerator::default().generate(&spec, 2, 0));
        (spec, ModelInfoLut::from_store(&store))
    }

    fn mk(id: u64, spec: SparseModelSpec, lut: &ModelInfoLut, arrival: u64, slo: u64) -> TaskState {
        let variant = lut.variant_id(&spec).expect("spec profiled");
        TaskState::arrived(id, spec, variant, arrival, slo, 3)
    }

    #[test]
    fn earliest_feasible_deadline_first() {
        let (spec, lut) = setup();
        // Task 1 arrives later but has a much tighter (yet feasible) SLO.
        let queue = [
            mk(0, spec, &lut, 0, 10_000_000_000),
            mk(1, spec, &lut, 100, 1_000_000_000),
        ];
        assert_eq!(
            Planaria::new().pick_next(TaskQueue::dense(&queue), &lut, 200),
            1
        );
    }

    #[test]
    fn lost_causes_are_served_best_effort() {
        let (spec, lut) = setup();
        // Task 0's deadline has already passed; the feasible task 1 with a
        // later-but-reachable deadline must run first.
        let queue = [
            mk(0, spec, &lut, 0, 1),
            mk(1, spec, &lut, 0, 10_000_000_000),
        ];
        assert_eq!(
            Planaria::new().pick_next(TaskQueue::dense(&queue), &lut, 1_000_000),
            1
        );
    }
}
