//! PREMA: predictive token-based preemptive scheduling
//! (Choi & Rhu, HPCA 2020).

use std::collections::HashMap;

use crate::scheduler::{lut_isolated_ns, lut_remaining_ns, Scheduler, TaskQueue};
use crate::{ModelInfoLut, TaskState};

/// PREMA combines token-based aging with shortest-estimated-job
/// dispatch: every waiting task accumulates tokens proportional to its
/// normalized waiting time (`priority × wait / T_isol`); tasks whose
/// tokens reach the threshold become *candidates*, and the candidate with
/// the shortest estimated time runs next.
///
/// Following the paper's evaluation setup, the candidate condition uses
/// `Token ≥ Threshold` (their modification of PREMA's line 9, which fixes
/// the cold-start where all tokens are zero and no task qualifies), all
/// tasks share one priority class, and when no task reaches the threshold
/// the whole queue is eligible (pure SJF until aging kicks in).
///
/// PREMA keeps the reference fold even on hooked queues: `age_tokens`
/// mutates every waiting task's token state at each pick (the aging *is*
/// the algorithm), so there is no per-task key that stays valid between
/// picks for an indexed structure to exploit.
///
/// # Examples
///
/// ```
/// use dysta_core::{Prema, Scheduler};
/// assert_eq!(Prema::default().name(), "prema");
/// ```
#[derive(Debug, Clone)]
pub struct Prema {
    threshold: f64,
    priorities: HashMap<dysta_models::ModelId, f64>,
    tokens: HashMap<u64, TokenState>,
    current: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct TokenState {
    token: f64,
    last_update_ns: u64,
}

impl Default for Prema {
    fn default() -> Self {
        Prema::new(1.0)
    }
}

impl Prema {
    /// Creates a PREMA scheduler with the given token threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is negative or not finite.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold >= 0.0 && threshold.is_finite(),
            "threshold must be non-negative"
        );
        Prema {
            threshold,
            priorities: HashMap::new(),
            tokens: HashMap::new(),
            current: None,
        }
    }

    /// Assigns PREMA's static per-model priority classes (the original
    /// design uses e.g. 1 / 4 / 9 for low / mid / high). Tokens of a
    /// model with priority `p` accumulate `p×` faster, so its requests
    /// reach the candidate threshold sooner. Models not listed default
    /// to priority 1.
    ///
    /// # Panics
    ///
    /// Panics if any priority is not strictly positive.
    pub fn with_priorities(
        mut self,
        priorities: impl IntoIterator<Item = (dysta_models::ModelId, f64)>,
    ) -> Self {
        self.priorities = priorities.into_iter().collect();
        assert!(
            self.priorities.values().all(|&p| p > 0.0 && p.is_finite()),
            "priorities must be positive"
        );
        self
    }

    fn priority(&self, task: &TaskState) -> f64 {
        self.priorities
            .get(&task.spec.model)
            .copied()
            .unwrap_or(1.0)
    }

    fn age_tokens(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) {
        for task in queue.iter() {
            let priority = self.priority(task);
            let entry = self.tokens.entry(task.id).or_insert(TokenState {
                token: 0.0,
                last_update_ns: task.arrival_ns,
            });
            let waited = now_ns.saturating_sub(entry.last_update_ns) as f64;
            entry.last_update_ns = now_ns;
            // The running task is receiving service, not waiting.
            if self.current != Some(task.id) {
                let isolated = lut_isolated_ns(task, lut).max(1.0);
                entry.token += priority * waited / isolated;
            }
        }
    }
}

impl Scheduler for Prema {
    fn name(&self) -> &str {
        "prema"
    }

    fn on_task_complete(&mut self, task: &TaskState, _now_ns: u64) {
        self.tokens.remove(&task.id);
        if self.current == Some(task.id) {
            self.current = None;
        }
    }

    fn on_task_removed(&mut self, task: &TaskState, _now_ns: u64) {
        // A withdrawn task never ran, so it cannot be `current`; only its
        // aging bookkeeping needs dropping.
        self.tokens.remove(&task.id);
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) -> usize {
        self.age_tokens(queue, lut, now_ns);
        // One pass, one score evaluation per task: track the shortest
        // candidate (token over threshold) and the shortest task overall;
        // the overall minimum only decides when no candidate exists.
        let mut best_candidate: Option<(f64, u64, usize)> = None;
        let mut best_any: Option<(f64, u64, usize)> = None;
        for (pos, t) in queue.iter().enumerate() {
            let remaining = lut_remaining_ns(t, lut);
            let better = |best: &Option<(f64, u64, usize)>| match best {
                None => true,
                Some((bs, bid, _)) => match remaining.total_cmp(bs) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => t.id < *bid,
                    std::cmp::Ordering::Greater => false,
                },
            };
            if better(&best_any) {
                best_any = Some((remaining, t.id, pos));
            }
            if self.tokens[&t.id].token >= self.threshold && better(&best_candidate) {
                best_candidate = Some((remaining, t.id, pos));
            }
        }
        let idx = best_candidate
            .or(best_any)
            .expect("eligible set is never empty")
            .2;
        self.current = Some(queue.get(idx).id);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

    fn setup() -> (SparseModelSpec, SparseModelSpec, ModelInfoLut) {
        let small = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        let big = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        let g = TraceGenerator::default();
        store.insert(g.generate(&small, 2, 0));
        store.insert(g.generate(&big, 2, 0));
        (small, big, ModelInfoLut::from_store(&store))
    }

    fn mk(id: u64, spec: SparseModelSpec, lut: &ModelInfoLut, arrival: u64) -> TaskState {
        let variant = lut.variant_id(&spec).expect("spec profiled");
        TaskState::arrived(id, spec, variant, arrival, u64::MAX / 2, 10)
    }

    #[test]
    fn behaves_like_sjf_before_aging() {
        let (small, big, lut) = setup();
        let queue = [mk(0, big, &lut, 0), mk(1, small, &lut, 0)];
        let mut p = Prema::default();
        assert_eq!(
            p.pick_next(TaskQueue::dense(&queue), &lut, 0),
            1,
            "short job first"
        );
    }

    #[test]
    fn starved_long_job_eventually_wins() {
        let (small, big, lut) = setup();
        let long_task = mk(0, big, &lut, 0);
        let mut p = Prema::default();
        // Age the long task far beyond its isolated time while short jobs
        // keep arriving fresh.
        let isolated = lut.expect(&big).avg_latency_ns();
        let much_later = (isolated * 3.0) as u64;
        let fresh_short = mk(99, small, &lut, much_later);
        let queue = [long_task, fresh_short];
        let idx = p.pick_next(TaskQueue::dense(&queue), &lut, much_later);
        assert_eq!(idx, 0, "aged long job must win over fresh short job");
    }

    #[test]
    fn completion_clears_bookkeeping() {
        let (small, _, lut) = setup();
        let t = mk(0, small, &lut, 0);
        let mut p = Prema::default();
        let queue = [t.clone()];
        p.pick_next(TaskQueue::dense(&queue), &lut, 0);
        p.on_task_complete(&t, 100);
        assert!(p.tokens.is_empty());
        assert_eq!(p.current, None);
    }

    #[test]
    #[should_panic(expected = "threshold must be non-negative")]
    fn rejects_negative_threshold() {
        let _ = Prema::new(-1.0);
    }

    #[test]
    fn higher_priority_models_age_faster() {
        let (small, big, lut) = setup();
        // The big model gets the high-priority class: after equal waiting
        // it must reach candidacy and beat the (otherwise preferred)
        // short job.
        let boost = 50.0;
        let mut p = Prema::new(1.0).with_priorities([(dysta_models::ModelId::Vgg16, boost)]);
        let long_task = mk(0, big, &lut, 0);
        let short_task = mk(1, small, &lut, 0);
        // Wait long enough that only the boosted task crosses threshold:
        // boost * w / iso_big >= 1  while  w / iso_small < 1.
        let iso_big = lut.expect(&big).avg_latency_ns();
        let iso_small = lut.expect(&small).avg_latency_ns();
        let wait = (iso_big / boost * 1.5) as u64;
        assert!(
            (wait as f64) < iso_small,
            "test premise: small stays below threshold"
        );
        let queue = [long_task, short_task];
        let idx = p.pick_next(TaskQueue::dense(&queue), &lut, wait);
        assert_eq!(idx, 0, "high-priority long job must preempt");
    }

    #[test]
    #[should_panic(expected = "priorities must be positive")]
    fn rejects_non_positive_priority() {
        let _ = Prema::default().with_priorities([(dysta_models::ModelId::Bert, 0.0)]);
    }
}
