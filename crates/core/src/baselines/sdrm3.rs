//! SDRM3's MapScore scheduler (Kim et al., ASPLOS 2024).

use crate::scheduler::{lut_isolated_ns, lut_remaining_ns, pick_max_score, Scheduler, TaskQueue};
use crate::{ModelInfoLut, TaskState};

/// SDRM3 scores every (task, accelerator) mapping and dispatches the
/// highest score. Following the paper's setup: `Pref = 1` (single
/// accelerator), so `MapScore = α·Urgency + (1−α)·Fairness` with `α`
/// tuned per SDRM3's own methodology.
///
/// * **Urgency** — how close the task is to missing its deadline:
///   `est_remaining / max(slack, ε)`, saturating once slack is exhausted.
/// * **Fairness** — the task's projected slowdown
///   `(wait + executed + est_remaining) / T_isol`, so chronically
///   under-served requests rise.
///
/// Both terms favour long-waiting tasks over short fresh ones, which is
/// why SDRM3 lands on the poor-ANTT side of the paper's Table 5 in a
/// purely time-shared setting.
///
/// SDRM3 keeps the reference fold even on hooked queues: the urgency
/// term `remaining / slack` is hyperbolic in the pick clock, so task
/// order genuinely changes between picks with no affine decomposition
/// for a now-independent heap key to index.
///
/// # Examples
///
/// ```
/// use dysta_core::{Scheduler, Sdrm3};
/// assert_eq!(Sdrm3::default().name(), "sdrm3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sdrm3 {
    alpha: f64,
}

impl Default for Sdrm3 {
    fn default() -> Self {
        Sdrm3::new(0.5)
    }
}

impl Sdrm3 {
    /// Creates an SDRM3 scheduler with urgency weight `alpha ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Sdrm3 { alpha }
    }

    fn map_score(&self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) -> f64 {
        let remaining = lut_remaining_ns(task, lut);
        let isolated = lut_isolated_ns(task, lut).max(1.0);
        let slack = task.deadline_ns() as f64 - now_ns as f64 - remaining;
        // Saturate urgency when the deadline is unreachable (cap keeps the
        // fairness term relevant, per SDRM3's bounded-score design).
        let urgency = if slack <= 0.0 {
            10.0
        } else {
            (remaining / slack).min(10.0)
        };
        let turnaround = (now_ns.saturating_sub(task.arrival_ns)) as f64 + remaining;
        let fairness = turnaround / isolated;
        self.alpha * urgency + (1.0 - self.alpha) * fairness
    }
}

impl Scheduler for Sdrm3 {
    fn name(&self) -> &str {
        "sdrm3"
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) -> usize {
        pick_max_score(queue, |t| self.map_score(t, lut, now_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

    fn lut() -> (SparseModelSpec, ModelInfoLut) {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        store.insert(TraceGenerator::default().generate(&spec, 2, 0));
        (spec, ModelInfoLut::from_store(&store))
    }

    fn mk(id: u64, spec: SparseModelSpec, lut: &ModelInfoLut, arrival: u64, slo: u64) -> TaskState {
        let variant = lut.variant_id(&spec).expect("spec profiled");
        TaskState::arrived(id, spec, variant, arrival, slo, 3)
    }

    #[test]
    fn urgent_task_wins() {
        let (spec, lut) = lut();
        let queue = [
            mk(0, spec, &lut, 0, 1_000_000_000),
            mk(1, spec, &lut, 0, 1_000),
        ];
        assert_eq!(
            Sdrm3::default().pick_next(TaskQueue::dense(&queue), &lut, 500),
            1
        );
    }

    #[test]
    fn long_waiting_task_wins_on_fairness() {
        let (spec, lut) = lut();
        let queue = [
            mk(0, spec, &lut, 0, u64::MAX / 2),
            mk(1, spec, &lut, 900_000_000, u64::MAX / 2),
        ];
        assert_eq!(
            Sdrm3::new(0.0).pick_next(TaskQueue::dense(&queue), &lut, 1_000_000_000),
            0,
            "pure fairness favours the older task"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn rejects_bad_alpha() {
        let _ = Sdrm3::new(1.5);
    }
}
