//! First-Come First-Served.

use crate::scheduler::{Scheduler, TaskQueue};
use crate::ModelInfoLut;

/// Non-preemptive-in-spirit FCFS: always runs the earliest-arrived active
/// request to completion (a later arrival never overtakes, because the
/// earliest arrival stays the minimum until it finishes).
///
/// # Examples
///
/// ```
/// use dysta_core::{Fcfs, Scheduler};
/// assert_eq!(Fcfs::new().name(), "fcfs");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fcfs;

impl Fcfs {
    /// Creates an FCFS scheduler.
    pub fn new() -> Self {
        Fcfs
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &str {
        "fcfs"
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, _lut: &ModelInfoLut, _now_ns: u64) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| (t.arrival_ns, t.id))
            .map(|(i, _)| i)
            .expect("engine never passes an empty queue")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelInfoLut, TaskState};
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, VariantId};

    fn task(id: u64, arrival: u64) -> TaskState {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        TaskState {
            true_remaining_ns: 100,
            ..TaskState::arrived(id, spec, VariantId::default(), arrival, 1_000_000, 3)
        }
    }

    #[test]
    fn picks_earliest_arrival() {
        let queue = [task(0, 30), task(1, 10), task(2, 20)];
        let mut s = Fcfs::new();
        assert_eq!(
            s.pick_next(TaskQueue::dense(&queue), &ModelInfoLut::default(), 100),
            1
        );
    }

    #[test]
    fn ties_break_by_id() {
        let queue = [task(7, 10), task(3, 10)];
        let mut s = Fcfs::new();
        assert_eq!(
            s.pick_next(TaskQueue::dense(&queue), &ModelInfoLut::default(), 100),
            1
        );
    }
}
