//! First-Come First-Served.

use crate::scheduler::Scheduler;
use crate::{ModelInfoLut, TaskState};

/// Non-preemptive-in-spirit FCFS: always runs the earliest-arrived active
/// request to completion (a later arrival never overtakes, because the
/// earliest arrival stays the minimum until it finishes).
///
/// # Examples
///
/// ```
/// use dysta_core::{Fcfs, Scheduler};
/// assert_eq!(Fcfs::new().name(), "fcfs");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fcfs;

impl Fcfs {
    /// Creates an FCFS scheduler.
    pub fn new() -> Self {
        Fcfs
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &str {
        "fcfs"
    }

    fn pick_next(&mut self, queue: &[&TaskState], _lut: &ModelInfoLut, _now_ns: u64) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| (t.arrival_ns, t.id))
            .map(|(i, _)| i)
            .expect("engine never passes an empty queue")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelInfoLut;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::SparseModelSpec;

    fn task(id: u64, arrival: u64) -> TaskState {
        TaskState {
            id,
            spec: SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0),
            arrival_ns: arrival,
            slo_ns: 1_000_000,
            next_layer: 0,
            num_layers: 3,
            executed_ns: 0,
            monitored: Vec::new(),
            true_remaining_ns: 100,
        }
    }

    #[test]
    fn picks_earliest_arrival() {
        let (a, b, c) = (task(0, 30), task(1, 10), task(2, 20));
        let queue = [&a, &b, &c];
        let mut s = Fcfs::new();
        assert_eq!(s.pick_next(&queue, &ModelInfoLut::default(), 100), 1);
    }

    #[test]
    fn ties_break_by_id() {
        let (a, b) = (task(7, 10), task(3, 10));
        let queue = [&a, &b];
        let mut s = Fcfs::new();
        assert_eq!(s.pick_next(&queue, &ModelInfoLut::default(), 100), 1);
    }
}
