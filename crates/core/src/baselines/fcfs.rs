//! First-Come First-Served.

use crate::indexed::FcfsPick;
use crate::scheduler::{Scheduler, TaskQueue};
use crate::{ModelInfoLut, TaskState};

/// Non-preemptive-in-spirit FCFS: always runs the earliest-arrived active
/// request to completion (a later arrival never overtakes, because the
/// earliest arrival stays the minimum until it finishes).
///
/// On a hooked queue the pick is served from an arrival-keyed heap
/// (O(log n)); unhooked queues take the reference scan.
///
/// # Examples
///
/// ```
/// use dysta_core::{Fcfs, Scheduler};
/// assert_eq!(Fcfs::new().name(), "fcfs");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fcfs {
    index: FcfsPick,
}

impl Fcfs {
    /// Creates an FCFS scheduler.
    pub fn new() -> Self {
        Fcfs::default()
    }

    fn fold_pick(queue: TaskQueue<'_>) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| (t.arrival_ns, t.id))
            .map(|(i, _)| i)
            .expect("engine never passes an empty queue")
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &str {
        "fcfs"
    }

    fn on_arrival(&mut self, task: &TaskState, _lut: &ModelInfoLut, _now_ns: u64) {
        self.index.on_arrival(task);
    }

    fn on_task_complete(&mut self, task: &TaskState, _now_ns: u64) {
        self.index.on_remove(task.id);
    }

    fn on_task_removed(&mut self, task: &TaskState, _now_ns: u64) {
        self.index.on_remove(task.id);
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, _lut: &ModelInfoLut, _now_ns: u64) -> usize {
        if queue.is_hooked() {
            if let Some(pos) = self.index.pick(&queue) {
                debug_assert_eq!(
                    pos,
                    Fcfs::fold_pick(queue),
                    "indexed FCFS diverged from fold"
                );
                return pos;
            }
        }
        Fcfs::fold_pick(queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelInfoLut, TaskState};
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, VariantId};

    fn task(id: u64, arrival: u64) -> TaskState {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        TaskState {
            true_remaining_ns: 100,
            ..TaskState::arrived(id, spec, VariantId::default(), arrival, 1_000_000, 3)
        }
    }

    #[test]
    fn picks_earliest_arrival() {
        let queue = [task(0, 30), task(1, 10), task(2, 20)];
        let mut s = Fcfs::new();
        assert_eq!(
            s.pick_next(TaskQueue::dense(&queue), &ModelInfoLut::default(), 100),
            1
        );
    }

    #[test]
    fn ties_break_by_id() {
        let queue = [task(7, 10), task(3, 10)];
        let mut s = Fcfs::new();
        assert_eq!(
            s.pick_next(TaskQueue::dense(&queue), &ModelInfoLut::default(), 100),
            1
        );
    }
}
