//! Shortest-Job First (shortest-remaining-time variant).

use crate::scheduler::{lut_remaining_ns, Scheduler};
use crate::{ModelInfoLut, TaskState};

/// Preemptive shortest-job-first using the *sparsity-unaware* LUT
/// estimate of remaining time — the paper's traditional heuristic
/// baseline (its Figure 5 shows exactly this scheduler making a wrong
/// preemption call for lack of sparsity information).
///
/// # Examples
///
/// ```
/// use dysta_core::{Scheduler, Sjf};
/// assert_eq!(Sjf::new().name(), "sjf");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sjf;

impl Sjf {
    /// Creates an SJF scheduler.
    pub fn new() -> Self {
        Sjf
    }
}

impl Scheduler for Sjf {
    fn name(&self) -> &str {
        "sjf"
    }

    fn pick_next(&mut self, queue: &[&TaskState], lut: &ModelInfoLut, _now_ns: u64) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                lut_remaining_ns(a, lut)
                    .total_cmp(&lut_remaining_ns(b, lut))
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
            .expect("engine never passes an empty queue")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

    #[test]
    fn prefers_shorter_model() {
        let small = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        let big = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        let g = TraceGenerator::default();
        store.insert(g.generate(&small, 2, 0));
        store.insert(g.generate(&big, 2, 0));
        let lut = ModelInfoLut::from_store(&store);

        let mk = |id, spec: SparseModelSpec, layers| TaskState {
            id,
            spec,
            arrival_ns: 0,
            slo_ns: u64::MAX / 2,
            next_layer: 0,
            num_layers: layers,
            executed_ns: 0,
            monitored: Vec::new(),
            true_remaining_ns: 0,
        };
        let a = mk(0, big, 21);
        let b = mk(1, small, 29);
        let queue = [&a, &b];
        assert_eq!(Sjf::new().pick_next(&queue, &lut, 0), 1);
    }
}
