//! Shortest-Job First (shortest-remaining-time variant).

use crate::indexed::ScorePick;
use crate::scheduler::{lut_remaining_ns, pick_min_score, Scheduler, TaskQueue};
use crate::{ModelInfoLut, TaskState};

/// Preemptive shortest-job-first using the *sparsity-unaware* LUT
/// estimate of remaining time — the paper's traditional heuristic
/// baseline (its Figure 5 shows exactly this scheduler making a wrong
/// preemption call for lack of sparsity information).
///
/// On a hooked queue the pick is served from a remaining-time heap
/// re-keyed per layer completion (O(log n)); unhooked queues take the
/// reference fold.
///
/// # Examples
///
/// ```
/// use dysta_core::{Scheduler, Sjf};
/// assert_eq!(Sjf::new().name(), "sjf");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sjf {
    index: ScorePick,
}

impl Sjf {
    /// Creates an SJF scheduler.
    pub fn new() -> Self {
        Sjf::default()
    }
}

impl Scheduler for Sjf {
    fn name(&self) -> &str {
        "sjf"
    }

    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, _now_ns: u64) {
        self.index.set_score(task.id, lut_remaining_ns(task, lut));
    }

    fn on_layer_complete(&mut self, task: &TaskState, lut: &ModelInfoLut, _now_ns: u64) {
        self.index.set_score(task.id, lut_remaining_ns(task, lut));
    }

    fn on_task_complete(&mut self, task: &TaskState, _now_ns: u64) {
        self.index.on_remove(task.id);
    }

    fn on_task_removed(&mut self, task: &TaskState, _now_ns: u64) {
        self.index.on_remove(task.id);
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, _now_ns: u64) -> usize {
        if queue.is_hooked() {
            if let Some(pos) = self.index.pick(&queue) {
                debug_assert_eq!(
                    pos,
                    pick_min_score(queue, |t| lut_remaining_ns(t, lut)),
                    "indexed SJF diverged from fold"
                );
                return pos;
            }
        }
        pick_min_score(queue, |t| lut_remaining_ns(t, lut))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskState;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

    #[test]
    fn prefers_shorter_model() {
        let small = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        let big = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        let g = TraceGenerator::default();
        store.insert(g.generate(&small, 2, 0));
        store.insert(g.generate(&big, 2, 0));
        let lut = ModelInfoLut::from_store(&store);

        let mk = |id, spec: SparseModelSpec, layers| {
            let variant = lut.variant_id(&spec).expect("spec profiled");
            TaskState::arrived(id, spec, variant, 0, u64::MAX / 2, layers)
        };
        let queue = [mk(0, big, 21), mk(1, small, 29)];
        assert_eq!(Sjf::new().pick_next(TaskQueue::dense(&queue), &lut, 0), 1);
    }
}
