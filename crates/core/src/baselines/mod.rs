//! Baseline multi-DNN schedulers (the Table 5 comparison set).

mod fcfs;
mod planaria;
mod prema;
mod sdrm3;
mod sjf;

pub use fcfs::Fcfs;
pub use planaria::Planaria;
pub use prema::Prema;
pub use sdrm3::Sdrm3;
pub use sjf::Sjf;
