//! The scheduler interface the discrete-event engine drives.

use crate::{ModelInfoLut, TaskState};

/// A multi-DNN scheduling policy.
///
/// The engine invokes the scheduler at every scheduling point — request
/// arrival while idle, and each layer(-block) completion — exactly the
/// preemptive layer-granularity model of the paper's Algorithm 2. The
/// engine owns task state; schedulers keep whatever per-task bookkeeping
/// they need internally (keyed by `TaskState::id`).
///
/// # Examples
///
/// ```
/// use dysta_core::{Fcfs, Scheduler};
///
/// let sched = Fcfs::new();
/// assert_eq!(sched.name(), "fcfs");
/// ```
pub trait Scheduler {
    /// Stable lower-case policy name (used in experiment tables).
    fn name(&self) -> &str;

    /// Notification that `task` has entered the system.
    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        let _ = (task, lut, now_ns);
    }

    /// Notification that one layer of `task` finished executing (its
    /// `monitored` stream includes the new record).
    fn on_layer_complete(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        let _ = (task, lut, now_ns);
    }

    /// Notification that `task` completed all layers and left the system.
    fn on_task_complete(&mut self, task: &TaskState, now_ns: u64) {
        let _ = (task, now_ns);
    }

    /// Chooses which queued task runs its next layer. Returns an index
    /// into `queue`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `queue` is empty; the engine never
    /// calls with an empty queue.
    fn pick_next(&mut self, queue: &[&TaskState], lut: &ModelInfoLut, now_ns: u64) -> usize;
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        (**self).on_arrival(task, lut, now_ns);
    }

    fn on_layer_complete(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        (**self).on_layer_complete(task, lut, now_ns);
    }

    fn on_task_complete(&mut self, task: &TaskState, now_ns: u64) {
        (**self).on_task_complete(task, now_ns);
    }

    fn pick_next(&mut self, queue: &[&TaskState], lut: &ModelInfoLut, now_ns: u64) -> usize {
        (**self).pick_next(queue, lut, now_ns)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        (**self).on_arrival(task, lut, now_ns);
    }

    fn on_layer_complete(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        (**self).on_layer_complete(task, lut, now_ns);
    }

    fn on_task_complete(&mut self, task: &TaskState, now_ns: u64) {
        (**self).on_task_complete(task, now_ns);
    }

    fn pick_next(&mut self, queue: &[&TaskState], lut: &ModelInfoLut, now_ns: u64) -> usize {
        (**self).pick_next(queue, lut, now_ns)
    }
}

/// Shared helper: sparsity-unaware estimate of remaining time from the
/// latency LUT (what SJF/PREMA/Planaria/SDRM3 use — profiled averages
/// under the static-workload assumption the paper critiques).
pub(crate) fn lut_remaining_ns(task: &TaskState, lut: &ModelInfoLut) -> f64 {
    lut.expect(&task.spec).avg_remaining_ns(task.next_layer)
}

/// Shared helper: sparsity-unaware isolated-latency estimate.
pub(crate) fn lut_isolated_ns(task: &TaskState, lut: &ModelInfoLut) -> f64 {
    lut.expect(&task.spec).avg_latency_ns()
}
