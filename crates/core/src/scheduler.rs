//! The scheduler interface the discrete-event engine drives.

use std::cmp::Ordering;

use crate::{ModelInfoLut, TaskState};

/// An id→queue-position map a hook-disciplined engine maintains in
/// lockstep with its live-index list, so schedulers that keep indexed
/// score structures can resolve a winning task *id* back to the queue
/// *position* [`Scheduler::pick_next`] must return in O(log n) instead
/// of scanning the queue.
///
/// Stored as a sorted `Vec` (cache-friendly binary-search probes, no
/// hashing, inserts only at admission).
#[derive(Debug, Clone, Default)]
pub struct QueuePositions {
    by_id: Vec<(u64, usize)>,
}

impl QueuePositions {
    /// An empty map.
    pub fn new() -> Self {
        QueuePositions::default()
    }

    /// Records `id` at queue position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present (queue ids are unique).
    pub fn insert(&mut self, id: u64, pos: usize) {
        match self.by_id.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(_) => panic!("task {id} already queued"),
            Err(i) => self.by_id.insert(i, (id, pos)),
        }
    }

    /// Moves `id` to queue position `pos` (after a `swap_remove` filled
    /// its old slot with the queue's last entry).
    pub fn set(&mut self, id: u64, pos: usize) {
        if let Ok(i) = self.by_id.binary_search_by_key(&id, |&(k, _)| k) {
            self.by_id[i].1 = pos;
        }
    }

    /// Drops `id` from the map (no-op when absent).
    pub fn remove(&mut self, id: u64) {
        if let Ok(i) = self.by_id.binary_search_by_key(&id, |&(k, _)| k) {
            self.by_id.remove(i);
        }
    }

    /// The queue position of `id`, if queued.
    pub fn get(&self, id: u64) -> Option<usize> {
        self.by_id
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|i| self.by_id[i].1)
    }

    /// Number of queued ids.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when no id is queued.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Forgets every id (the queue was drained wholesale).
    pub fn clear(&mut self) {
        self.by_id.clear();
    }
}

/// A borrowed view of the runnable queue at one scheduling point.
///
/// Either a dense slice of tasks ([`TaskQueue::dense`], what tests and
/// analysis harnesses build) or the engine's task arena plus the live
/// indices into it ([`TaskQueue::indexed`]) — so the engine hands its
/// existing storage straight to the scheduler instead of materialising a
/// fresh `Vec<&TaskState>` every quantum. Positions (`0..len()`) are
/// what [`Scheduler::pick_next`] returns.
///
/// A *hooked* queue ([`TaskQueue::hooked`]) additionally carries the
/// engine's [`QueuePositions`] map and certifies the hook contract (see
/// that constructor), unlocking the schedulers' sub-linear indexed pick
/// paths; `dense`/`indexed` queues always take the reference fold.
#[derive(Debug, Clone, Copy)]
pub struct TaskQueue<'a> {
    tasks: &'a [TaskState],
    /// Live positions into `tasks`; `None` means every task is live.
    active: Option<&'a [usize]>,
    /// Present only on hooked queues: the id→position map.
    positions: Option<&'a QueuePositions>,
}

impl<'a> TaskQueue<'a> {
    /// A queue over every task in the slice.
    pub fn dense(tasks: &'a [TaskState]) -> Self {
        TaskQueue {
            tasks,
            active: None,
            positions: None,
        }
    }

    /// A queue over `active` positions into a task arena.
    ///
    /// # Panics
    ///
    /// Debug-asserts every index is in range; release builds surface
    /// out-of-range indices at access time.
    pub fn indexed(tasks: &'a [TaskState], active: &'a [usize]) -> Self {
        debug_assert!(active.iter().all(|&i| i < tasks.len()));
        TaskQueue {
            tasks,
            active: Some(active),
            positions: None,
        }
    }

    /// An indexed queue that additionally certifies the *hook
    /// contract*: the caller has reported every queued task's lifecycle
    /// to the scheduler through the [`Scheduler`] hooks (`on_arrival`
    /// once per queued task, `on_layer_complete` after each executed
    /// layer block, `on_task_complete`/`on_task_removed` on exit), and
    /// `positions` maps exactly the queued ids to their `active`
    /// positions. Schedulers may then serve the pick from internal
    /// indexed structures instead of folding the queue. Constructing a
    /// hooked queue without honouring the contract yields unspecified
    /// (but memory-safe) picks.
    ///
    /// # Panics
    ///
    /// Debug-asserts index bounds and that `positions` agrees with
    /// `active`.
    pub fn hooked(
        tasks: &'a [TaskState],
        active: &'a [usize],
        positions: &'a QueuePositions,
    ) -> Self {
        debug_assert!(active.iter().all(|&i| i < tasks.len()));
        debug_assert_eq!(positions.len(), active.len());
        debug_assert!(active
            .iter()
            .enumerate()
            .all(|(pos, &i)| positions.get(tasks[i].id) == Some(pos)));
        TaskQueue {
            tasks,
            active: Some(active),
            positions: Some(positions),
        }
    }

    /// True when this queue certifies the hook contract (see
    /// [`TaskQueue::hooked`]).
    pub fn is_hooked(&self) -> bool {
        self.positions.is_some()
    }

    /// Resolves a task id to its queue position via the hooked
    /// [`QueuePositions`] map; always `None` on unhooked queues.
    pub fn position_of(&self, id: u64) -> Option<usize> {
        self.positions.and_then(|p| p.get(id))
    }

    /// Number of runnable tasks.
    pub fn len(&self) -> usize {
        self.active.map_or(self.tasks.len(), <[usize]>::len)
    }

    /// True when no task is runnable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The task at queue position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    #[inline]
    pub fn get(&self, pos: usize) -> &'a TaskState {
        match self.active {
            Some(active) => &self.tasks[active[pos]],
            None => &self.tasks[pos],
        }
    }

    /// Iterates the runnable tasks in queue-position order.
    pub fn iter(&self) -> impl Iterator<Item = &'a TaskState> + '_ {
        (0..self.len()).map(|pos| self.get(pos))
    }
}

/// A multi-DNN scheduling policy.
///
/// The engine invokes the scheduler at every scheduling point — request
/// arrival while idle, and each layer(-block) completion — exactly the
/// preemptive layer-granularity model of the paper's Algorithm 2. The
/// engine owns task state; schedulers keep whatever per-task bookkeeping
/// they need internally (keyed by `TaskState::id`).
///
/// Implementations must keep the steady-state `pick_next` path
/// allocation-free and evaluate each task's score exactly once per
/// invocation (use [`pick_min_score`] / [`pick_max_score`]); the
/// score-evaluation-count and allocation regression tests pin this.
///
/// # Examples
///
/// ```
/// use dysta_core::{Fcfs, Scheduler};
///
/// let sched = Fcfs::new();
/// assert_eq!(sched.name(), "fcfs");
/// ```
///
/// The `Send` supertrait lets the cluster engine advance node engines
/// (each owning a `Box<dyn Scheduler>`) on pool worker threads during
/// its sharded advance phase; schedulers are node-local state, never
/// shared, so plain `Send` (no `Sync`) suffices.
pub trait Scheduler: Send {
    /// Stable lower-case policy name (used in experiment tables).
    fn name(&self) -> &str;

    /// Notification that `task` has entered the system.
    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        let _ = (task, lut, now_ns);
    }

    /// Notification that one layer of `task` finished executing (its
    /// `monitored` stream includes the new record).
    fn on_layer_complete(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        let _ = (task, lut, now_ns);
    }

    /// Notification that `task` completed all layers and left the system.
    fn on_task_complete(&mut self, task: &TaskState, now_ns: u64) {
        let _ = (task, now_ns);
    }

    /// Notification that `task` was withdrawn from this node *without*
    /// executing — a cluster front-end stole or migrated it to a peer.
    /// Only never-started tasks are ever withdrawn. Stateful schedulers
    /// drop their per-task bookkeeping here, exactly as on completion.
    fn on_task_removed(&mut self, task: &TaskState, now_ns: u64) {
        let _ = (task, now_ns);
    }

    /// Chooses which queued task runs its next layer. Returns a queue
    /// position (`0..queue.len()`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `queue` is empty; the engine never
    /// calls with an empty queue.
    fn pick_next(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) -> usize;
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        (**self).on_arrival(task, lut, now_ns);
    }

    fn on_layer_complete(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        (**self).on_layer_complete(task, lut, now_ns);
    }

    fn on_task_complete(&mut self, task: &TaskState, now_ns: u64) {
        (**self).on_task_complete(task, now_ns);
    }

    fn on_task_removed(&mut self, task: &TaskState, now_ns: u64) {
        (**self).on_task_removed(task, now_ns);
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) -> usize {
        (**self).pick_next(queue, lut, now_ns)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        (**self).on_arrival(task, lut, now_ns);
    }

    fn on_layer_complete(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        (**self).on_layer_complete(task, lut, now_ns);
    }

    fn on_task_complete(&mut self, task: &TaskState, now_ns: u64) {
        (**self).on_task_complete(task, now_ns);
    }

    fn on_task_removed(&mut self, task: &TaskState, now_ns: u64) {
        (**self).on_task_removed(task, now_ns);
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) -> usize {
        (**self).pick_next(queue, lut, now_ns)
    }
}

/// Single-pass argmin over the queue: evaluates `score` exactly once per
/// task (the double-evaluation `min_by`-with-closure pattern this
/// replaces recomputed both sides at every comparison), breaking score
/// ties towards the smaller task id.
///
/// # Panics
///
/// Panics if the queue is empty.
pub fn pick_min_score(queue: TaskQueue<'_>, mut score: impl FnMut(&TaskState) -> f64) -> usize {
    let mut best: Option<(f64, u64, usize)> = None;
    for (pos, task) in queue.iter().enumerate() {
        let s = score(task);
        let better = match &best {
            None => true,
            Some((best_s, best_id, _)) => match s.total_cmp(best_s) {
                Ordering::Less => true,
                Ordering::Equal => task.id < *best_id,
                Ordering::Greater => false,
            },
        };
        if better {
            best = Some((s, task.id, pos));
        }
    }
    best.expect("engine never passes an empty queue").2
}

/// Single-pass argmax counterpart of [`pick_min_score`] (same
/// evaluate-once guarantee, same smaller-id tie-break).
///
/// # Panics
///
/// Panics if the queue is empty.
pub fn pick_max_score(queue: TaskQueue<'_>, mut score: impl FnMut(&TaskState) -> f64) -> usize {
    let mut best: Option<(f64, u64, usize)> = None;
    for (pos, task) in queue.iter().enumerate() {
        let s = score(task);
        let better = match &best {
            None => true,
            Some((best_s, best_id, _)) => match s.total_cmp(best_s) {
                Ordering::Greater => true,
                Ordering::Equal => task.id < *best_id,
                Ordering::Less => false,
            },
        };
        if better {
            best = Some((s, task.id, pos));
        }
    }
    best.expect("engine never passes an empty queue").2
}

/// Shared helper: sparsity-unaware estimate of remaining time from the
/// latency LUT (what SJF/PREMA/Planaria/SDRM3 use — profiled averages
/// under the static-workload assumption the paper critiques).
#[inline]
pub(crate) fn lut_remaining_ns(task: &TaskState, lut: &ModelInfoLut) -> f64 {
    lut.info(task.variant).avg_remaining_ns(task.next_layer)
}

/// Shared helper: sparsity-unaware isolated-latency estimate.
#[inline]
pub(crate) fn lut_isolated_ns(task: &TaskState, lut: &ModelInfoLut) -> f64 {
    lut.info(task.variant).avg_latency_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::tests_support::dense_queue_tasks;

    #[test]
    fn pick_helpers_evaluate_each_task_exactly_once() {
        for n in [1usize, 2, 7, 32] {
            let tasks = dense_queue_tasks(n);
            let mut evals = 0usize;
            let _ = pick_min_score(TaskQueue::dense(&tasks), |_| {
                evals += 1;
                0.0
            });
            assert_eq!(evals, n, "min: one evaluation per task");
            evals = 0;
            let _ = pick_max_score(TaskQueue::dense(&tasks), |_| {
                evals += 1;
                0.0
            });
            assert_eq!(evals, n, "max: one evaluation per task");
        }
    }

    #[test]
    fn ties_break_towards_smaller_id() {
        let tasks = dense_queue_tasks(5);
        // All-equal scores: position of the smallest id wins. Task ids
        // are assigned in reverse so position != id.
        let min = pick_min_score(TaskQueue::dense(&tasks), |_| 1.0);
        let max = pick_max_score(TaskQueue::dense(&tasks), |_| 1.0);
        assert_eq!(tasks[min].id, 0);
        assert_eq!(tasks[max].id, 0);
    }

    #[test]
    fn min_and_max_agree_with_reference_scan() {
        let tasks = dense_queue_tasks(9);
        let score = |t: &TaskState| ((t.id * 7919) % 13) as f64;
        let q = TaskQueue::dense(&tasks);
        let min = pick_min_score(q, score);
        let max = pick_max_score(q, score);
        for t in &tasks {
            assert!(score(&tasks[min]) <= score(t));
            assert!(score(&tasks[max]) >= score(t));
        }
    }

    #[test]
    fn indexed_queue_exposes_only_active_positions() {
        let tasks = dense_queue_tasks(6);
        let active = [4usize, 1, 3];
        let q = TaskQueue::indexed(&tasks, &active);
        assert_eq!(q.len(), 3);
        assert_eq!(q.get(0).id, tasks[4].id);
        let ids: Vec<u64> = q.iter().map(|t| t.id).collect();
        assert_eq!(
            ids,
            vec![tasks[4].id, tasks[1].id, tasks[3].id],
            "iteration follows active order"
        );
    }
}
