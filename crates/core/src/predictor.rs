//! The sparse latency predictor (the paper's Algorithm 3 and Table 4).
//!
//! The paper profiles per-layer sparsity of BERT and GPT-2 (its Figure 9)
//! and finds the layers strongly linearly correlated, motivating a linear
//! predictor: monitor the sparsity of executed layers, form a *sparsity
//! coefficient* `γ` against the LUT averages, and scale the LUT remaining
//! latency: `Lat_sparse = α · γ · Lat_avg`.
//!
//! Because accelerator latency scales with surviving (non-zero) work, `γ`
//! is computed as a ratio of *densities*: `(1 − S_monitor)/(1 − S_avg)`.
//! A sample sparser than average yields `γ < 1` (it will finish sooner).

use serde::{Deserialize, Serialize};

use crate::{ModelInfo, TaskState};

/// How the sparsity coefficient aggregates monitored layers (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoeffStrategy {
    /// Average the density ratio over every executed dynamic layer.
    AverageAll,
    /// Average over the last `N` executed dynamic layers.
    LastN(usize),
    /// Use only the most recent dynamic layer — the paper's choice, as it
    /// matches average-all accuracy at lower hardware cost.
    LastOne,
    /// Ignore monitored sparsity entirely (`γ = 1`, pure LUT averages):
    /// the sparsity-unaware ablation.
    Disabled,
}

/// The hardware sparse latency predictor.
///
/// # Examples
///
/// ```
/// use dysta_core::{CoeffStrategy, SparseLatencyPredictor};
///
/// let p = SparseLatencyPredictor::new(CoeffStrategy::LastOne, 1.0);
/// assert_eq!(p.strategy(), CoeffStrategy::LastOne);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseLatencyPredictor {
    strategy: CoeffStrategy,
    alpha: f64,
}

impl Default for SparseLatencyPredictor {
    /// The paper's configuration: last-one strategy, `α = 1` (the target
    /// accelerators exploit both weight and activation sparsity).
    fn default() -> Self {
        SparseLatencyPredictor::new(CoeffStrategy::LastOne, 1.0)
    }
}

impl SparseLatencyPredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive or `LastN(0)` is requested.
    pub fn new(strategy: CoeffStrategy, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        if let CoeffStrategy::LastN(n) = strategy {
            assert!(n > 0, "last-N window must be non-empty");
        }
        SparseLatencyPredictor { strategy, alpha }
    }

    /// The configured aggregation strategy.
    pub fn strategy(&self) -> CoeffStrategy {
        self.strategy
    }

    /// The hardware-effectiveness factor `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The sparsity coefficient `γ` for `task` (Algorithm 3, line 6).
    ///
    /// Only layers with a dynamic-sparsity source (non-zero LUT average
    /// sparsity) participate; before any such layer has executed, `γ = 1`
    /// (fall back to the LUT average).
    ///
    /// O(1) for `LastOne` / `AverageAll` (reads the task's running
    /// [`crate::SparsitySummary`]); `LastN` re-scans only the monitored
    /// tail covering its window. No allocation on any path.
    pub fn coefficient(&self, task: &TaskState, info: &ModelInfo) -> f64 {
        let ratio = match self.strategy {
            CoeffStrategy::Disabled => return 1.0,
            CoeffStrategy::LastOne => task.sparsity.last(),
            CoeffStrategy::AverageAll => task.sparsity.mean(),
            CoeffStrategy::LastN(n) => last_n_ratio(task, info, n),
        };
        match ratio {
            None => 1.0,
            // The profiled hardware-effectiveness exponent maps the
            // monitored density ratio onto a latency ratio for this
            // variant.
            Some(r) => r.powf(info.gamma_exponent()),
        }
    }

    /// Predicted remaining latency of `task` in nanoseconds
    /// (`α · γ · Lat_avg_remaining`, Algorithm 3 line 7 applied to the
    /// remaining-layer suffix).
    pub fn remaining_ns(&self, task: &TaskState, info: &ModelInfo) -> f64 {
        self.alpha * self.coefficient(task, info) * info.avg_remaining_ns(task.next_layer)
    }

    /// Predicted total isolated latency of `task` in nanoseconds.
    pub fn total_ns(&self, task: &TaskState, info: &ModelInfo) -> f64 {
        self.alpha * self.coefficient(task, info) * info.avg_latency_ns()
    }
}

/// Mean density ratio over the last `n` executed dynamic layers, or
/// `None` before the first one. Two allocation-free passes over the
/// monitored tail: walk back to the window's start, then sum forward in
/// execution order (the same order the old collect-into-`Vec` summed,
/// so results are bit-identical).
fn last_n_ratio(task: &TaskState, info: &ModelInfo, n: usize) -> Option<f64> {
    let mut start = task.monitored.len();
    let mut in_window = 0usize;
    while start > 0 && in_window < n {
        start -= 1;
        if info
            .density_ratio(start, task.monitored[start].sparsity)
            .is_some()
        {
            in_window += 1;
        }
    }
    if in_window == 0 {
        return None;
    }
    let sum: f64 = task.monitored[start..]
        .iter()
        .enumerate()
        .filter_map(|(off, m)| info.density_ratio(start + off, m.sparsity))
        .sum();
    Some(sum / in_window as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelInfoLut, MonitoredLayer};
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

    fn bert_setup() -> (SparseModelSpec, ModelInfoLut, dysta_trace::ModelTraces) {
        let spec = SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0);
        let traces = TraceGenerator::default().generate(&spec, 32, 11);
        let mut store = TraceStore::new();
        store.insert(traces.clone());
        (spec, ModelInfoLut::from_store(&store), traces)
    }

    fn task_with_monitored(
        spec: SparseModelSpec,
        lut: &ModelInfoLut,
        trace: &dysta_trace::SampleTrace,
        upto: usize,
    ) -> TaskState {
        let variant = lut.variant_id(&spec).expect("spec profiled");
        let mut task = TaskState {
            next_layer: upto,
            executed_ns: trace.layers()[..upto].iter().map(|l| l.latency_ns).sum(),
            monitored: trace.layers()[..upto]
                .iter()
                .map(|l| MonitoredLayer {
                    sparsity: l.sparsity,
                    latency_ns: l.latency_ns,
                })
                .collect(),
            true_remaining_ns: trace.remaining_ns(upto),
            ..TaskState::arrived(0, spec, variant, 0, u64::MAX / 2, trace.num_layers())
        };
        task.rebuild_sparsity_summary(lut.info(variant));
        task
    }

    #[test]
    fn coefficient_is_one_before_dynamic_layers() {
        let (spec, lut, traces) = bert_setup();
        let t = task_with_monitored(spec, &lut, traces.sample(0), 0);
        let p = SparseLatencyPredictor::default();
        assert_eq!(p.coefficient(&t, lut.expect(&spec)), 1.0);
    }

    #[test]
    fn denser_than_average_sample_has_gamma_above_one() {
        let (spec, lut, traces) = bert_setup();
        let info = lut.expect(&spec);
        // Find the sample with the highest isolated latency (densest).
        let dense_idx = (0..traces.num_samples() as u64)
            .max_by_key(|&i| traces.sample(i).isolated_latency_ns())
            .unwrap();
        let trace = traces.sample(dense_idx);
        let t = task_with_monitored(spec, &lut, trace, trace.num_layers() / 2);
        let p = SparseLatencyPredictor::default();
        assert!(p.coefficient(&t, info) > 1.0);
    }

    #[test]
    fn prediction_tracks_true_remaining_better_than_lut() {
        let (spec, lut, traces) = bert_setup();
        let info = lut.expect(&spec);
        let p = SparseLatencyPredictor::default();
        let mut pred_err = 0.0;
        let mut lut_err = 0.0;
        for i in 0..traces.num_samples() as u64 {
            let trace = traces.sample(i);
            let mid = trace.num_layers() / 2;
            let t = task_with_monitored(spec, &lut, trace, mid);
            let truth = trace.remaining_ns(mid) as f64;
            pred_err += (p.remaining_ns(&t, info) - truth).powi(2);
            lut_err += (info.avg_remaining_ns(mid) - truth).powi(2);
        }
        assert!(
            pred_err < lut_err,
            "sparsity-aware prediction must beat the static LUT: {pred_err} vs {lut_err}"
        );
    }

    #[test]
    fn strategies_agree_on_single_observation() {
        let (spec, lut, traces) = bert_setup();
        let info = lut.expect(&spec);
        let trace = traces.sample(1);
        // Execute exactly up to (and including) the first dynamic layer.
        let first_dyn = trace
            .layers()
            .iter()
            .position(|l| l.sparsity > 0.0)
            .unwrap();
        let t = task_with_monitored(spec, &lut, trace, first_dyn + 1);
        let g_all =
            SparseLatencyPredictor::new(CoeffStrategy::AverageAll, 1.0).coefficient(&t, info);
        let g_n = SparseLatencyPredictor::new(CoeffStrategy::LastN(3), 1.0).coefficient(&t, info);
        let g_one = SparseLatencyPredictor::new(CoeffStrategy::LastOne, 1.0).coefficient(&t, info);
        assert!((g_all - g_one).abs() < 1e-12);
        assert!((g_n - g_one).abs() < 1e-12);
    }

    #[test]
    fn disabled_strategy_is_always_one() {
        let (spec, lut, traces) = bert_setup();
        let info = lut.expect(&spec);
        let trace = traces.sample(3);
        let t = task_with_monitored(spec, &lut, trace, trace.num_layers() / 2);
        let p = SparseLatencyPredictor::new(CoeffStrategy::Disabled, 1.0);
        assert_eq!(p.coefficient(&t, info), 1.0);
        assert!((p.remaining_ns(&t, info) - info.avg_remaining_ns(t.next_layer)).abs() < 1e-9);
    }

    #[test]
    fn alpha_scales_linearly() {
        let (spec, lut, traces) = bert_setup();
        let info = lut.expect(&spec);
        let trace = traces.sample(2);
        let t = task_with_monitored(spec, &lut, trace, trace.num_layers() / 2);
        let p1 = SparseLatencyPredictor::new(CoeffStrategy::LastOne, 1.0);
        let p2 = SparseLatencyPredictor::new(CoeffStrategy::LastOne, 2.0);
        assert!((2.0 * p1.remaining_ns(&t, info) - p2.remaining_ns(&t, info)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_non_positive_alpha() {
        let _ = SparseLatencyPredictor::new(CoeffStrategy::LastOne, 0.0);
    }

    #[test]
    #[should_panic(expected = "last-N window")]
    fn rejects_empty_window() {
        let _ = SparseLatencyPredictor::new(CoeffStrategy::LastN(0), 1.0);
    }
}
