//! Shared float→integer nanosecond rounding.
//!
//! Several seams convert float nanosecond quantities onto the engines'
//! integer clocks: service-time scaling on a node, transfer fetch
//! costs, stall-window inflation, predicted-backlog projections. They
//! must all round the same way — two call sites disagreeing by 1 ns is
//! enough to desynchronise a costed transfer from the capacity scaling
//! that priced it. These two helpers are that single definition.

/// Scales a nanosecond quantity by a service/stall factor (≥ 0),
/// rounding half-away-from-zero. Exact for the native factor 1.0: the
/// hot path skips the float round-trip entirely, so an unscaled
/// latency is returned bit-for-bit.
#[inline]
pub fn scale_ns(ns: u64, scale: f64) -> u64 {
    if scale == 1.0 {
        ns
    } else {
        (ns as f64 * scale).round() as u64
    }
}

/// Rounds a float nanosecond quantity to the integer clock:
/// half-away-from-zero, with negative values (and NaN) clamped to 0
/// and values beyond `u64::MAX` saturated by the float→int cast.
#[inline]
pub fn round_ns(ns: f64) -> u64 {
    ns.round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_identity_is_exact_at_one() {
        for ns in [0u64, 1, 3, 999_999_999_999, u64::MAX] {
            assert_eq!(scale_ns(ns, 1.0), ns);
        }
    }

    #[test]
    fn scale_rounds_half_away_from_zero() {
        // 3 * 0.5 = 1.5 -> 2 (away from zero, not banker's rounding).
        assert_eq!(scale_ns(3, 0.5), 2);
        assert_eq!(scale_ns(5, 0.5), 3);
        assert_eq!(scale_ns(1, 2.5), 3);
        assert_eq!(scale_ns(10, 1.25), 13);
        assert_eq!(scale_ns(0, 7.5), 0);
    }

    #[test]
    fn scale_saturates_on_overflow() {
        assert_eq!(scale_ns(u64::MAX, 2.0), u64::MAX);
    }

    #[test]
    fn round_boundaries() {
        assert_eq!(round_ns(0.0), 0);
        assert_eq!(round_ns(0.49999), 0);
        assert_eq!(round_ns(0.5), 1);
        assert_eq!(round_ns(1.5), 2);
        assert_eq!(round_ns(2.5), 3);
        assert_eq!(round_ns(1e9 + 0.5), 1_000_000_001);
    }

    #[test]
    fn round_clamps_negatives_and_nan() {
        assert_eq!(round_ns(-0.4), 0);
        assert_eq!(round_ns(-0.0), 0);
        assert_eq!(round_ns(-5.0e9), 0);
        assert_eq!(round_ns(f64::NAN), 0);
        assert_eq!(round_ns(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn round_saturates_on_overflow() {
        assert_eq!(round_ns(f64::INFINITY), u64::MAX);
        assert_eq!(round_ns(2.0e19 * 2.0), u64::MAX);
    }
}
