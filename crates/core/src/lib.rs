//! The Dysta bi-level sparsity-aware scheduler and its baselines.
//!
//! This crate is the paper's primary contribution (its Sections 4–5
//! algorithms):
//!
//! * [`DystaScheduler`] — the bi-level scheduler. The software-level
//!   *static* component (Algorithm 1) assigns each arriving request an
//!   initial score `Lat + β·(SLO − Lat)` from pattern-aware LUT
//!   information; the hardware-level *dynamic* component (Algorithm 2)
//!   re-scores the queue at every layer boundary as
//!   `T̂_remain + η·(T_slack + T_penalty)` using the sparse latency
//!   predictor.
//! * [`SparseLatencyPredictor`] — Algorithm 3: a linear model
//!   `Lat = α·γ·Lat_avg` whose coefficient `γ` is the ratio of monitored
//!   to LUT-average layer density, with *average-all*, *last-N* and
//!   *last-one* estimation strategies (Table 4).
//! * Baselines — [`Fcfs`], [`Sjf`], [`Prema`], [`Planaria`], [`Sdrm3`]
//!   and the perfect-knowledge [`OracleScheduler`], the comparison set of
//!   Table 5.
//!
//! Schedulers implement the [`Scheduler`] trait and are driven by the
//! discrete-event engine in `dysta-sim` at layer-boundary granularity,
//! matching the preemptive time-multiplexed execution model the paper
//! assumes.
//!
//! # Examples
//!
//! ```
//! use dysta_core::{Policy, Scheduler};
//!
//! let mut sched = Policy::Dysta.build();
//! assert_eq!(sched.name(), "dysta");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod dysta_sched;
mod indexed;
mod lut;
mod policy;
mod predictor;
mod rounding;
mod scheduler;
mod task;

pub use baselines::{Fcfs, Planaria, Prema, Sdrm3, Sjf};
pub use dysta_sched::{DystaConfig, DystaScheduler, DystaStaticScheduler, OracleScheduler};
pub use lut::{ModelInfo, ModelInfoLut};
pub use policy::Policy;
pub use predictor::{CoeffStrategy, SparseLatencyPredictor};
pub use rounding::{round_ns, scale_ns};
pub use scheduler::{pick_max_score, pick_min_score, QueuePositions, Scheduler, TaskQueue};
pub use task::{MonitoredLayer, SparsitySummary, TaskState};

// The interned variant handle travels with `TaskState`, so re-export it
// for downstream crates that only depend on the scheduler interface.
pub use dysta_trace::VariantId;
