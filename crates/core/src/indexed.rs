//! Sub-linear pick structures behind the hooked-queue fast path.
//!
//! Every scheduler's reference implementation is a fold over the whole
//! [`TaskQueue`] — O(queue) per pick, the overhead the paper's cheap
//! bi-level scoring is supposed to avoid. When the engine certifies
//! the hook contract ([`TaskQueue::hooked`]), schedulers instead serve
//! picks from the indexed structures here, touching only score-dirty
//! tasks:
//!
//! * [`LazyHeap`] — a binary heap with stamp-based lazy invalidation:
//!   re-keying a task pushes a fresh stamped node and orphans the old
//!   one, which is discarded if it ever surfaces. Stale nodes are
//!   bounded by periodic compaction.
//! * [`FcfsPick`] / [`ScorePick`] — exact-key heaps for FCFS, SJF and
//!   the Dysta static ablation. The fold's comparator (`total_cmp`,
//!   ties to the smaller id) is precisely the heap order `(key, id)`,
//!   so the heap top *is* the fold winner.
//! * [`DeadlinePick`] — Planaria's `(infeasible, deadline, remaining,
//!   id)` order as two exact-key heaps. Feasibility is the only
//!   clock-dependent bit and is monotone between hooks (slack only
//!   shrinks as `now` advances), so entries migrate feasible→infeasible
//!   at the moment they surface and never need to move back.
//! * [`AffinePick`] — the Dysta/Oracle dynamic score. The score is
//!   affine in pick-time `now` within each feasibility branch, so each
//!   task gets a *now-independent* heap key plus a per-pick common
//!   shift. Keys are approximate (float recomposition differs from the
//!   fold's op order by ulps), so the pick pops every candidate within
//!   a conservative error margin of the best and re-scores those few
//!   exactly with the fold's own formula and tie-break — bit-exactness
//!   comes from the exact rescore, never from key order.
//!
//! Correctness is anchored two ways: the schedulers `debug_assert` the
//! indexed pick against the fold on every hooked pick (turning the
//! whole debug test suite into an equivalence checker), and the
//! pick-sequence property test drives both paths through arrival /
//! layer-completion / removal churn across all policies.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::dysta_sched::DystaConfig;
use crate::scheduler::TaskQueue;
use crate::TaskState;

/// Total-order wrapper over `f64` (IEEE `totalOrder`), so float scores
/// can key a [`BinaryHeap`] with exactly the comparator the fold's
/// `total_cmp` uses.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OrdF64(pub f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A min-heap over `(key, task id)` with lazy invalidation.
///
/// Removals and re-keys are O(log n) amortized: each live id carries a
/// stamp, re-keying bumps the stamp and pushes a fresh node, and nodes
/// whose stamp no longer matches are discarded when they surface at the
/// top. The heap compacts when orphans outnumber live entries 4:1, so
/// memory stays O(live).
#[derive(Debug, Clone)]
pub(crate) struct LazyHeap<K> {
    heap: BinaryHeap<std::cmp::Reverse<(K, u64, u64)>>,
    /// `(id, stamp)` of each live entry, sorted by id.
    stamps: Vec<(u64, u64)>,
    next_stamp: u64,
}

// Manual impl: a derived one would demand `K: Default`.
impl<K: Ord> Default for LazyHeap<K> {
    fn default() -> Self {
        LazyHeap {
            heap: BinaryHeap::new(),
            stamps: Vec::new(),
            next_stamp: 0,
        }
    }
}

impl<K: Ord + Copy> LazyHeap<K> {
    /// Inserts `id` with `key`, replacing any previous key for `id`.
    pub fn insert(&mut self, id: u64, key: K) {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        match self.stamps.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(i) => self.stamps[i].1 = stamp,
            Err(i) => self.stamps.insert(i, (id, stamp)),
        }
        self.heap.push(std::cmp::Reverse((key, id, stamp)));
        if self.heap.len() > 4 * self.stamps.len() + 16 {
            self.compact();
        }
    }

    /// Removes `id` (no-op when absent). O(log n): the heap node is
    /// orphaned, not extracted.
    pub fn remove(&mut self, id: u64) {
        if let Ok(i) = self.stamps.binary_search_by_key(&id, |&(k, _)| k) {
            self.stamps.remove(i);
        }
    }

    /// The minimum live `(key, id)`, discarding orphaned nodes on the
    /// way down.
    pub fn peek(&mut self) -> Option<(K, u64)> {
        while let Some(&std::cmp::Reverse((key, id, stamp))) = self.heap.peek() {
            let live = self
                .stamps
                .binary_search_by_key(&id, |&(k, _)| k)
                .map(|i| self.stamps[i].1 == stamp)
                .unwrap_or(false);
            if live {
                return Some((key, id));
            }
            self.heap.pop();
        }
        None
    }

    /// Extracts the minimum live `(key, id)`.
    pub fn pop(&mut self) -> Option<(K, u64)> {
        let top = self.peek()?;
        self.heap.pop();
        self.remove(top.1);
        Some(top)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.stamps.clear();
    }

    fn compact(&mut self) {
        let stamps = &self.stamps;
        let live: Vec<_> = self
            .heap
            .drain()
            .filter(|&std::cmp::Reverse((_, id, stamp))| {
                stamps
                    .binary_search_by_key(&id, |&(k, _)| k)
                    .map(|i| stamps[i].1 == stamp)
                    .unwrap_or(false)
            })
            .collect();
        self.heap = live.into();
    }
}

/// Indexed FCFS: keyed once at arrival by `(arrival_ns, id)` — the
/// fold's exact comparator — so the heap top is the fold winner.
#[derive(Debug, Clone, Default)]
pub(crate) struct FcfsPick {
    heap: LazyHeap<u64>,
}

impl FcfsPick {
    pub fn on_arrival(&mut self, task: &TaskState) {
        self.heap.insert(task.id, task.arrival_ns);
    }

    pub fn on_remove(&mut self, id: u64) {
        self.heap.remove(id);
    }

    /// The fold-identical pick, or `None` when the tracked set does not
    /// cover the queue (hook contract not honoured for this queue).
    pub fn pick(&mut self, queue: &TaskQueue<'_>) -> Option<usize> {
        if self.heap.len() != queue.len() {
            return None;
        }
        let (_, id) = self.heap.peek()?;
        queue.position_of(id)
    }
}

/// Indexed exact-score argmin (SJF, Dysta-static): keyed by the fold's
/// own score, `total_cmp` order, ties to the smaller id — the heap top
/// is the fold winner. The owner re-keys whenever the score can change
/// (SJF at each layer completion; the static ablation never).
#[derive(Debug, Clone, Default)]
pub(crate) struct ScorePick {
    heap: LazyHeap<OrdF64>,
}

impl ScorePick {
    pub fn set_score(&mut self, id: u64, score: f64) {
        self.heap.insert(id, OrdF64(score));
    }

    pub fn on_remove(&mut self, id: u64) {
        self.heap.remove(id);
    }

    /// The fold-identical pick, or `None` when the tracked set does not
    /// cover the queue.
    pub fn pick(&mut self, queue: &TaskQueue<'_>) -> Option<usize> {
        if self.heap.len() != queue.len() {
            return None;
        }
        let (_, id) = self.heap.peek()?;
        queue.position_of(id)
    }
}

/// Indexed Planaria: the fold's `(infeasible, deadline, remaining, id)`
/// lexicographic order, split into a feasible and an infeasible heap
/// both keyed `(deadline, remaining, id)`.
///
/// Feasibility (`deadline − now − remaining < 0`) is the only
/// clock-dependent term, and it is monotone between hooks: `remaining`
/// only changes at a hook (which re-keys), and the computed slack is
/// nonincreasing in `now` (the `u64 → f64` cast and subtraction are
/// monotone). So a feasible-keyed entry that has lapsed migrates to the
/// infeasible heap when it surfaces, and infeasible entries never need
/// to move back; if the clock ever regresses (test harnesses), the
/// whole structure rebuilds from the queue.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeadlinePick {
    feasible: LazyHeap<(u64, OrdF64)>,
    infeasible: LazyHeap<(u64, OrdF64)>,
    last_now: u64,
    stale: bool,
}

impl DeadlinePick {
    fn branch_insert(&mut self, id: u64, deadline_ns: u64, remaining: f64, now_ns: u64) {
        let key = (deadline_ns, OrdF64(remaining));
        if (deadline_ns as f64 - now_ns as f64) - remaining < 0.0 {
            self.infeasible.insert(id, key);
            self.feasible.remove(id);
        } else {
            self.feasible.insert(id, key);
            self.infeasible.remove(id);
        }
    }

    /// Keys (or re-keys) `task` with a freshly computed LUT `remaining`.
    pub fn set_key(&mut self, task: &TaskState, remaining: f64, now_ns: u64) {
        if now_ns < self.last_now {
            self.stale = true;
        }
        self.last_now = self.last_now.max(now_ns);
        if self.stale {
            return;
        }
        self.branch_insert(task.id, task.deadline_ns(), remaining, now_ns);
    }

    pub fn on_remove(&mut self, id: u64) {
        self.feasible.remove(id);
        self.infeasible.remove(id);
    }

    /// The fold-identical pick, or `None` when the tracked set does not
    /// cover the queue. `remaining` recomputes the LUT estimate (needed
    /// only on a rebuild after a clock regression).
    pub fn pick(
        &mut self,
        queue: &TaskQueue<'_>,
        now_ns: u64,
        mut remaining: impl FnMut(&TaskState) -> f64,
    ) -> Option<usize> {
        if now_ns < self.last_now {
            self.stale = true;
        }
        self.last_now = self.last_now.max(now_ns);
        if self.feasible.len() + self.infeasible.len() != queue.len() {
            self.stale = true;
        }
        if self.stale {
            self.feasible.clear();
            self.infeasible.clear();
            for task in queue.iter() {
                self.branch_insert(task.id, task.deadline_ns(), remaining(task), now_ns);
            }
            self.stale = false;
        }
        // Migrate lapsed feasible entries as they surface; the first
        // still-feasible top is the winner (feasible beats infeasible in
        // the fold's leading key, and within a branch the heap order is
        // the fold's comparator exactly).
        while let Some(((deadline_ns, rem), id)) = self.feasible.peek() {
            if (deadline_ns as f64 - now_ns as f64) - rem.0 < 0.0 {
                self.feasible.pop();
                self.infeasible.insert(id, (deadline_ns, rem));
            } else {
                return queue.position_of(id);
            }
        }
        let (_, id) = self.infeasible.peek()?;
        queue.position_of(id)
    }
}

/// Indexed Dysta/Oracle dynamic scoring.
///
/// [`DystaConfig::dynamic_score_ms`] at pick time `now` with queue
/// length `L` decomposes, per feasibility branch, into a
/// now-independent per-task constant plus a branch-wide shift:
///
/// ```text
/// feasible:   C_f = remain·(1−η) + η·d − η·k/L      shift_f = η·now·(1/L − 1)
/// infeasible: C_i = 10^7 + remain − η·k/L           shift_i = η·now/L
/// ```
///
/// (all in ms; `d` the deadline, `k = arrival + executed` — both fixed
/// between hooks, as is `remain`). So within a branch the score order
/// is the `C` order, and the two branch tops compare via their shifted
/// values. The recomposition differs from the fold's float op order by
/// ulps, so candidates are popped in shifted-key order until the next
/// key exceeds the best *exact* score by a conservative error margin;
/// every popped candidate is re-scored with the fold's own
/// `dynamic_score_ms` and tie-break. Two one-sided facts keep the
/// margin sound: the fold's saturating wait only ever *raises* the
/// exact score above the affine model, and a feasible-keyed entry that
/// lapsed (slack went negative since keying) has a true score *above*
/// its feasible key (the 10^7 offset dwarfs `η·slack`) — both errors
/// point away from an early cutoff.
///
/// `L` appears in every key, so arrivals and departures mark the
/// structure stale and the next pick rebuilds from the queue — O(queue)
/// once per task lifetime against one pick per layer block, amortized
/// sub-linear. Layer completions (the hot event) re-key one task.
#[derive(Debug, Clone)]
pub(crate) struct AffinePick {
    feasible: LazyHeap<OrdF64>,
    infeasible: LazyHeap<OrdF64>,
    /// `(id, remain_ns)`, sorted by id: the predictor output cached at
    /// the last hook — bit-identical to a fresh call because the
    /// predictor is a pure function of task state, which only changes
    /// at hooks.
    remains: Vec<(u64, f64)>,
    /// Queue length the current keys were computed with.
    keyed_len: usize,
    /// Running max of per-entry magnitude bounds, for the error margin.
    max_mag: f64,
    last_now: u64,
    stale: bool,
    /// Popped candidates awaiting restore: `(infeasible, key, id)`.
    scratch: Vec<(bool, f64, u64)>,
}

impl Default for AffinePick {
    fn default() -> Self {
        AffinePick {
            feasible: LazyHeap::default(),
            infeasible: LazyHeap::default(),
            remains: Vec::new(),
            keyed_len: 0,
            max_mag: 0.0,
            last_now: 0,
            stale: true,
            scratch: Vec::new(),
        }
    }
}

/// Mirrors `DystaConfig::dynamic_score_ms`'s best-effort offset.
const BEST_EFFORT_OFFSET_MS: f64 = 1.0e7;

/// Relative error budget for the affine recomposition: the true float
/// discrepancy is a few ulps (~1e-15 of the term magnitudes); 1e-13
/// leaves two orders of headroom and still sits far below any
/// meaningful score gap.
const KEY_EPS: f64 = 1e-13;

impl AffinePick {
    fn cached_remain(&self, id: u64) -> Option<f64> {
        self.remains
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|i| self.remains[i].1)
    }

    /// Records the predictor's remaining-time estimate for a task
    /// entering the queue. Keys are built at the next pick (the queue
    /// length changed, so every key is stale anyway).
    pub fn on_arrival(&mut self, id: u64, remain_ns: f64) {
        match self.remains.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(i) => self.remains[i].1 = remain_ns,
            Err(i) => self.remains.insert(i, (id, remain_ns)),
        }
        self.stale = true;
    }

    /// Re-keys one task after a layer completion (queue length
    /// unchanged: only this task's score moved).
    pub fn on_layer_complete(&mut self, task: &TaskState, remain_ns: f64, eta: f64, now_ns: u64) {
        if let Ok(i) = self.remains.binary_search_by_key(&task.id, |&(k, _)| k) {
            self.remains[i].1 = remain_ns;
        } else {
            // Untracked layer completion: the hook contract is not
            // being honoured for this task — fall back hard.
            self.stale = true;
            return;
        }
        if now_ns < self.last_now {
            self.stale = true;
        }
        self.last_now = self.last_now.max(now_ns);
        if self.stale || self.remains.len() != self.keyed_len {
            self.stale = true;
            return;
        }
        self.key_one(
            task.id,
            remain_ns,
            task.deadline_ns(),
            key_k_ns(task),
            eta,
            now_ns,
        );
    }

    /// Drops a departed task (completion or withdrawal).
    pub fn on_remove(&mut self, id: u64) {
        if let Ok(i) = self.remains.binary_search_by_key(&id, |&(k, _)| k) {
            self.remains.remove(i);
        }
        self.feasible.remove(id);
        self.infeasible.remove(id);
        self.stale = true;
    }

    fn key_one(
        &mut self,
        id: u64,
        remain_ns: f64,
        deadline_ns: u64,
        k_ns: u64,
        eta: f64,
        now_ns: u64,
    ) {
        let l = self.keyed_len.max(1) as f64;
        let remain_ms = remain_ns / 1e6;
        let dms = deadline_ns as f64 / 1e6;
        let kms = k_ns as f64 / 1e6;
        let nms = now_ns as f64 / 1e6;
        let slack_ms = (deadline_ns as f64 - now_ns as f64) / 1e6 - remain_ms;
        let mag = BEST_EFFORT_OFFSET_MS + remain_ms.abs() + eta * (dms + kms / l) + nms;
        self.max_mag = self.max_mag.max(mag);
        if slack_ms < 0.0 {
            let c = BEST_EFFORT_OFFSET_MS + remain_ms - eta * kms / l;
            self.infeasible.insert(id, OrdF64(c));
            self.feasible.remove(id);
        } else {
            let c = remain_ms * (1.0 - eta) + eta * dms - eta * kms / l;
            self.feasible.insert(id, OrdF64(c));
            self.infeasible.remove(id);
        }
    }

    fn rebuild(&mut self, queue: &TaskQueue<'_>, eta: f64, now_ns: u64) -> Option<()> {
        self.feasible.clear();
        self.infeasible.clear();
        self.max_mag = 0.0;
        self.keyed_len = queue.len();
        for task in queue.iter() {
            let remain_ns = self.cached_remain(task.id)?;
            self.key_one(
                task.id,
                remain_ns,
                task.deadline_ns(),
                key_k_ns(task),
                eta,
                now_ns,
            );
        }
        self.stale = false;
        Some(())
    }

    /// The fold-identical pick, or `None` when the tracked set does not
    /// cover the queue.
    pub fn pick(
        &mut self,
        queue: &TaskQueue<'_>,
        config: &DystaConfig,
        now_ns: u64,
    ) -> Option<usize> {
        let len = queue.len();
        if self.remains.len() != len || len == 0 {
            return None;
        }
        if now_ns < self.last_now {
            self.stale = true;
        }
        self.last_now = self.last_now.max(now_ns);
        if self.stale || self.keyed_len != len {
            self.rebuild(queue, config.eta, now_ns)?;
        }

        let l = len as f64;
        let nms = now_ns as f64 / 1e6;
        let shift_f = config.eta * nms * (1.0 / l - 1.0);
        let shift_i = config.eta * nms / l;
        let margin = (self.max_mag + nms) * KEY_EPS;

        let mut best: Option<(f64, u64, usize)> = None;
        let mut abort = false;
        loop {
            let f_top = self
                .feasible
                .peek()
                .map(|(k, id)| (k.0 + shift_f, false, id));
            let i_top = self
                .infeasible
                .peek()
                .map(|(k, id)| (k.0 + shift_i, true, id));
            let (adj, from_i, id) = match (f_top, i_top) {
                (None, None) => break,
                (Some(f), None) => f,
                (None, Some(i)) => i,
                (Some(f), Some(i)) => {
                    if f.0 <= i.0 {
                        f
                    } else {
                        i
                    }
                }
            };
            if let Some((best_score, _, _)) = best {
                if adj > best_score + margin {
                    break;
                }
            }
            let (key, _) = if from_i {
                self.infeasible.pop()
            } else {
                self.feasible.pop()
            }
            .expect("peeked entry pops");
            let (pos, task) = match queue.position_of(id) {
                Some(pos) => (pos, queue.get(pos)),
                None => {
                    // Contract broken mid-pick: restore and fall back.
                    self.scratch.push((from_i, key.0, id));
                    abort = true;
                    break;
                }
            };
            debug_assert_eq!(task.id, id);
            let remain_ns = match self.cached_remain(id) {
                Some(r) => r,
                None => {
                    self.scratch.push((from_i, key.0, id));
                    abort = true;
                    break;
                }
            };
            // Exact re-score with the fold's own formula (it applies the
            // feasibility branch itself).
            let score = config.dynamic_score_ms(
                remain_ns,
                task.deadline_ns(),
                task.waiting_ns(now_ns),
                len,
                now_ns,
            );
            // A feasible-keyed entry may have lapsed since keying;
            // migrate it so later picks skip the re-discovery.
            let lapsed = !from_i
                && (task.deadline_ns() as f64 - now_ns as f64) / 1e6 - remain_ns / 1e6 < 0.0;
            if lapsed {
                let kms = key_k_ns(task) as f64 / 1e6;
                let c = BEST_EFFORT_OFFSET_MS + remain_ns / 1e6 - config.eta * kms / l;
                self.scratch.push((true, c, id));
            } else {
                self.scratch.push((from_i, key.0, id));
            }
            let better = match &best {
                None => true,
                Some((best_score, best_id, _)) => match score.total_cmp(best_score) {
                    Ordering::Less => true,
                    Ordering::Equal => id < *best_id,
                    Ordering::Greater => false,
                },
            };
            if better {
                best = Some((score, id, pos));
            }
        }
        for (inf, key, id) in self.scratch.drain(..) {
            if inf {
                self.infeasible.insert(id, OrdF64(key));
            } else {
                self.feasible.insert(id, OrdF64(key));
            }
        }
        if abort {
            return None;
        }
        best.map(|(_, _, pos)| pos)
    }
}

/// The per-task now-independent part of the waiting time:
/// `k = arrival + executed` (the fold computes
/// `wait = now ∸ arrival ∸ executed`).
fn key_k_ns(task: &TaskState) -> u64 {
    task.arrival_ns.saturating_add(task.executed_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_heap_basic_order_and_rekey() {
        let mut h = LazyHeap::default();
        h.insert(1, OrdF64(5.0));
        h.insert(2, OrdF64(3.0));
        h.insert(3, OrdF64(4.0));
        assert_eq!(h.len(), 3);
        assert_eq!(h.peek(), Some((OrdF64(3.0), 2)));
        // Re-key 2 above everyone: the orphaned node must be skipped.
        h.insert(2, OrdF64(9.0));
        assert_eq!(h.len(), 3);
        assert_eq!(h.peek(), Some((OrdF64(4.0), 3)));
        h.remove(3);
        assert_eq!(h.pop(), Some((OrdF64(5.0), 1)));
        assert_eq!(h.pop(), Some((OrdF64(9.0), 2)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn lazy_heap_ties_break_to_smaller_id() {
        let mut h = LazyHeap::default();
        h.insert(7, OrdF64(1.0));
        h.insert(3, OrdF64(1.0));
        h.insert(5, OrdF64(1.0));
        assert_eq!(h.peek(), Some((OrdF64(1.0), 3)));
    }

    #[test]
    fn lazy_heap_compaction_keeps_live_entries() {
        let mut h = LazyHeap::default();
        for id in 0..4u64 {
            h.insert(id, OrdF64(id as f64));
        }
        // Churn one id hard enough to trip compaction several times.
        for round in 0..200u64 {
            h.insert(0, OrdF64(100.0 + round as f64));
        }
        assert_eq!(h.len(), 4);
        assert!(h.heap.len() <= 4 * h.stamps.len() + 16 + 1);
        assert_eq!(h.pop(), Some((OrdF64(1.0), 1)));
        assert_eq!(h.pop(), Some((OrdF64(2.0), 2)));
        assert_eq!(h.pop(), Some((OrdF64(3.0), 3)));
        assert_eq!(h.pop(), Some((OrdF64(299.0), 0)));
    }

    #[test]
    fn ord_f64_is_total() {
        assert_eq!(OrdF64(f64::NAN), OrdF64(f64::NAN));
        assert!(OrdF64(-0.0) < OrdF64(0.0));
        assert!(OrdF64(1.0) < OrdF64(f64::NAN));
        assert!(OrdF64(f64::NEG_INFINITY) < OrdF64(-1.0));
    }
}
