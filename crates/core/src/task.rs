//! Scheduler-visible task state.

use dysta_trace::SparseModelSpec;

/// What the hardware monitor reports for one executed layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitoredLayer {
    /// Monitored layer sparsity (zero-counting circuit output).
    pub sparsity: f64,
    /// Observed layer latency in nanoseconds.
    pub latency_ns: u64,
}

/// The state of one in-flight request as seen at a scheduling point.
///
/// The discrete-event engine owns these and exposes them to schedulers.
/// Fields are grouped by information source:
///
/// * request metadata (`id`, `spec`, `arrival_ns`, `slo_ns`) — known to
///   every scheduler;
/// * progress (`next_layer`, `num_layers`, `executed_ns`) — known to every
///   scheduler (layer boundaries are architecturally visible);
/// * `monitored` — the runtime sparsity/latency stream only
///   sparsity-aware schedulers exploit;
/// * `true_remaining_ns` — ground truth reserved for the Oracle and for
///   metric computation. Fair schedulers must not read it.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskState {
    /// Request id.
    pub id: u64,
    /// Sparse-model variant of the request.
    pub spec: SparseModelSpec,
    /// Arrival time (ns since workload start).
    pub arrival_ns: u64,
    /// Relative latency SLO (ns).
    pub slo_ns: u64,
    /// Index of the next layer to execute (0 = not started).
    pub next_layer: usize,
    /// Total layer count of the model.
    pub num_layers: usize,
    /// Accumulated service time (ns).
    pub executed_ns: u64,
    /// Monitored records of executed layers, in execution order.
    pub monitored: Vec<MonitoredLayer>,
    /// Ground-truth remaining execution time (ns). Oracle-only.
    pub true_remaining_ns: u64,
}

impl TaskState {
    /// Absolute deadline (arrival + SLO).
    pub fn deadline_ns(&self) -> u64 {
        self.arrival_ns.saturating_add(self.slo_ns)
    }

    /// Time spent waiting (neither arriving nor being served) up to `now`.
    pub fn waiting_ns(&self, now_ns: u64) -> u64 {
        now_ns
            .saturating_sub(self.arrival_ns)
            .saturating_sub(self.executed_ns)
    }

    /// True once at least one layer has executed.
    pub fn started(&self) -> bool {
        self.next_layer > 0
    }

    /// True once every layer has executed.
    pub fn finished(&self) -> bool {
        self.next_layer >= self.num_layers
    }

    /// Fraction of layers completed.
    pub fn progress(&self) -> f64 {
        if self.num_layers == 0 {
            1.0
        } else {
            self.next_layer as f64 / self.num_layers as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;

    pub(crate) fn dummy_task(id: u64) -> TaskState {
        TaskState {
            id,
            spec: SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0),
            arrival_ns: 1_000,
            slo_ns: 10_000,
            next_layer: 0,
            num_layers: 4,
            executed_ns: 0,
            monitored: Vec::new(),
            true_remaining_ns: 5_000,
        }
    }

    #[test]
    fn deadline_and_waiting() {
        let mut t = dummy_task(0);
        assert_eq!(t.deadline_ns(), 11_000);
        assert_eq!(t.waiting_ns(3_000), 2_000);
        t.executed_ns = 1_500;
        assert_eq!(t.waiting_ns(3_000), 500);
        // Waiting never goes negative.
        assert_eq!(t.waiting_ns(0), 0);
    }

    #[test]
    fn lifecycle_flags() {
        let mut t = dummy_task(0);
        assert!(!t.started() && !t.finished());
        t.next_layer = 2;
        assert!(t.started() && !t.finished());
        assert!((t.progress() - 0.5).abs() < 1e-12);
        t.next_layer = 4;
        assert!(t.finished());
    }
}
