//! Scheduler-visible task state.

use dysta_trace::{SparseModelSpec, VariantId};

use crate::ModelInfo;

/// What the hardware monitor reports for one executed layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitoredLayer {
    /// Monitored layer sparsity (zero-counting circuit output).
    pub sparsity: f64,
    /// Observed layer latency in nanoseconds.
    pub latency_ns: u64,
}

/// Running aggregates over the monitored *dynamic* layers of one task:
/// the density ratios (monitored vs LUT-average density) the sparse
/// latency predictor folds into its coefficient.
///
/// Maintained incrementally by [`TaskState::record_layer`] so the
/// predictor's `LastOne` / `AverageAll` strategies read O(1) state
/// instead of re-scanning the whole monitored stream per decision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SparsitySummary {
    /// Number of dynamic layers observed so far.
    pub ratio_count: u32,
    /// Sum of their density ratios, in execution order.
    pub ratio_sum: f64,
    /// The most recent density ratio.
    pub last_ratio: f64,
}

impl SparsitySummary {
    /// Folds one observed dynamic-layer density ratio in.
    pub fn observe(&mut self, ratio: f64) {
        self.ratio_count += 1;
        self.ratio_sum += ratio;
        self.last_ratio = ratio;
    }

    /// The most recent ratio, if any dynamic layer has executed.
    pub fn last(&self) -> Option<f64> {
        (self.ratio_count > 0).then_some(self.last_ratio)
    }

    /// Mean ratio over every observed dynamic layer, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.ratio_count > 0).then(|| self.ratio_sum / f64::from(self.ratio_count))
    }
}

/// The state of one in-flight request as seen at a scheduling point.
///
/// The discrete-event engine owns these and exposes them to schedulers.
/// Fields are grouped by information source:
///
/// * request metadata (`id`, `spec`, `variant`, `arrival_ns`, `slo_ns`)
///   — known to every scheduler; `variant` is the request's interned
///   LUT handle, resolved once at enqueue time;
/// * progress (`next_layer`, `num_layers`, `executed_ns`) — known to every
///   scheduler (layer boundaries are architecturally visible);
/// * `monitored` / `sparsity` — the runtime sparsity/latency stream and
///   its running aggregates, which only sparsity-aware schedulers
///   exploit;
/// * `true_remaining_ns` — ground truth reserved for the Oracle and for
///   metric computation. Fair schedulers must not read it.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskState {
    /// Request id.
    pub id: u64,
    /// Sparse-model variant of the request.
    pub spec: SparseModelSpec,
    /// Interned LUT handle of `spec` (dense index into the engine's
    /// `ModelInfoLut`), resolved once when the request enters the system.
    pub variant: VariantId,
    /// Arrival time (ns since workload start).
    pub arrival_ns: u64,
    /// Relative latency SLO (ns).
    pub slo_ns: u64,
    /// Index of the next layer to execute (0 = not started).
    pub next_layer: usize,
    /// Total layer count of the model.
    pub num_layers: usize,
    /// Accumulated service time (ns).
    pub executed_ns: u64,
    /// Monitored records of executed layers, in execution order.
    pub monitored: Vec<MonitoredLayer>,
    /// Running density-ratio aggregates over the dynamic layers of
    /// `monitored` (kept in lockstep by [`TaskState::record_layer`]).
    pub sparsity: SparsitySummary,
    /// Ground-truth remaining execution time (ns). Oracle-only.
    pub true_remaining_ns: u64,
}

impl TaskState {
    /// Fresh, unstarted state for a request entering the system. The
    /// monitored stream is pre-sized to the full layer count so layer
    /// recording never reallocates mid-flight.
    pub fn arrived(
        id: u64,
        spec: SparseModelSpec,
        variant: VariantId,
        arrival_ns: u64,
        slo_ns: u64,
        num_layers: usize,
    ) -> Self {
        TaskState {
            id,
            spec,
            variant,
            arrival_ns,
            slo_ns,
            next_layer: 0,
            num_layers,
            executed_ns: 0,
            monitored: Vec::with_capacity(num_layers),
            sparsity: SparsitySummary::default(),
            true_remaining_ns: 0,
        }
    }

    /// Appends one executed-layer record and folds its density ratio into
    /// the running [`SparsitySummary`] when the layer has a
    /// dynamic-sparsity source in `info` (the task's own LUT entry).
    pub fn record_layer(&mut self, record: MonitoredLayer, info: &ModelInfo) {
        let layer = self.monitored.len();
        self.monitored.push(record);
        if let Some(ratio) = info.density_ratio(layer, record.sparsity) {
            self.sparsity.observe(ratio);
        }
    }

    /// Recomputes the sparsity summary from the monitored stream — for
    /// task states assembled field-by-field (tests, analysis harnesses)
    /// rather than grown through [`TaskState::record_layer`].
    pub fn rebuild_sparsity_summary(&mut self, info: &ModelInfo) {
        self.sparsity = SparsitySummary::default();
        for (layer, m) in self.monitored.iter().enumerate() {
            if let Some(ratio) = info.density_ratio(layer, m.sparsity) {
                self.sparsity.observe(ratio);
            }
        }
    }

    /// Absolute deadline (arrival + SLO).
    pub fn deadline_ns(&self) -> u64 {
        self.arrival_ns.saturating_add(self.slo_ns)
    }

    /// Time spent waiting (neither arriving nor being served) up to `now`.
    pub fn waiting_ns(&self, now_ns: u64) -> u64 {
        now_ns
            .saturating_sub(self.arrival_ns)
            .saturating_sub(self.executed_ns)
    }

    /// True once at least one layer has executed.
    pub fn started(&self) -> bool {
        self.next_layer > 0
    }

    /// True once every layer has executed.
    pub fn finished(&self) -> bool {
        self.next_layer >= self.num_layers
    }

    /// Fraction of layers completed.
    pub fn progress(&self) -> f64 {
        if self.num_layers == 0 {
            1.0
        } else {
            self.next_layer as f64 / self.num_layers as f64
        }
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;

    /// A queue of unstarted tasks whose ids run *opposite* to their
    /// positions, so position/id mix-ups show up in tie-break tests.
    pub(crate) fn dense_queue_tasks(n: usize) -> Vec<TaskState> {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        (0..n)
            .map(|pos| {
                TaskState::arrived(
                    (n - 1 - pos) as u64,
                    spec,
                    VariantId::default(),
                    0,
                    1_000_000,
                    4,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;

    pub(crate) fn dummy_task(id: u64) -> TaskState {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        TaskState {
            true_remaining_ns: 5_000,
            ..TaskState::arrived(id, spec, VariantId::default(), 1_000, 10_000, 4)
        }
    }

    #[test]
    fn deadline_and_waiting() {
        let mut t = dummy_task(0);
        assert_eq!(t.deadline_ns(), 11_000);
        assert_eq!(t.waiting_ns(3_000), 2_000);
        t.executed_ns = 1_500;
        assert_eq!(t.waiting_ns(3_000), 500);
        // Waiting never goes negative.
        assert_eq!(t.waiting_ns(0), 0);
    }

    #[test]
    fn lifecycle_flags() {
        let mut t = dummy_task(0);
        assert!(!t.started() && !t.finished());
        t.next_layer = 2;
        assert!(t.started() && !t.finished());
        assert!((t.progress() - 0.5).abs() < 1e-12);
        t.next_layer = 4;
        assert!(t.finished());
    }

    #[test]
    fn summary_tracks_mean_and_last() {
        let mut s = SparsitySummary::default();
        assert_eq!(s.last(), None);
        assert_eq!(s.mean(), None);
        s.observe(0.5);
        s.observe(1.5);
        assert_eq!(s.last(), Some(1.5));
        assert_eq!(s.mean(), Some(1.0));
    }
}
