//! Model-information lookup tables (the paper's latency / sparsity / shape
//! LUTs, Figure 8 and Algorithm 3).

use std::collections::HashMap;

use dysta_trace::{ModelTraces, SparseModelSpec, TraceStore};

/// Offline-profiled statistics of one sparse-model variant: the content of
/// the Dysta LUT entry for a model-pattern pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    avg_latency_ns: f64,
    avg_layer_latency_ns: Vec<f64>,
    avg_layer_sparsity: Vec<f64>,
    /// `suffix_latency_ns[j]` = average latency of layers `j..`.
    suffix_latency_ns: Vec<f64>,
    gamma_exponent: f64,
}

impl ModelInfo {
    /// Derives LUT statistics from Phase-1 traces.
    pub fn from_traces(traces: &ModelTraces) -> Self {
        let avg_layer_latency_ns = traces.avg_layer_latency_ns();
        let n = avg_layer_latency_ns.len();
        let mut suffix = vec![0.0; n + 1];
        for j in (0..n).rev() {
            suffix[j] = suffix[j + 1] + avg_layer_latency_ns[j];
        }
        let avg_layer_sparsity: Vec<f64> = (0..n).map(|j| traces.avg_layer_sparsity(j)).collect();
        let gamma_exponent = fit_gamma_exponent(traces, &avg_layer_sparsity);
        ModelInfo {
            avg_latency_ns: traces.avg_latency_ns(),
            avg_layer_sparsity,
            avg_layer_latency_ns,
            suffix_latency_ns: suffix,
            gamma_exponent,
        }
    }

    /// The profiled hardware-effectiveness exponent `κ`: how strongly the
    /// monitored density ratio translates into latency on this variant
    /// (the generalisation of the paper's per-pattern `α` calibration —
    /// fitted offline from the same Phase-1 traces that fill the LUTs).
    /// The predictor computes `γ = ratio^κ`.
    pub fn gamma_exponent(&self) -> f64 {
        self.gamma_exponent
    }

    /// Average end-to-end isolated latency (the latency-LUT entry used by
    /// Algorithm 1, line 5).
    pub fn avg_latency_ns(&self) -> f64 {
        self.avg_latency_ns
    }

    /// Average per-layer latency profile.
    pub fn avg_layer_latency_ns(&self) -> &[f64] {
        &self.avg_layer_latency_ns
    }

    /// Average monitored sparsity per layer (the sparsity-LUT entry used
    /// by Algorithm 3, line 4).
    pub fn avg_layer_sparsity(&self) -> &[f64] {
        &self.avg_layer_sparsity
    }

    /// Average remaining latency when the next layer to run is
    /// `next_layer` (clamped to 0 past the end).
    pub fn avg_remaining_ns(&self, next_layer: usize) -> f64 {
        let idx = next_layer.min(self.suffix_latency_ns.len() - 1);
        self.suffix_latency_ns[idx]
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.avg_layer_latency_ns.len()
    }
}

/// Least-squares fit (through the origin, in log space) of the isolated
/// latency ratio against the first dynamic layer's monitored density
/// ratio: `ln(latency/avg) ≈ κ · ln(density/avg_density)`.
fn fit_gamma_exponent(traces: &ModelTraces, avg_layer_sparsity: &[f64]) -> f64 {
    let Some(first_dynamic) = avg_layer_sparsity.iter().position(|&s| s > 1e-6) else {
        return 1.0;
    };
    let avg_density = (1.0 - avg_layer_sparsity[first_dynamic]).max(1e-3);
    let avg_latency = traces.avg_latency_ns().max(1.0);
    let mut num = 0.0;
    let mut den = 0.0;
    for sample in traces.samples() {
        let density = (1.0 - sample.layers()[first_dynamic].sparsity).max(1e-3);
        let lr = (density / avg_density).ln();
        let lt = (sample.isolated_latency_ns() as f64 / avg_latency).ln();
        num += lr * lt;
        den += lr * lr;
    }
    if den < 1e-9 {
        1.0
    } else {
        (num / den).clamp(0.0, 2.0)
    }
}

/// The LUT collection: one [`ModelInfo`] per sparse-model variant, keyed
/// like the paper's "model-pattern pair".
///
/// # Examples
///
/// ```
/// use dysta_core::ModelInfoLut;
/// use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};
/// use dysta_models::ModelId;
/// use dysta_sparsity::SparsityPattern;
///
/// let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
/// let mut store = TraceStore::new();
/// store.insert(TraceGenerator::default().generate(&spec, 4, 0));
/// let lut = ModelInfoLut::from_store(&store);
/// assert!(lut.get(&spec).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelInfoLut {
    entries: HashMap<String, ModelInfo>,
}

impl ModelInfoLut {
    /// Builds the LUTs from a Phase-1 trace store.
    pub fn from_store(store: &TraceStore) -> Self {
        ModelInfoLut {
            entries: store
                .iter()
                .map(|t| (t.spec().key(), ModelInfo::from_traces(t)))
                .collect(),
        }
    }

    /// Looks up the entry for a variant.
    pub fn get(&self, spec: &SparseModelSpec) -> Option<&ModelInfo> {
        self.entries.get(&spec.key())
    }

    /// Looks up the entry for a variant, panicking when absent.
    ///
    /// # Panics
    ///
    /// Panics if the variant was never profiled. The engine guarantees
    /// every request's variant is in the store, so schedulers use this.
    pub fn expect(&self, spec: &SparseModelSpec) -> &ModelInfo {
        self.entries
            .get(&spec.key())
            .unwrap_or_else(|| panic!("no LUT entry for {spec}"))
    }

    /// Number of profiled variants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no variants are profiled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::TraceGenerator;

    fn lut_for(model: ModelId) -> (SparseModelSpec, ModelInfoLut) {
        let spec = SparseModelSpec::new(model, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        store.insert(TraceGenerator::default().generate(&spec, 8, 3));
        (spec, ModelInfoLut::from_store(&store))
    }

    #[test]
    fn suffix_sums_telescope() {
        let (spec, lut) = lut_for(ModelId::MobileNet);
        let info = lut.expect(&spec);
        assert!((info.avg_remaining_ns(0) - info.avg_latency_ns()).abs() < 1.0);
        assert_eq!(info.avg_remaining_ns(info.num_layers()), 0.0);
        // Remaining decreases monotonically.
        for j in 0..info.num_layers() {
            assert!(info.avg_remaining_ns(j) >= info.avg_remaining_ns(j + 1));
        }
    }

    #[test]
    fn remaining_clamps_past_end() {
        let (spec, lut) = lut_for(ModelId::MobileNet);
        let info = lut.expect(&spec);
        assert_eq!(info.avg_remaining_ns(9999), 0.0);
    }

    #[test]
    #[should_panic(expected = "no LUT entry")]
    fn expect_panics_on_missing() {
        let (_, lut) = lut_for(ModelId::MobileNet);
        let other = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0);
        let _ = lut.expect(&other);
    }

    #[test]
    fn sparsity_lut_tracks_dynamic_layers() {
        let (spec, lut) = lut_for(ModelId::Bert);
        let info = lut.expect(&spec);
        assert!(info.avg_layer_sparsity().iter().any(|&s| s > 0.5));
    }
}
