//! Model-information lookup tables (the paper's latency / sparsity / shape
//! LUTs, Figure 8 and Algorithm 3).

use dysta_trace::{ModelTraces, SparseModelSpec, TraceStore, VariantId};

/// LUT sparsity averages at or below this are "no dynamic-sparsity
/// source" — the layer is skipped by the predictor's coefficient.
pub(crate) const DYNAMIC_SPARSITY_EPS: f64 = 1e-6;

/// Densities are floored here before forming ratios, bounding the
/// coefficient for fully sparse layers.
pub(crate) const DENSITY_FLOOR: f64 = 1e-3;

/// Offline-profiled statistics of one sparse-model variant: the content of
/// the Dysta LUT entry for a model-pattern pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    avg_latency_ns: f64,
    avg_layer_latency_ns: Vec<f64>,
    avg_layer_sparsity: Vec<f64>,
    /// `suffix_latency_ns[j]` = average latency of layers `j..`.
    suffix_latency_ns: Vec<f64>,
    gamma_exponent: f64,
}

impl ModelInfo {
    /// Derives LUT statistics from Phase-1 traces.
    pub fn from_traces(traces: &ModelTraces) -> Self {
        let avg_layer_latency_ns = traces.avg_layer_latency_ns();
        let n = avg_layer_latency_ns.len();
        let mut suffix = vec![0.0; n + 1];
        for j in (0..n).rev() {
            suffix[j] = suffix[j + 1] + avg_layer_latency_ns[j];
        }
        let avg_layer_sparsity: Vec<f64> = (0..n).map(|j| traces.avg_layer_sparsity(j)).collect();
        let gamma_exponent = fit_gamma_exponent(traces, &avg_layer_sparsity);
        ModelInfo {
            avg_latency_ns: traces.avg_latency_ns(),
            avg_layer_sparsity,
            avg_layer_latency_ns,
            suffix_latency_ns: suffix,
            gamma_exponent,
        }
    }

    /// The profiled hardware-effectiveness exponent `κ`: how strongly the
    /// monitored density ratio translates into latency on this variant
    /// (the generalisation of the paper's per-pattern `α` calibration —
    /// fitted offline from the same Phase-1 traces that fill the LUTs).
    /// The predictor computes `γ = ratio^κ`.
    pub fn gamma_exponent(&self) -> f64 {
        self.gamma_exponent
    }

    /// Average end-to-end isolated latency (the latency-LUT entry used by
    /// Algorithm 1, line 5).
    pub fn avg_latency_ns(&self) -> f64 {
        self.avg_latency_ns
    }

    /// Average per-layer latency profile.
    pub fn avg_layer_latency_ns(&self) -> &[f64] {
        &self.avg_layer_latency_ns
    }

    /// Average monitored sparsity per layer (the sparsity-LUT entry used
    /// by Algorithm 3, line 4).
    pub fn avg_layer_sparsity(&self) -> &[f64] {
        &self.avg_layer_sparsity
    }

    /// Average remaining latency when the next layer to run is
    /// `next_layer` (clamped to 0 past the end).
    pub fn avg_remaining_ns(&self, next_layer: usize) -> f64 {
        let idx = next_layer.min(self.suffix_latency_ns.len() - 1);
        self.suffix_latency_ns[idx]
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.avg_layer_latency_ns.len()
    }

    /// The floored average density of one layer, or `None` when the
    /// layer has no dynamic-sparsity source in this LUT entry
    /// (Algorithm 3's per-layer filter). The single home of the
    /// dynamic-layer epsilon and density floor — the software predictor
    /// and the FP16 hardware datapath both resolve layers through here,
    /// so the constants cannot drift apart.
    pub fn dynamic_layer_avg_density(&self, layer: usize) -> Option<f64> {
        let avg = *self.avg_layer_sparsity.get(layer)?;
        if avg <= DYNAMIC_SPARSITY_EPS {
            return None;
        }
        Some((1.0 - avg).max(DENSITY_FLOOR))
    }

    /// The monitored-vs-average density ratio for one executed layer, or
    /// `None` when the layer has no dynamic-sparsity source. The single
    /// definition the incremental [`crate::SparsitySummary`] and the
    /// predictor's windowed re-scan both use, so the two stay
    /// bit-identical.
    pub fn density_ratio(&self, layer: usize, monitored_sparsity: f64) -> Option<f64> {
        let avg_density = self.dynamic_layer_avg_density(layer)?;
        let mon_density = (1.0 - monitored_sparsity).max(DENSITY_FLOOR);
        Some(mon_density / avg_density)
    }
}

/// Least-squares fit (through the origin, in log space) of the isolated
/// latency ratio against the first dynamic layer's monitored density
/// ratio: `ln(latency/avg) ≈ κ · ln(density/avg_density)`.
fn fit_gamma_exponent(traces: &ModelTraces, avg_layer_sparsity: &[f64]) -> f64 {
    let Some(first_dynamic) = avg_layer_sparsity.iter().position(|&s| s > 1e-6) else {
        return 1.0;
    };
    let avg_density = (1.0 - avg_layer_sparsity[first_dynamic]).max(1e-3);
    let avg_latency = traces.avg_latency_ns().max(1.0);
    let mut num = 0.0;
    let mut den = 0.0;
    for sample in traces.samples() {
        let density = (1.0 - sample.layers()[first_dynamic].sparsity).max(1e-3);
        let lr = (density / avg_density).ln();
        let lt = (sample.isolated_latency_ns() as f64 / avg_latency).ln();
        num += lr * lt;
        den += lr * lr;
    }
    if den < 1e-9 {
        1.0
    } else {
        (num / den).clamp(0.0, 2.0)
    }
}

/// The LUT collection: one [`ModelInfo`] per sparse-model variant, held
/// densely in [`VariantId`] order (the paper's "model-pattern pair" keys
/// survive only on the slow path).
///
/// Hot paths index with [`ModelInfoLut::info`] — a bounds-checked array
/// access, no string formatting or hashing. Ids agree with the
/// [`TraceStore`] the LUT was built from ([`TraceStore::variant_id`]),
/// and with every clone of the LUT, so a cluster of nodes sharing one
/// store can exchange ids freely.
///
/// # Examples
///
/// ```
/// use dysta_core::ModelInfoLut;
/// use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};
/// use dysta_models::ModelId;
/// use dysta_sparsity::SparsityPattern;
///
/// let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
/// let mut store = TraceStore::new();
/// store.insert(TraceGenerator::default().generate(&spec, 4, 0));
/// let lut = ModelInfoLut::from_store(&store);
/// let id = lut.variant_id(&spec).unwrap();
/// assert_eq!(lut.get(&spec), Some(lut.info(id)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelInfoLut {
    /// Spec keys, sorted; rank = `VariantId` (mirrors the source store).
    keys: Vec<String>,
    /// LUT entries in key order; index = `VariantId`.
    entries: Vec<ModelInfo>,
}

impl ModelInfoLut {
    /// Builds the LUTs from a Phase-1 trace store. Variant ids are
    /// inherited from the store's sorted-key ranks.
    pub fn from_store(store: &TraceStore) -> Self {
        ModelInfoLut {
            keys: store.iter().map(|t| t.spec().key()).collect(),
            entries: store.iter().map(ModelInfo::from_traces).collect(),
        }
    }

    /// The entry for an interned variant — the allocation-free fast path
    /// every per-decision lookup uses.
    ///
    /// # Panics
    ///
    /// Panics if the id was not minted by this LUT (or the store it was
    /// built from).
    #[inline]
    pub fn info(&self, id: VariantId) -> &ModelInfo {
        self.entries
            .get(id.index())
            .unwrap_or_else(|| panic!("no LUT entry for variant {}", id.index()))
    }

    /// Resolves a spec to its interned id (binary search on a
    /// stack-formatted key; done once per request at enqueue).
    pub fn variant_id(&self, spec: &SparseModelSpec) -> Option<VariantId> {
        let probe = spec.spec_key();
        self.keys
            .binary_search_by(|k| k.as_str().cmp(probe.as_str()))
            .ok()
            .map(VariantId::from_index)
    }

    /// Looks up the entry for a variant by spec (slow path).
    pub fn get(&self, spec: &SparseModelSpec) -> Option<&ModelInfo> {
        self.variant_id(spec).map(|id| &self.entries[id.index()])
    }

    /// Looks up the entry for a variant by spec, panicking when absent.
    ///
    /// # Panics
    ///
    /// Panics if the variant was never profiled. Slow-path convenience
    /// for construction and analysis code; schedulers go through
    /// [`ModelInfoLut::info`] with the task's interned id.
    pub fn expect(&self, spec: &SparseModelSpec) -> &ModelInfo {
        self.get(spec)
            .unwrap_or_else(|| panic!("no LUT entry for {spec}"))
    }

    /// Number of profiled variants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no variants are profiled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::TraceGenerator;

    fn lut_for(model: ModelId) -> (SparseModelSpec, ModelInfoLut) {
        let spec = SparseModelSpec::new(model, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        store.insert(TraceGenerator::default().generate(&spec, 8, 3));
        (spec, ModelInfoLut::from_store(&store))
    }

    #[test]
    fn suffix_sums_telescope() {
        let (spec, lut) = lut_for(ModelId::MobileNet);
        let info = lut.expect(&spec);
        assert!((info.avg_remaining_ns(0) - info.avg_latency_ns()).abs() < 1.0);
        assert_eq!(info.avg_remaining_ns(info.num_layers()), 0.0);
        // Remaining decreases monotonically.
        for j in 0..info.num_layers() {
            assert!(info.avg_remaining_ns(j) >= info.avg_remaining_ns(j + 1));
        }
    }

    #[test]
    fn remaining_clamps_past_end() {
        let (spec, lut) = lut_for(ModelId::MobileNet);
        let info = lut.expect(&spec);
        assert_eq!(info.avg_remaining_ns(9999), 0.0);
    }

    #[test]
    #[should_panic(expected = "no LUT entry")]
    fn expect_panics_on_missing() {
        let (_, lut) = lut_for(ModelId::MobileNet);
        let other = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0);
        let _ = lut.expect(&other);
    }

    #[test]
    fn sparsity_lut_tracks_dynamic_layers() {
        let (spec, lut) = lut_for(ModelId::Bert);
        let info = lut.expect(&spec);
        assert!(info.avg_layer_sparsity().iter().any(|&s| s > 0.5));
    }
}
