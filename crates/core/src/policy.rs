//! Policy selector: build any scheduler by name.

use std::fmt;
use std::str::FromStr;

use crate::{
    DystaConfig, DystaScheduler, DystaStaticScheduler, Fcfs, OracleScheduler, Planaria, Prema,
    Scheduler, Sdrm3, Sjf, SparseLatencyPredictor,
};

/// Every scheduling policy evaluated by the paper, as a constructible
/// enum (used by the benchmark harness to sweep the full comparison set).
///
/// # Examples
///
/// ```
/// use dysta_core::Policy;
///
/// let names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
/// assert!(names.contains(&"dysta") && names.contains(&"oracle"));
/// assert_eq!("sjf".parse::<Policy>(), Ok(Policy::Sjf));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Policy {
    Fcfs,
    Sjf,
    Prema,
    Planaria,
    Sdrm3,
    DystaStatic,
    Dysta,
    Oracle,
}

impl Policy {
    /// All policies in the paper's table order (plus the ablation).
    pub const ALL: [Policy; 8] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Sdrm3,
        Policy::Prema,
        Policy::Planaria,
        Policy::DystaStatic,
        Policy::Dysta,
        Policy::Oracle,
    ];

    /// The Table 5 comparison set (no ablation, no oracle).
    pub const TABLE5: [Policy; 6] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Sdrm3,
        Policy::Prema,
        Policy::Planaria,
        Policy::Dysta,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::Sjf => "sjf",
            Policy::Prema => "prema",
            Policy::Planaria => "planaria",
            Policy::Sdrm3 => "sdrm3",
            Policy::DystaStatic => "dysta-static",
            Policy::Dysta => "dysta",
            Policy::Oracle => "oracle",
        }
    }

    /// Instantiates the scheduler with default hyperparameters.
    pub fn build(self) -> Box<dyn Scheduler> {
        self.build_with(DystaConfig::default())
    }

    /// Instantiates the scheduler; Dysta-family policies use `config`.
    pub fn build_with(self, config: DystaConfig) -> Box<dyn Scheduler> {
        match self {
            Policy::Fcfs => Box::new(Fcfs::new()),
            Policy::Sjf => Box::new(Sjf::new()),
            Policy::Prema => Box::new(Prema::default()),
            Policy::Planaria => Box::new(Planaria::new()),
            Policy::Sdrm3 => Box::new(Sdrm3::default()),
            Policy::DystaStatic => Box::new(DystaStaticScheduler::new(config)),
            Policy::Dysta => Box::new(DystaScheduler::new(
                config,
                SparseLatencyPredictor::default(),
            )),
            Policy::Oracle => Box::new(OracleScheduler::new(config)),
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`Policy`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy `{}`", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for Policy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Policy::ALL
            .iter()
            .copied()
            .find(|p| p.name() == lower)
            .ok_or_else(|| ParsePolicyError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in Policy::ALL {
            assert_eq!(p.name().parse::<Policy>(), Ok(p));
            assert_eq!(p.build().name(), p.name());
        }
    }

    #[test]
    fn unknown_policy_is_error() {
        assert!("edf".parse::<Policy>().is_err());
    }

    #[test]
    fn table5_subset_of_all() {
        for p in Policy::TABLE5 {
            assert!(Policy::ALL.contains(&p));
        }
        assert!(!Policy::TABLE5.contains(&Policy::Oracle));
    }
}
