//! The Dysta bi-level scheduler (Algorithms 1 and 2) plus its ablation
//! and the Oracle reference.

use crate::indexed::{AffinePick, ScorePick};
use crate::scheduler::{lut_isolated_ns, pick_min_score, Scheduler, TaskQueue};
use crate::{ModelInfoLut, SparseLatencyPredictor, TaskState};

/// A flat ordered id→score map: sorted `Vec` + binary search instead of
/// a `HashMap<u64, f64>`, so the lookup the static schedulers do per
/// task per pick is a cache-friendly probe with no hashing, and the
/// per-pick path never allocates (inserts happen at arrival only).
#[derive(Debug, Clone, Default)]
pub(crate) struct ScoreMap {
    entries: Vec<(u64, f64)>,
}

impl ScoreMap {
    /// Inserts or replaces the score for `id`.
    pub fn insert(&mut self, id: u64, score: f64) {
        match self.entries.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(i) => self.entries[i].1 = score,
            Err(i) => self.entries.insert(i, (id, score)),
        }
    }

    /// The score recorded for `id`, if any.
    pub fn get(&self, id: u64) -> Option<f64> {
        self.entries
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Removes the score for `id`, if present.
    pub fn remove(&mut self, id: u64) {
        if let Ok(i) = self.entries.binary_search_by_key(&id, |&(k, _)| k) {
            self.entries.remove(i);
        }
    }

    /// Number of recorded scores.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Hyperparameters of the Dysta scoring functions.
///
/// * `beta` weights slack against estimated latency in the static score
///   (Algorithm 1, line 7): larger `beta` biases towards SLO compliance,
///   smaller towards ANTT.
/// * `eta` weights `(T_slack + T_penalty)` against remaining time in the
///   dynamic score (Algorithm 2, line 11) — the tunable ANTT/violation
///   trade-off knob.
///
/// Scores are computed in milliseconds, the unit the FP16 hardware
/// scheduler operates in; the paper's dimensionless waiting-time penalty
/// `(T_wait/T_isol)/|Q|` is multiplied through by `T_isol` so every term
/// shares units (equivalently, `T_wait/|Q|`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DystaConfig {
    /// Static-score slack weight `β`.
    pub beta: f64,
    /// Dynamic-score slack/penalty weight `η`.
    pub eta: f64,
}

impl Default for DystaConfig {
    fn default() -> Self {
        DystaConfig {
            beta: 0.5,
            eta: 0.03,
        }
    }
}

impl DystaConfig {
    /// The Algorithm 1 static score, in milliseconds.
    pub fn static_score_ms(&self, predicted_latency_ns: f64, slo_ns: u64) -> f64 {
        let lat_ms = predicted_latency_ns / 1e6;
        let slack_ms = slo_ns as f64 / 1e6 - lat_ms;
        lat_ms + self.beta * slack_ms
    }

    /// The Algorithm 2 dynamic score, in milliseconds.
    ///
    /// Requests whose predicted slack is already negative cannot meet
    /// their SLO under any schedule; they are demoted to best-effort
    /// (a large score offset) so the slack term cannot starve feasible
    /// requests chasing a lost cause. This matches the admission
    /// behaviour of deadline-aware accelerator schedulers (Planaria drops
    /// or demotes infeasible tasks) and only engages under overload.
    pub fn dynamic_score_ms(
        &self,
        remain_ns: f64,
        deadline_ns: u64,
        wait_ns: u64,
        queue_len: usize,
        now_ns: u64,
    ) -> f64 {
        /// Score offset pushing deadline-infeasible requests behind every
        /// feasible one while preserving their relative order.
        const BEST_EFFORT_OFFSET_MS: f64 = 1.0e7;
        let remain_ms = remain_ns / 1e6;
        let slack_ms = (deadline_ns as f64 - now_ns as f64) / 1e6 - remain_ms;
        let penalty_ms = wait_ns as f64 / 1e6 / queue_len.max(1) as f64;
        if slack_ms < 0.0 {
            BEST_EFFORT_OFFSET_MS + remain_ms + self.eta * penalty_ms
        } else {
            remain_ms + self.eta * (slack_ms + penalty_ms)
        }
    }
}

/// The full Dysta scheduler: software static level + hardware dynamic
/// level with the sparse latency predictor.
///
/// On a hooked queue the dynamic pick is served from the affine-keyed
/// heaps of [`AffinePick`] — the predictor runs once per layer
/// completion instead of once per task per pick; unhooked queues take
/// the reference fold.
///
/// # Examples
///
/// ```
/// use dysta_core::{DystaScheduler, Scheduler};
/// assert_eq!(DystaScheduler::default().name(), "dysta");
/// ```
#[derive(Debug, Clone, Default)]
pub struct DystaScheduler {
    config: DystaConfig,
    predictor: SparseLatencyPredictor,
    static_scores: ScoreMap,
    index: AffinePick,
}

impl DystaScheduler {
    /// Creates the scheduler with explicit hyperparameters and predictor.
    pub fn new(config: DystaConfig, predictor: SparseLatencyPredictor) -> Self {
        DystaScheduler {
            config,
            predictor,
            static_scores: ScoreMap::default(),
            index: AffinePick::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DystaConfig {
        &self.config
    }

    /// The static score assigned at arrival, if the task has arrived.
    pub fn static_score(&self, task_id: u64) -> Option<f64> {
        self.static_scores.get(task_id)
    }
}

impl Scheduler for DystaScheduler {
    fn name(&self) -> &str {
        "dysta"
    }

    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, _now_ns: u64) {
        // Algorithm 1: LUT lookup, pattern-aware latency estimate, score.
        let lat = lut_isolated_ns(task, lut);
        self.static_scores
            .insert(task.id, self.config.static_score_ms(lat, task.slo_ns));
        let remain = self.predictor.remaining_ns(task, lut.info(task.variant));
        self.index.on_arrival(task.id, remain);
    }

    fn on_layer_complete(&mut self, task: &TaskState, lut: &ModelInfoLut, now_ns: u64) {
        // The predictor is a pure function of task state, which only
        // changes at this hook — one evaluation here replaces one per
        // pick in the fold, and the cached value is bit-identical.
        let remain = self.predictor.remaining_ns(task, lut.info(task.variant));
        self.index
            .on_layer_complete(task, remain, self.config.eta, now_ns);
    }

    fn on_task_complete(&mut self, task: &TaskState, _now_ns: u64) {
        self.static_scores.remove(task.id);
        self.index.on_remove(task.id);
    }

    fn on_task_removed(&mut self, task: &TaskState, _now_ns: u64) {
        self.static_scores.remove(task.id);
        self.index.on_remove(task.id);
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) -> usize {
        if queue.is_hooked() {
            if let Some(pos) = self.index.pick(&queue, &self.config, now_ns) {
                #[cfg(debug_assertions)]
                {
                    let queue_len = queue.len();
                    let fold = pick_min_score(queue, |t| {
                        let info = lut.info(t.variant);
                        let remain = self.predictor.remaining_ns(t, info);
                        self.config.dynamic_score_ms(
                            remain,
                            t.deadline_ns(),
                            t.waiting_ns(now_ns),
                            queue_len,
                            now_ns,
                        )
                    });
                    debug_assert_eq!(pos, fold, "indexed Dysta diverged from fold");
                }
                return pos;
            }
        }
        // Algorithm 2 lines 7-13: refresh every score with the sparse
        // latency predictor — once per task — and dispatch the minimum.
        let queue_len = queue.len();
        pick_min_score(queue, |t| {
            let info = lut.info(t.variant);
            let remain = self.predictor.remaining_ns(t, info);
            self.config.dynamic_score_ms(
                remain,
                t.deadline_ns(),
                t.waiting_ns(now_ns),
                queue_len,
                now_ns,
            )
        })
    }
}

/// `Dysta-w/o-sparse`: the paper's ablation (its Figure 13) with the
/// dynamic hardware level and sparsity awareness disabled — tasks run in
/// the order of their frozen static scores.
#[derive(Debug, Clone, Default)]
pub struct DystaStaticScheduler {
    config: DystaConfig,
    static_scores: ScoreMap,
    index: ScorePick,
}

impl DystaStaticScheduler {
    /// Creates the ablated scheduler.
    pub fn new(config: DystaConfig) -> Self {
        DystaStaticScheduler {
            config,
            static_scores: ScoreMap::default(),
            index: ScorePick::default(),
        }
    }
}

impl Scheduler for DystaStaticScheduler {
    fn name(&self) -> &str {
        "dysta-static"
    }

    fn on_arrival(&mut self, task: &TaskState, lut: &ModelInfoLut, _now_ns: u64) {
        let lat = lut_isolated_ns(task, lut);
        let score = self.config.static_score_ms(lat, task.slo_ns);
        self.static_scores.insert(task.id, score);
        self.index.set_score(task.id, score);
    }

    fn on_task_complete(&mut self, task: &TaskState, _now_ns: u64) {
        self.static_scores.remove(task.id);
        self.index.on_remove(task.id);
    }

    fn on_task_removed(&mut self, task: &TaskState, _now_ns: u64) {
        self.static_scores.remove(task.id);
        self.index.on_remove(task.id);
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, _lut: &ModelInfoLut, _now_ns: u64) -> usize {
        // Scores are frozen at arrival, so the heap never re-keys: on a
        // hooked queue the pick is a peek.
        if queue.is_hooked() {
            if let Some(pos) = self.index.pick(&queue) {
                debug_assert_eq!(
                    pos,
                    pick_min_score(queue, |t| self.static_scores.get(t.id).unwrap_or(f64::MAX)),
                    "indexed Dysta-static diverged from fold"
                );
                return pos;
            }
        }
        pick_min_score(queue, |t| self.static_scores.get(t.id).unwrap_or(f64::MAX))
    }
}

/// The Oracle reference scheduler: Dysta's dynamic scoring with *perfect*
/// remaining-time knowledge (reads the trace ground truth instead of the
/// predictor). Upper-bounds what any latency predictor can achieve.
#[derive(Debug, Clone, Default)]
pub struct OracleScheduler {
    config: DystaConfig,
    index: AffinePick,
}

impl OracleScheduler {
    /// Creates the oracle with the same scoring hyperparameters as Dysta.
    pub fn new(config: DystaConfig) -> Self {
        OracleScheduler {
            config,
            index: AffinePick::default(),
        }
    }
}

impl Scheduler for OracleScheduler {
    fn name(&self) -> &str {
        "oracle"
    }

    fn on_arrival(&mut self, task: &TaskState, _lut: &ModelInfoLut, _now_ns: u64) {
        self.index
            .on_arrival(task.id, task.true_remaining_ns as f64);
    }

    fn on_layer_complete(&mut self, task: &TaskState, _lut: &ModelInfoLut, now_ns: u64) {
        self.index
            .on_layer_complete(task, task.true_remaining_ns as f64, self.config.eta, now_ns);
    }

    fn on_task_complete(&mut self, task: &TaskState, _now_ns: u64) {
        self.index.on_remove(task.id);
    }

    fn on_task_removed(&mut self, task: &TaskState, _now_ns: u64) {
        self.index.on_remove(task.id);
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, _lut: &ModelInfoLut, now_ns: u64) -> usize {
        if queue.is_hooked() {
            if let Some(pos) = self.index.pick(&queue, &self.config, now_ns) {
                #[cfg(debug_assertions)]
                {
                    let queue_len = queue.len();
                    let fold = pick_min_score(queue, |t| {
                        self.config.dynamic_score_ms(
                            t.true_remaining_ns as f64,
                            t.deadline_ns(),
                            t.waiting_ns(now_ns),
                            queue_len,
                            now_ns,
                        )
                    });
                    debug_assert_eq!(pos, fold, "indexed Oracle diverged from fold");
                }
                return pos;
            }
        }
        let queue_len = queue.len();
        pick_min_score(queue, |t| {
            self.config.dynamic_score_ms(
                t.true_remaining_ns as f64,
                t.deadline_ns(),
                t.waiting_ns(now_ns),
                queue_len,
                now_ns,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MonitoredLayer;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

    fn setup() -> (SparseModelSpec, ModelInfoLut) {
        let spec = SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        store.insert(TraceGenerator::default().generate(&spec, 16, 21));
        (spec, ModelInfoLut::from_store(&store))
    }

    fn mk(id: u64, spec: SparseModelSpec, lut: &ModelInfoLut, arrival: u64, slo: u64) -> TaskState {
        let variant = lut.variant_id(&spec).expect("spec profiled");
        TaskState {
            true_remaining_ns: 30_000_000,
            ..TaskState::arrived(id, spec, variant, arrival, slo, 109)
        }
    }

    #[test]
    fn score_map_inserts_replaces_and_removes() {
        let mut m = ScoreMap::default();
        assert_eq!(m.len(), 0);
        for id in [5u64, 1, 9, 3] {
            m.insert(id, id as f64);
        }
        assert_eq!(m.get(9), Some(9.0));
        assert_eq!(m.get(2), None);
        m.insert(9, -1.0);
        assert_eq!(m.get(9), Some(-1.0));
        assert_eq!(m.len(), 4, "replacement must not duplicate");
        m.remove(9);
        m.remove(42); // absent: no-op
        assert_eq!(m.get(9), None);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn static_score_balances_latency_and_slack() {
        let cfg = DystaConfig {
            beta: 0.5,
            eta: 0.4,
        };
        // lat 10ms, slo 100ms -> slack 90ms -> score 10 + 45 = 55.
        let s = cfg.static_score_ms(10e6, 100_000_000);
        assert!((s - 55.0).abs() < 1e-9);
    }

    #[test]
    fn beta_zero_reduces_static_score_to_latency() {
        let cfg = DystaConfig {
            beta: 0.0,
            eta: 0.4,
        };
        assert!((cfg.static_score_ms(10e6, 100_000_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_score_prefers_tight_slack() {
        let cfg = DystaConfig::default();
        let tight = cfg.dynamic_score_ms(10e6, 20_000_000, 0, 2, 0);
        let loose = cfg.dynamic_score_ms(10e6, 500_000_000, 0, 2, 0);
        assert!(tight < loose);
    }

    #[test]
    fn arrival_registers_static_score() {
        let (spec, lut) = setup();
        let mut sched = DystaScheduler::default();
        let t = mk(0, spec, &lut, 0, 400_000_000);
        sched.on_arrival(&t, &lut, 0);
        assert!(sched.static_score(0).is_some());
        sched.on_task_complete(&t, 100);
        assert!(sched.static_score(0).is_none());
    }

    #[test]
    fn sparsity_info_changes_dispatch() {
        // Two identical-looking tasks; one monitored to be much denser
        // than average. Dysta should prefer the sparser (shorter) one.
        let (spec, lut) = setup();
        let info = lut.expect(&spec);
        let dyn_layer = info
            .avg_layer_sparsity()
            .iter()
            .position(|&s| s > 0.1)
            .unwrap();
        let avg_s = info.avg_layer_sparsity()[dyn_layer];

        let mut dense_task = mk(0, spec, &lut, 0, u64::MAX / 4);
        dense_task.next_layer = dyn_layer + 1;
        dense_task.monitored = vec![
            MonitoredLayer {
                sparsity: 0.0,
                latency_ns: 1
            };
            dyn_layer
        ];
        dense_task.monitored.push(MonitoredLayer {
            sparsity: (avg_s - 0.15).max(0.0), // denser than average
            latency_ns: 1,
        });

        dense_task.rebuild_sparsity_summary(info);

        let mut sparse_task = dense_task.clone();
        sparse_task.id = 1;
        sparse_task.monitored.last_mut().unwrap().sparsity = (avg_s + 0.15).min(0.99);
        sparse_task.rebuild_sparsity_summary(info);

        let queue = [dense_task, sparse_task];
        let mut sched = DystaScheduler::default();
        assert_eq!(sched.pick_next(TaskQueue::dense(&queue), &lut, 0), 1);
    }

    #[test]
    fn oracle_uses_ground_truth() {
        let (spec, lut) = setup();
        let mut short = mk(0, spec, &lut, 0, u64::MAX / 4);
        short.true_remaining_ns = 1_000_000;
        let mut long = mk(1, spec, &lut, 0, u64::MAX / 4);
        long.true_remaining_ns = 50_000_000;
        let queue = [long, short];
        let mut oracle = OracleScheduler::default();
        assert_eq!(oracle.pick_next(TaskQueue::dense(&queue), &lut, 0), 1);
    }

    #[test]
    fn static_ablation_freezes_order() {
        let (spec, lut) = setup();
        let mut sched = DystaStaticScheduler::default();
        let a = mk(0, spec, &lut, 0, 200_000_000);
        let b = mk(1, spec, &lut, 0, 800_000_000);
        sched.on_arrival(&a, &lut, 0);
        sched.on_arrival(&b, &lut, 0);
        let queue = [a, b];
        // Tighter SLO -> smaller slack -> smaller static score -> first.
        assert_eq!(sched.pick_next(TaskQueue::dense(&queue), &lut, 0), 0);
    }
}
