//! Pins the "no per-pick heap allocation" property of the scheduling hot
//! path: every shipped policy's `pick_next` and every predictor
//! `coefficient` strategy must run allocation-free once the system is in
//! steady state (all tasks arrived, per-task bookkeeping warmed up).
//!
//! A counting global allocator with a thread-local counter measures the
//! exact region under test; the counter is per-thread, so parallel test
//! execution cannot pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dysta_core::{
    CoeffStrategy, ModelInfoLut, MonitoredLayer, Policy, SparseLatencyPredictor, TaskQueue,
    TaskState,
};
use dysta_models::ModelId;
use dysta_sparsity::SparsityPattern;
use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// Counting wrapper over the system allocator. The test crate is the only
// place this lives; the library crates stay `forbid(unsafe_code)`.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Heap allocations performed by `f` on this thread.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// A mid-execution queue with populated monitored streams and interned
/// variants, like the engine maintains.
fn mid_execution_queue(n: usize) -> (Vec<TaskState>, ModelInfoLut) {
    let specs = [
        SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0),
        SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.7),
        SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::ChannelWise, 0.6),
    ];
    let mut store = TraceStore::new();
    let generator = TraceGenerator::default();
    for s in &specs {
        store.insert(generator.generate(s, 4, 9));
    }
    let lut = ModelInfoLut::from_store(&store);

    let tasks: Vec<TaskState> = (0..n)
        .map(|i| {
            let spec = specs[i % specs.len()];
            let variant = lut.variant_id(&spec).expect("profiled");
            let info = lut.info(variant);
            let traces = store.get(&spec).expect("profiled");
            let trace = traces.sample(i as u64);
            let upto = (i * 7) % trace.num_layers();
            let mut task = TaskState {
                true_remaining_ns: trace.remaining_ns(upto),
                ..TaskState::arrived(
                    i as u64,
                    spec,
                    variant,
                    (i as u64) * 10_000,
                    10_000_000_000,
                    trace.num_layers(),
                )
            };
            task.next_layer = upto;
            for layer in &trace.layers()[..upto] {
                task.record_layer(
                    MonitoredLayer {
                        sparsity: layer.sparsity,
                        latency_ns: layer.latency_ns,
                    },
                    info,
                );
            }
            task
        })
        .collect();
    (tasks, lut)
}

#[test]
fn steady_state_pick_next_never_allocates() {
    let (tasks, lut) = mid_execution_queue(64);
    let queue = TaskQueue::dense(&tasks);
    for policy in Policy::ALL {
        let mut sched = policy.build();
        for t in &tasks {
            sched.on_arrival(t, &lut, t.arrival_ns);
        }
        // Warm up per-policy lazy state (PREMA token entries, the
        // hardware FIFO scratch's capacity, ...).
        let _ = sched.pick_next(queue, &lut, 500_000);
        let allocs = allocations_in(|| {
            for step in 0..100u64 {
                let pick = sched.pick_next(queue, &lut, 1_000_000 + step * 1_000);
                assert!(pick < queue.len());
            }
        });
        assert_eq!(
            allocs, 0,
            "{policy}: pick_next allocated on the steady-state path"
        );
    }
}

#[test]
fn predictor_coefficient_never_allocates() {
    let (tasks, lut) = mid_execution_queue(16);
    for strategy in [
        CoeffStrategy::AverageAll,
        CoeffStrategy::LastN(5),
        CoeffStrategy::LastOne,
        CoeffStrategy::Disabled,
    ] {
        let predictor = SparseLatencyPredictor::new(strategy, 1.0);
        let allocs = allocations_in(|| {
            for t in &tasks {
                let info = lut.info(t.variant);
                let gamma = predictor.coefficient(t, info);
                assert!(gamma.is_finite());
            }
        });
        assert_eq!(allocs, 0, "{strategy:?}: coefficient allocated");
    }
}

#[test]
fn interned_lut_lookup_never_allocates() {
    let (tasks, lut) = mid_execution_queue(8);
    let allocs = allocations_in(|| {
        for t in &tasks {
            let info = lut.info(t.variant);
            assert!(info.avg_latency_ns() > 0.0);
        }
    });
    assert_eq!(allocs, 0, "interned LUT access allocated");
}

#[test]
fn spec_keyed_lookup_is_also_allocation_free() {
    // The slow path got cheaper too: binary search over a
    // stack-formatted key. Pin it so `TraceStore::get` (used once per
    // request in workload assembly) stays off the allocator.
    let (tasks, lut) = mid_execution_queue(8);
    let allocs = allocations_in(|| {
        for t in &tasks {
            assert!(lut.variant_id(&t.spec).is_some());
        }
    });
    assert_eq!(allocs, 0, "spec-keyed lookup allocated");
}
