//! Property-based contract tests every scheduler implementation must
//! satisfy, over randomized queues.

use std::cell::Cell;

use proptest::prelude::*;

use dysta_core::{
    pick_max_score, pick_min_score, ModelInfoLut, MonitoredLayer, Policy, TaskQueue, TaskState,
};
use dysta_models::ModelId;
use dysta_sparsity::SparsityPattern;
use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

fn build_lut() -> (Vec<SparseModelSpec>, ModelInfoLut) {
    let specs = vec![
        SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.7),
        SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::ChannelWise, 0.6),
        SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0),
    ];
    let mut store = TraceStore::new();
    for s in &specs {
        store.insert(TraceGenerator::default().generate(s, 4, 0));
    }
    (specs.clone(), ModelInfoLut::from_store(&store))
}

#[derive(Debug, Clone)]
struct TaskParams {
    spec_idx: usize,
    arrival_ns: u64,
    slo_ns: u64,
    progress_frac: f64,
    sparsity: f64,
}

fn task_strategy() -> impl Strategy<Value = TaskParams> {
    (
        0usize..3,
        0u64..1_000_000_000,
        1_000_000u64..10_000_000_000,
        0.0f64..1.0,
        0.0f64..0.95,
    )
        .prop_map(
            |(spec_idx, arrival_ns, slo_ns, progress_frac, sparsity)| TaskParams {
                spec_idx,
                arrival_ns,
                slo_ns,
                progress_frac,
                sparsity,
            },
        )
}

fn materialize(
    params: &[TaskParams],
    specs: &[SparseModelSpec],
    lut: &ModelInfoLut,
) -> Vec<TaskState> {
    params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let spec = specs[p.spec_idx];
            let variant = lut.variant_id(&spec).expect("spec profiled");
            let info = lut.info(variant);
            let num_layers = info.num_layers();
            let next_layer = ((num_layers as f64 * p.progress_frac) as usize).min(num_layers - 1);
            let mut task = TaskState {
                next_layer,
                executed_ns: (info.avg_remaining_ns(0) - info.avg_remaining_ns(next_layer)).max(0.0)
                    as u64,
                monitored: (0..next_layer)
                    .map(|_| MonitoredLayer {
                        sparsity: p.sparsity,
                        latency_ns: 1000,
                    })
                    .collect(),
                true_remaining_ns: info.avg_remaining_ns(next_layer) as u64,
                ..TaskState::arrived(i as u64, spec, variant, p.arrival_ns, p.slo_ns, num_layers)
            };
            task.rebuild_sparsity_summary(info);
            task
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every policy returns an in-range index, for any queue, and is a
    /// pure function of (queue, now) for stateless inspection.
    #[test]
    fn pick_next_is_in_range_and_stable(
        params in prop::collection::vec(task_strategy(), 1..12),
        now in 0u64..2_000_000_000,
    ) {
        let (specs, lut) = build_lut();
        let tasks = materialize(&params, &specs, &lut);
        let queue = TaskQueue::dense(&tasks);
        for policy in Policy::ALL {
            let mut sched = policy.build();
            for t in &tasks {
                sched.on_arrival(t, &lut, t.arrival_ns);
            }
            let a = sched.pick_next(queue, &lut, now);
            prop_assert!(a < queue.len(), "{policy}: index {a}");
            // Immediately repeated decision with unchanged state picks
            // the same task (no hidden nondeterminism).
            let b = sched.pick_next(queue, &lut, now);
            prop_assert_eq!(a, b, "{} unstable", policy);
        }
    }

    /// Single-task queues leave no room for choice.
    #[test]
    fn singleton_queue_always_picks_zero(
        params in prop::collection::vec(task_strategy(), 1..2),
        now in 0u64..2_000_000_000,
    ) {
        let (specs, lut) = build_lut();
        let tasks = materialize(&params, &specs, &lut);
        for policy in Policy::ALL {
            let mut sched = policy.build();
            sched.on_arrival(&tasks[0], &lut, tasks[0].arrival_ns);
            prop_assert_eq!(sched.pick_next(TaskQueue::dense(&tasks), &lut, now), 0);
        }
    }

    /// An indexed queue (the engine's arena + live positions) and the
    /// equivalent dense queue yield the same decision for every policy —
    /// pinning that queue *representation* never leaks into scheduling.
    #[test]
    fn indexed_and_dense_queues_agree(
        params in prop::collection::vec(task_strategy(), 2..10),
        now in 0u64..2_000_000_000,
    ) {
        let (specs, lut) = build_lut();
        let tasks = materialize(&params, &specs, &lut);
        // Live subset: every other task, in shuffled-ish (reversed) order.
        let active: Vec<usize> = (0..tasks.len()).rev().step_by(2).collect();
        let subset: Vec<TaskState> = active.iter().map(|&i| tasks[i].clone()).collect();
        for policy in Policy::ALL {
            let mut sched_a = policy.build();
            let mut sched_b = policy.build();
            for t in &subset {
                sched_a.on_arrival(t, &lut, t.arrival_ns);
                sched_b.on_arrival(t, &lut, t.arrival_ns);
            }
            let via_index = sched_a.pick_next(TaskQueue::indexed(&tasks, &active), &lut, now);
            let via_dense = sched_b.pick_next(TaskQueue::dense(&subset), &lut, now);
            prop_assert_eq!(via_index, via_dense, "{} disagrees across representations", policy);
        }
    }
}

/// The single-pass pick helpers every shipped scheduler routes through
/// must evaluate the score exactly `queue.len()` times per invocation —
/// the regression test for the `min_by`-with-closure double-evaluation
/// bug class (scores used to be recomputed at every pairwise
/// comparison, turning O(n) picks into O(n log n)-ish with 2x-evaluated
/// closures).
#[test]
fn counting_scorer_sees_exactly_queue_len_evaluations() {
    let (specs, lut) = build_lut();
    for n in [1usize, 2, 3, 8, 33, 128] {
        let params: Vec<TaskParams> = (0..n)
            .map(|i| TaskParams {
                spec_idx: i % 3,
                arrival_ns: (i as u64) * 1_000,
                slo_ns: 5_000_000_000,
                progress_frac: (i as f64 * 0.37) % 1.0,
                sparsity: 0.4,
            })
            .collect();
        let tasks = materialize(&params, &specs, &lut);
        let queue = TaskQueue::dense(&tasks);

        let evals = Cell::new(0usize);
        let scorer = |t: &TaskState| {
            evals.set(evals.get() + 1);
            // A non-trivial score with ties, so tie-break paths run too.
            (t.id % 5) as f64
        };
        let _ = pick_min_score(queue, scorer);
        assert_eq!(evals.get(), n, "pick_min_score at n={n}");

        evals.set(0);
        let _ = pick_max_score(queue, |t| {
            evals.set(evals.get() + 1);
            (t.id % 5) as f64
        });
        assert_eq!(evals.get(), n, "pick_max_score at n={n}");
    }
}
