//! Property-based contract tests every scheduler implementation must
//! satisfy, over randomized queues.

use proptest::prelude::*;

use dysta_core::{ModelInfoLut, MonitoredLayer, Policy, TaskState};
use dysta_models::ModelId;
use dysta_sparsity::SparsityPattern;
use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

fn build_lut() -> (Vec<SparseModelSpec>, ModelInfoLut) {
    let specs = vec![
        SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.7),
        SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::ChannelWise, 0.6),
        SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0),
    ];
    let mut store = TraceStore::new();
    for s in &specs {
        store.insert(TraceGenerator::default().generate(s, 4, 0));
    }
    (specs.clone(), ModelInfoLut::from_store(&store))
}

#[derive(Debug, Clone)]
struct TaskParams {
    spec_idx: usize,
    arrival_ns: u64,
    slo_ns: u64,
    progress_frac: f64,
    sparsity: f64,
}

fn task_strategy() -> impl Strategy<Value = TaskParams> {
    (
        0usize..3,
        0u64..1_000_000_000,
        1_000_000u64..10_000_000_000,
        0.0f64..1.0,
        0.0f64..0.95,
    )
        .prop_map(
            |(spec_idx, arrival_ns, slo_ns, progress_frac, sparsity)| TaskParams {
                spec_idx,
                arrival_ns,
                slo_ns,
                progress_frac,
                sparsity,
            },
        )
}

fn materialize(
    params: &[TaskParams],
    specs: &[SparseModelSpec],
    lut: &ModelInfoLut,
) -> Vec<TaskState> {
    params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let spec = specs[p.spec_idx];
            let info = lut.expect(&spec);
            let num_layers = info.num_layers();
            let next_layer = ((num_layers as f64 * p.progress_frac) as usize).min(num_layers - 1);
            TaskState {
                id: i as u64,
                spec,
                arrival_ns: p.arrival_ns,
                slo_ns: p.slo_ns,
                next_layer,
                num_layers,
                executed_ns: (info.avg_remaining_ns(0) - info.avg_remaining_ns(next_layer)).max(0.0)
                    as u64,
                monitored: (0..next_layer)
                    .map(|_| MonitoredLayer {
                        sparsity: p.sparsity,
                        latency_ns: 1000,
                    })
                    .collect(),
                true_remaining_ns: info.avg_remaining_ns(next_layer) as u64,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every policy returns an in-range index, for any queue, and is a
    /// pure function of (queue, now) for stateless inspection.
    #[test]
    fn pick_next_is_in_range_and_stable(
        params in prop::collection::vec(task_strategy(), 1..12),
        now in 0u64..2_000_000_000,
    ) {
        let (specs, lut) = build_lut();
        let tasks = materialize(&params, &specs, &lut);
        let queue: Vec<&TaskState> = tasks.iter().collect();
        for policy in Policy::ALL {
            let mut sched = policy.build();
            for t in &tasks {
                sched.on_arrival(t, &lut, t.arrival_ns);
            }
            let a = sched.pick_next(&queue, &lut, now);
            prop_assert!(a < queue.len(), "{policy}: index {a}");
            // Immediately repeated decision with unchanged state picks
            // the same task (no hidden nondeterminism).
            let b = sched.pick_next(&queue, &lut, now);
            prop_assert_eq!(a, b, "{} unstable", policy);
        }
    }

    /// Single-task queues leave no room for choice.
    #[test]
    fn singleton_queue_always_picks_zero(
        params in prop::collection::vec(task_strategy(), 1..2),
        now in 0u64..2_000_000_000,
    ) {
        let (specs, lut) = build_lut();
        let tasks = materialize(&params, &specs, &lut);
        let queue: Vec<&TaskState> = tasks.iter().collect();
        for policy in Policy::ALL {
            let mut sched = policy.build();
            sched.on_arrival(&tasks[0], &lut, tasks[0].arrival_ns);
            prop_assert_eq!(sched.pick_next(&queue, &lut, now), 0);
        }
    }
}
