//! Property test: the predictor's incremental O(1) coefficient (running
//! `SparsitySummary` aggregates) equals the batch recompute-from-
//! `monitored` definition it replaced, across random execution prefixes
//! and every `CoeffStrategy`.
//!
//! The batch reference below is a line-for-line port of the old
//! collect-into-`Vec` implementation, so this test is the contract that
//! the perf refactor changed *no* numerics.

use proptest::prelude::*;

use dysta_core::{
    CoeffStrategy, ModelInfo, ModelInfoLut, MonitoredLayer, SparseLatencyPredictor, TaskState,
};
use dysta_models::ModelId;
use dysta_sparsity::SparsityPattern;
use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

/// The pre-refactor batch computation: collect every dynamic layer's
/// density ratio, window it, average, exponentiate.
fn batch_coefficient(strategy: CoeffStrategy, task: &TaskState, info: &ModelInfo) -> f64 {
    if strategy == CoeffStrategy::Disabled {
        return 1.0;
    }
    let avg = info.avg_layer_sparsity();
    let ratios: Vec<f64> = task
        .monitored
        .iter()
        .enumerate()
        .filter(|&(j, _)| avg.get(j).copied().unwrap_or(0.0) > 1e-6)
        .map(|(j, m)| {
            let avg_density = (1.0 - avg[j]).max(1e-3);
            let mon_density = (1.0 - m.sparsity).max(1e-3);
            mon_density / avg_density
        })
        .collect();
    if ratios.is_empty() {
        return 1.0;
    }
    let window: &[f64] = match strategy {
        CoeffStrategy::AverageAll => &ratios,
        CoeffStrategy::LastN(n) => &ratios[ratios.len().saturating_sub(n)..],
        CoeffStrategy::LastOne => &ratios[ratios.len() - 1..],
        CoeffStrategy::Disabled => unreachable!("handled above"),
    };
    let ratio = window.iter().sum::<f64>() / window.len() as f64;
    ratio.powf(info.gamma_exponent())
}

fn lut_for(model: ModelId) -> (SparseModelSpec, ModelInfoLut) {
    let spec = SparseModelSpec::new(model, SparsityPattern::Dense, 0.0);
    let mut store = TraceStore::new();
    store.insert(TraceGenerator::default().generate(&spec, 8, 17));
    (spec, ModelInfoLut::from_store(&store))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental == batch for every strategy, any random prefix of any
    /// random monitored stream, on both a transformer (rich dynamic
    /// sparsity) and a CNN (sparser dynamic coverage).
    #[test]
    fn incremental_coefficient_matches_batch(
        model_pick in 0usize..2,
        sparsities in prop::collection::vec(0.0f64..0.999, 1..120),
        window in 1usize..12,
    ) {
        let model = [ModelId::Bert, ModelId::MobileNet][model_pick];
        let (spec, lut) = lut_for(model);
        let variant = lut.variant_id(&spec).expect("profiled");
        let info = lut.info(variant);
        let num_layers = info.num_layers();

        let strategies = [
            CoeffStrategy::AverageAll,
            CoeffStrategy::LastOne,
            CoeffStrategy::LastN(window),
            CoeffStrategy::Disabled,
        ];

        // Grow the task layer by layer the way the engine does, checking
        // equivalence at *every* prefix, not just the final state.
        let mut task = TaskState::arrived(0, spec, variant, 0, u64::MAX / 2, num_layers);
        for (j, &s) in sparsities.iter().take(num_layers).enumerate() {
            task.next_layer = j + 1;
            task.record_layer(
                MonitoredLayer {
                    sparsity: s,
                    latency_ns: 1_000,
                },
                info,
            );
            for strategy in strategies {
                let predictor = SparseLatencyPredictor::new(strategy, 1.0);
                let incremental = predictor.coefficient(&task, info);
                let batch = batch_coefficient(strategy, &task, info);
                prop_assert!(
                    (incremental - batch).abs() < 1e-12,
                    "{strategy:?} at prefix {}: incremental {incremental} vs batch {batch}",
                    j + 1
                );
            }
        }

        // A rebuilt summary (the test-construction path) agrees with the
        // incrementally grown one.
        let grown = task.sparsity;
        task.rebuild_sparsity_summary(info);
        prop_assert_eq!(grown, task.sparsity);
    }
}
