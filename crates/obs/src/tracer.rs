//! The [`Tracer`] trait and its two implementations.
//!
//! Engines are generic over `T: Tracer` with [`NullTracer`] as the
//! default type parameter, so the untraced build monomorphizes every
//! hook to a no-op — zero cost, verified by the alloc-count and golden
//! tests. [`RingTracer`] is the recording implementation: a bounded
//! ring of `Copy` events plus a [`MetricsRegistry`], all behind `&self`
//! (interior mutability) so one tracer can be shared by every node of a
//! co-simulated cluster.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::event::{EventKind, Phase, TraceEvent};
use crate::metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot};

/// Observability sink threaded through the engines.
///
/// All methods take `&self`: implementations use interior mutability so
/// a single tracer instance (usually a `&RingTracer`) can serve a whole
/// node pool. Every method has a no-op default, which is exactly the
/// [`NullTracer`] behavior.
pub trait Tracer {
    /// True when events should be recorded. Engines gate any non-free
    /// bookkeeping (segment coalescing state) behind this, so a
    /// disabled tracer leaves the hot path bit-identical.
    fn enabled(&self) -> bool {
        false
    }

    /// True when wall-clock phase profiling is requested. Kept separate
    /// from [`Tracer::enabled`] because reading the OS clock twice per
    /// quantum is far more expensive than recording an event.
    fn profiling(&self) -> bool {
        false
    }

    /// Records one structured event.
    fn record(&self, event: TraceEvent) {
        let _ = event;
    }

    /// Attributes `wall_ns` nanoseconds of host wall-clock time to
    /// `phase`. Only called when [`Tracer::profiling`] is true.
    fn phase_ns(&self, phase: Phase, wall_ns: u64) {
        let _ = (phase, wall_ns);
    }

    /// Interns a free-form label (model-variant name), returning a
    /// stable id referenced by event payloads. Callers cache the id per
    /// variant so steady-state recording never re-interns.
    fn intern(&self, label: &str) -> u32 {
        let _ = label;
        0
    }

    /// Names a node for exports ("node0 EyerissV2").
    fn name_node(&self, node: u32, name: &str) {
        let _ = (node, name);
    }
}

/// The zero-cost default tracer: every hook is a no-op and
/// [`Tracer::enabled`] is `false`, so engine tracing branches compile
/// out entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {}

// Shared references trace through to the underlying tracer, so a pool
// of engines can all borrow one `RingTracer`. Every method forwards
// explicitly — falling back to a trait default here would silently
// disconnect `&RingTracer`.
impl<T: Tracer + ?Sized> Tracer for &T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn profiling(&self) -> bool {
        (**self).profiling()
    }

    #[inline]
    fn record(&self, event: TraceEvent) {
        (**self).record(event);
    }

    #[inline]
    fn phase_ns(&self, phase: Phase, wall_ns: u64) {
        (**self).phase_ns(phase, wall_ns);
    }

    #[inline]
    fn intern(&self, label: &str) -> u32 {
        (**self).intern(label)
    }

    #[inline]
    fn name_node(&self, node: u32, name: &str) {
        (**self).name_node(node, name);
    }
}

/// Interned label table: id = first-intern order.
#[derive(Debug, Default)]
struct Interner {
    names: Vec<String>,
    ids: BTreeMap<String, u32>,
}

/// A recording tracer: bounded ring buffer of [`TraceEvent`]s (oldest
/// overwritten on overflow), per-kind event counters, a
/// [`MetricsRegistry`] fed from selected event kinds, optional
/// wall-clock phase accumulators, and the label/node-name tables the
/// exporters need.
///
/// Recording an event is branch-free ring arithmetic on `Cell`s plus —
/// for the infrequent kinds — a warm map lookup in the registry; the
/// steady state allocates nothing (pinned by the counting-allocator
/// tests).
#[derive(Debug)]
pub struct RingTracer {
    ring: Box<[Cell<TraceEvent>]>,
    /// Next write position.
    head: Cell<usize>,
    /// Live events (≤ capacity).
    len: Cell<usize>,
    /// Events overwritten after the ring filled.
    dropped: Cell<u64>,
    kind_counts: [Cell<u64>; EventKind::COUNT],
    phase_ns: [Cell<u64>; Phase::COUNT],
    profiling: bool,
    interner: RefCell<Interner>,
    node_names: RefCell<BTreeMap<u32, String>>,
    metrics: MetricsRegistry,
    /// Handles to the instruments [`Tracer::record`] feeds, resolved
    /// once at construction so the per-event path never looks a name
    /// up.
    instruments: Instruments,
}

/// Pre-resolved ids for the instruments fed from the event stream.
#[derive(Debug)]
struct Instruments {
    admission_wait_ns: HistogramId,
    slack_at_dispatch_ns: HistogramId,
    transfer_fetch_ns: HistogramId,
    queue_depth: GaugeId,
    backlog_ns: GaugeId,
    slo_violations: CounterId,
}

impl Instruments {
    fn register(metrics: &MetricsRegistry) -> Self {
        Instruments {
            admission_wait_ns: metrics.histogram_id("admission_wait_ns"),
            slack_at_dispatch_ns: metrics.histogram_id("slack_at_dispatch_ns"),
            transfer_fetch_ns: metrics.histogram_id("transfer_fetch_ns"),
            queue_depth: metrics.gauge_id("queue_depth"),
            backlog_ns: metrics.gauge_id("backlog_ns"),
            slo_violations: metrics.counter_id("slo_violations"),
        }
    }
}

impl RingTracer {
    /// Creates a tracer holding up to `capacity` events (oldest are
    /// overwritten beyond that), without phase profiling.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring needs room for at least one event");
        let metrics = MetricsRegistry::new();
        let instruments = Instruments::register(&metrics);
        RingTracer {
            ring: vec![Cell::new(TraceEvent::EMPTY); capacity].into_boxed_slice(),
            head: Cell::new(0),
            len: Cell::new(0),
            dropped: Cell::new(0),
            kind_counts: std::array::from_fn(|_| Cell::new(0)),
            phase_ns: std::array::from_fn(|_| Cell::new(0)),
            profiling: false,
            interner: RefCell::new(Interner::default()),
            node_names: RefCell::new(BTreeMap::new()),
            metrics,
            instruments,
        }
    }

    /// Like [`RingTracer::new`] with wall-clock phase profiling on.
    pub fn with_profiling(capacity: usize) -> Self {
        RingTracer {
            profiling: true,
            ..RingTracer::new(capacity)
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.len.get()
    }

    /// True when nothing has been recorded (or [`RingTracer::clear`]
    /// was just called).
    pub fn is_empty(&self) -> bool {
        self.len.get() == 0
    }

    /// Number of events lost to overflow (oldest-first overwrite).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Total times `kind` was recorded, including dropped events.
    pub fn kind_count(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind as usize].get()
    }

    /// Wall-clock nanoseconds attributed to `phase` so far.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize].get()
    }

    /// The live metrics registry (snapshot-able mid-run).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Freezes metrics plus per-kind event counts and phase totals into
    /// one serializable snapshot (`events.<kind>` counters,
    /// `phase_ns.<phase>` counters).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        for kind in EventKind::ALL {
            let n = self.kind_count(kind);
            if n > 0 {
                snap.counters.insert(format!("events.{}", kind.name()), n);
            }
        }
        if self.profiling {
            for phase in Phase::ALL {
                snap.counters.insert(
                    format!("phase_ns.{}", phase.name()),
                    self.phase_total_ns(phase),
                );
            }
        }
        snap
    }

    /// The held events, oldest first. Copies out of the ring; intended
    /// for export/analysis after (or mid-) run, not for the hot path.
    pub fn events(&self) -> Vec<TraceEvent> {
        let len = self.len.get();
        let cap = self.ring.len();
        let start = if len < cap {
            0
        } else {
            self.head.get() // oldest surviving event
        };
        (0..len)
            .map(|i| self.ring[(start + i) % cap].get())
            .collect()
    }

    /// The interned label table, id order.
    pub fn labels(&self) -> Vec<String> {
        self.interner.borrow().names.clone()
    }

    /// The node-name table, node-id order.
    pub fn node_names(&self) -> Vec<(u32, String)> {
        self.node_names
            .borrow()
            .iter()
            .map(|(&n, s)| (n, s.clone()))
            .collect()
    }

    /// Drops all recorded events and resets the overflow counter, but
    /// keeps interned labels, node names, metrics, per-kind counts, and
    /// phase totals (so a warm tracer can be reused across runs without
    /// re-interning — the overhead benchmark depends on this).
    pub fn clear(&self) {
        self.head.set(0);
        self.len.set(0);
        self.dropped.set(0);
    }
}

impl Tracer for RingTracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn profiling(&self) -> bool {
        self.profiling
    }

    // Deliberately NOT `#[inline]`: record runs per *event* (rare),
    // not per quantum, and inlining this body at every engine call
    // site bloats the hot loop for no gain.
    fn record(&self, event: TraceEvent) {
        let cap = self.ring.len();
        let head = self.head.get();
        self.ring[head].set(event);
        // Compare-and-reset, not `% cap`: capacity is a runtime value,
        // so the modulo would be a real integer division per event.
        let next = head + 1;
        self.head.set(if next == cap { 0 } else { next });
        let len = self.len.get();
        if len < cap {
            self.len.set(len + 1);
        } else {
            self.dropped.set(self.dropped.get() + 1);
        }
        let count = &self.kind_counts[event.kind as usize];
        count.set(count.get() + 1);

        // Live instruments for the infrequent control-plane kinds. Kept
        // off the per-quantum kinds (Segment/Preemption have dedicated
        // counters above) so the map lookups stay off the densest path.
        match event.kind {
            EventKind::Admit | EventKind::AdmitDegrade => {
                self.metrics
                    .observe_id(self.instruments.admission_wait_ns, event.a);
            }
            EventKind::Dispatch => {
                self.metrics
                    .observe_id(self.instruments.slack_at_dispatch_ns, event.b.max(0) as u64);
                self.metrics.set_gauge_id(
                    self.instruments.queue_depth,
                    event.node as usize,
                    event.a as f64,
                );
            }
            EventKind::Steal | EventKind::MigrationAccept => {
                self.metrics
                    .observe_id(self.instruments.transfer_fetch_ns, event.b.max(0) as u64);
            }
            EventKind::SlackProjection => {
                self.metrics.set_gauge_id(
                    self.instruments.queue_depth,
                    event.node as usize,
                    event.a as f64,
                );
                self.metrics.set_gauge_id(
                    self.instruments.backlog_ns,
                    event.node as usize,
                    event.b as f64,
                );
            }
            EventKind::Completion => {
                self.metrics
                    .add_id(self.instruments.slo_violations, event.a);
            }
            _ => {}
        }
    }

    #[inline]
    fn phase_ns(&self, phase: Phase, wall_ns: u64) {
        let cell = &self.phase_ns[phase as usize];
        cell.set(cell.get() + wall_ns);
    }

    fn intern(&self, label: &str) -> u32 {
        let mut interner = self.interner.borrow_mut();
        if let Some(&id) = interner.ids.get(label) {
            return id;
        }
        let id = u32::try_from(interner.names.len()).expect("label table fits in u32");
        interner.names.push(label.to_owned());
        interner.ids.insert(label.to_owned(), id);
        id
    }

    fn name_node(&self, node: u32, name: &str) {
        let mut names = self.node_names.borrow_mut();
        names.entry(node).or_insert_with(|| name.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            request: t,
            node: 0,
            kind,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn null_tracer_is_disabled_and_inert() {
        let t = NullTracer;
        assert!(!t.enabled());
        assert!(!t.profiling());
        t.record(ev(1, EventKind::Arrival));
        t.phase_ns(Phase::Pick, 100);
        assert_eq!(t.intern("anything"), 0);
    }

    #[test]
    fn ring_holds_events_in_order_below_capacity() {
        let t = RingTracer::new(8);
        for i in 0..5 {
            t.record(ev(i, EventKind::Arrival));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.dropped(), 0);
        let times: Vec<u64> = t.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let t = RingTracer::new(4);
        for i in 0..10 {
            t.record(ev(i, EventKind::Arrival));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        // The four newest survive, oldest first.
        let times: Vec<u64> = t.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
        // Counts include dropped events.
        assert_eq!(t.kind_count(EventKind::Arrival), 10);
    }

    #[test]
    fn ring_wraparound_is_seamless_at_exact_capacity_multiples() {
        let t = RingTracer::new(3);
        for i in 0..6 {
            t.record(ev(i, EventKind::Segment));
        }
        let times: Vec<u64> = t.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(times, vec![3, 4, 5]);
        assert_eq!(t.dropped(), 3);
        t.record(ev(6, EventKind::Segment));
        let times: Vec<u64> = t.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(times, vec![4, 5, 6]);
    }

    #[test]
    fn clear_resets_ring_but_keeps_tables_warm() {
        let t = RingTracer::new(4);
        let id = t.intern("resnet50");
        t.record(ev(1, EventKind::Arrival));
        t.name_node(0, "node0");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.intern("resnet50"), id, "labels survive clear");
        assert_eq!(t.node_names().len(), 1);
        assert_eq!(t.kind_count(EventKind::Arrival), 1, "counts survive");
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let t = RingTracer::new(2);
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.labels(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn first_node_name_wins() {
        let t = RingTracer::new(2);
        t.name_node(3, "node3 EyerissV2");
        t.name_node(3, "other");
        assert_eq!(t.node_names(), vec![(3, "node3 EyerissV2".to_string())]);
    }

    #[test]
    fn shared_reference_forwards_to_the_ring() {
        let t = RingTracer::new(4);
        let shared: &RingTracer = &t;
        assert!(Tracer::enabled(&shared));
        Tracer::record(&shared, ev(7, EventKind::Dispatch));
        Tracer::phase_ns(&shared, Phase::Frontend, 50);
        assert_eq!(t.len(), 1);
        assert_eq!(t.phase_total_ns(Phase::Frontend), 50);
    }

    #[test]
    fn record_feeds_metrics_for_control_plane_kinds() {
        let t = RingTracer::new(16);
        t.record(TraceEvent {
            t_ns: 5,
            request: 1,
            node: 2,
            kind: EventKind::Dispatch,
            a: 4,
            b: 1_000,
        });
        t.record(TraceEvent {
            t_ns: 9,
            request: 1,
            node: 2,
            kind: EventKind::Completion,
            a: 1,
            b: -50,
        });
        assert_eq!(t.metrics().counter("slo_violations"), 1);
        assert_eq!(t.metrics().gauge("queue_depth", 2), Some(4.0));
        let snap = t.snapshot();
        assert_eq!(snap.counters["events.dispatch"], 1);
        assert_eq!(snap.histograms["slack_at_dispatch_ns"].count, 1);
    }
}
