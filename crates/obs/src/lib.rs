//! Deterministic, sim-time-stamped observability for the Sparse-DySta
//! engine stack.
//!
//! The simulator's end-of-run reports say *what* happened (ANTT, SLO
//! violations, goodput); this crate records *why* — the per-request
//! event sequence (arrival → admission → dispatch → execution segments
//! → completion, with preemptions, steals, and migrations in between)
//! plus live counters a serving daemon could poll mid-run.
//!
//! Three layers:
//!
//! - [`Tracer`]: the sink trait engines are generic over. The default
//!   [`NullTracer`] is a zero-sized no-op, so untraced simulations
//!   monomorphize to exactly the pre-observability hot path (pinned by
//!   counting-allocator and golden-fixture tests). [`RingTracer`]
//!   records [`TraceEvent`]s into a bounded ring — fixed-size `Copy`
//!   records, interned labels, no per-event allocation.
//! - [`MetricsRegistry`]: named counters / per-node gauge families /
//!   log-bucketed histograms, snapshot-able mid-run
//!   ([`MetricsSnapshot`]).
//! - Exporters: [`perfetto_json`] renders a run as a Chrome trace
//!   loadable in [ui.perfetto.dev](https://ui.perfetto.dev) (one track
//!   per node, one flow per request); [`timelines`] folds the stream
//!   into compact per-request [`RequestTimeline`] summaries and
//!   [`validate`] checks their well-formedness (used by tests and the
//!   CI trace smoke check).
//!
//! # Examples
//!
//! ```
//! use dysta_obs::{EventKind, RingTracer, TraceEvent, Tracer, NODE_FRONTEND};
//!
//! let tracer = RingTracer::new(1024);
//! let label = tracer.intern("resnet50@eyeriss");
//! tracer.record(TraceEvent {
//!     t_ns: 0,
//!     request: 0,
//!     node: NODE_FRONTEND,
//!     kind: EventKind::Arrival,
//!     a: u64::from(label),
//!     b: 5_000_000,
//! });
//! assert_eq!(tracer.len(), 1);
//! assert_eq!(tracer.kind_count(EventKind::Arrival), 1);
//! let json = tracer.perfetto_json();
//! assert!(json.contains("traceEvents"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod metrics;
mod tracer;

pub use event::{EventKind, Phase, TraceEvent, NODE_FRONTEND, REQ_NONE};
pub use export::{perfetto_json, timelines, validate, RequestTimeline};
pub use metrics::{HistogramSnapshot, LogHistogram, MetricsRegistry, MetricsSnapshot};
pub use tracer::{NullTracer, RingTracer, Tracer};
