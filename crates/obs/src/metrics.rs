//! Live counters, gauges, and log-bucketed histograms.
//!
//! The registry is the mid-run surface a serving daemon would poll:
//! every instrument can be read ([`MetricsRegistry::snapshot`]) while
//! the simulation is still running. Instruments are keyed by name the
//! first time they are touched; after that first touch, updating one is
//! a map lookup plus an integer add — no allocation, so the registry is
//! safe to drive from the tracer hot path at event granularity.

use std::cell::RefCell;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A histogram over `u64` samples with power-of-two buckets: bucket `i`
/// counts samples whose bit length is `i` (i.e. values in
/// `[2^(i-1), 2^i)`), which gives ~2x relative error over the full 64-bit
/// range in 65 fixed slots — no configuration, no allocation per sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[(u64::BITS - value.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile (`q` in [0, 1]), reported as the upper
    /// bound of the bucket holding that rank — an overestimate by at
    /// most 2x, consistent with the bucket resolution. Returns 0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 {
                    0
                } else {
                    // Upper bound of bucket i is 2^i - 1, capped at max.
                    ((1u128 << i) - 1).min(self.max as u128) as u64
                };
            }
        }
        self.max
    }

    /// Freezes the histogram into its serializable summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// Serializable summary of one [`LogHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (bucket upper bound; ≤ 2x overestimate).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// Pre-resolved handle to one counter (see
/// [`MetricsRegistry::counter_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Pre-resolved handle to one gauge family (see
/// [`MetricsRegistry::gauge_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Pre-resolved handle to one histogram (see
/// [`MetricsRegistry::histogram_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A snapshot-able registry of named instruments.
///
/// Interior-mutable (all methods take `&self`) so a single registry can
/// be shared by every node engine plus the front-end of a co-simulated
/// cluster. Gauges are *families* indexed by node id, so per-node
/// values need no per-node key strings (building one per update would
/// allocate on the hot path).
///
/// Instruments live in dense vectors; names resolve to indices once
/// (`*_id` methods) so event-granularity updaters pay an index plus an
/// integer add — no string lookup per sample. The by-name update
/// methods re-resolve on each call and are fine for occasional use.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counter_ids: RefCell<BTreeMap<String, usize>>,
    counters: RefCell<Vec<u64>>,
    gauge_ids: RefCell<BTreeMap<String, usize>>,
    gauges: RefCell<Vec<Vec<f64>>>,
    histogram_ids: RefCell<BTreeMap<String, usize>>,
    histograms: RefCell<Vec<LogHistogram>>,
}

/// Resolves `name` in an id map, appending a default-valued slot to
/// `store` on first touch.
fn intern<T: Default>(
    ids: &RefCell<BTreeMap<String, usize>>,
    store: &RefCell<Vec<T>>,
    name: &str,
) -> usize {
    let mut ids = ids.borrow_mut();
    match ids.get(name) {
        Some(&idx) => idx,
        None => {
            let mut store = store.borrow_mut();
            let idx = store.len();
            store.push(T::default());
            ids.insert(name.to_owned(), idx);
            idx
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Resolves (registering on first touch) the counter `name` to a
    /// handle for [`MetricsRegistry::add_id`]. A registered instrument
    /// appears in snapshots even before its first update.
    pub fn counter_id(&self, name: &str) -> CounterId {
        CounterId(intern(&self.counter_ids, &self.counters, name))
    }

    /// Resolves (registering on first touch) the gauge family `name` to
    /// a handle for [`MetricsRegistry::set_gauge_id`].
    pub fn gauge_id(&self, name: &str) -> GaugeId {
        GaugeId(intern(&self.gauge_ids, &self.gauges, name))
    }

    /// Resolves (registering on first touch) the histogram `name` to a
    /// handle for [`MetricsRegistry::observe_id`].
    pub fn histogram_id(&self, name: &str) -> HistogramId {
        HistogramId(intern(&self.histogram_ids, &self.histograms, name))
    }

    /// Adds `delta` to the counter behind `id`. Never allocates.
    pub fn add_id(&self, id: CounterId, delta: u64) {
        self.counters.borrow_mut()[id.0] += delta;
    }

    /// Sets slot `index` of the gauge family behind `id` (growing the
    /// family with zeros as needed). Allocates only on a new largest
    /// index.
    pub fn set_gauge_id(&self, id: GaugeId, index: usize, value: f64) {
        let mut gauges = self.gauges.borrow_mut();
        let family = &mut gauges[id.0];
        if family.len() <= index {
            family.resize(index + 1, 0.0);
        }
        family[index] = value;
    }

    /// Records one sample in the histogram behind `id`. Never
    /// allocates.
    pub fn observe_id(&self, id: HistogramId, value: u64) {
        self.histograms.borrow_mut()[id.0].observe(value);
    }

    /// Adds `delta` to the counter `name`, creating it at 0 first if
    /// needed. Allocates only on first touch of a name.
    pub fn add(&self, name: &str, delta: u64) {
        let id = self.counter_id(name);
        self.add_id(id, delta);
    }

    /// Sets slot `index` of the gauge family `name` (growing the family
    /// with zeros as needed). Allocates only on first touch of a name
    /// or a new largest index.
    pub fn set_gauge(&self, name: &str, index: usize, value: f64) {
        let id = self.gauge_id(name);
        self.set_gauge_id(id, index, value);
    }

    /// Records one sample in the histogram `name`. Allocates only on
    /// first touch of a name.
    pub fn observe(&self, name: &str, value: u64) {
        let id = self.histogram_id(name);
        self.observe_id(id, value);
    }

    /// Reads one counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        match self.counter_ids.borrow().get(name) {
            Some(&idx) => self.counters.borrow()[idx],
            None => 0,
        }
    }

    /// Reads one gauge slot (`None` when never set).
    pub fn gauge(&self, name: &str, index: usize) -> Option<f64> {
        let idx = *self.gauge_ids.borrow().get(name)?;
        self.gauges.borrow()[idx].get(index).copied()
    }

    /// Freezes every instrument into a serializable snapshot. Safe to
    /// call mid-run; the registry keeps accumulating afterwards.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.borrow();
        let gauges = self.gauges.borrow();
        let histograms = self.histograms.borrow();
        MetricsSnapshot {
            counters: self
                .counter_ids
                .borrow()
                .iter()
                .map(|(k, &i)| (k.clone(), counters[i]))
                .collect(),
            gauges: self
                .gauge_ids
                .borrow()
                .iter()
                .map(|(k, &i)| (k.clone(), gauges[i].clone()))
                .collect(),
            histograms: self
                .histogram_ids
                .borrow()
                .iter()
                .map(|(k, &i)| (k.clone(), histograms[i].snapshot()))
                .collect(),
        }
    }
}

/// A frozen, serializable view of a [`MetricsRegistry`] at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge families by name (index = node id).
    pub gauges: BTreeMap<String, Vec<f64>>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let mut h = LogHistogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // Nearest-rank p50 of 1..=1000 is 500, in bucket [256, 512);
        // the reported upper bound is 511.
        assert_eq!(h.percentile(0.50), 511);
        // p99 rank is 990 → bucket [512, 1024), capped at max = 1000.
        assert_eq!(h.percentile(0.99), 1000);
        assert!(h.percentile(1.0) >= h.percentile(0.5));
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let mut h = LogHistogram::default();
        h.observe(0);
        assert_eq!(h.percentile(0.5), 0);
        h.observe(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::default();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        let s = h.snapshot();
        assert_eq!((s.count, s.max, s.p99), (0, 0, 0));
    }

    #[test]
    fn registry_instruments_accumulate_and_snapshot() {
        let m = MetricsRegistry::new();
        m.add("requests", 2);
        m.add("requests", 3);
        m.set_gauge("queue_depth", 2, 7.0);
        m.set_gauge("queue_depth", 0, 1.0);
        m.observe("wait_ns", 1_000);
        m.observe("wait_ns", 2_000);
        assert_eq!(m.counter("requests"), 5);
        assert_eq!(m.counter("untouched"), 0);
        assert_eq!(m.gauge("queue_depth", 2), Some(7.0));
        assert_eq!(m.gauge("queue_depth", 1), Some(0.0));
        assert_eq!(m.gauge("missing", 0), None);
        let snap = m.snapshot();
        assert_eq!(snap.counters["requests"], 5);
        assert_eq!(snap.gauges["queue_depth"], vec![1.0, 0.0, 7.0]);
        assert_eq!(snap.histograms["wait_ns"].count, 2);
        // Snapshot is a freeze-frame: later updates don't back-propagate.
        m.add("requests", 1);
        assert_eq!(snap.counters["requests"], 5);
    }

    #[test]
    fn snapshot_serializes_deterministically() {
        let m = MetricsRegistry::new();
        m.add("b", 1);
        m.add("a", 2);
        m.observe("h", 42);
        let one = serde_json::to_string(&m.snapshot()).unwrap();
        let two = serde_json::to_string(&m.snapshot()).unwrap();
        assert_eq!(one, two);
        let back: MetricsSnapshot = serde_json::from_str(&one).unwrap();
        assert_eq!(back, m.snapshot());
    }
}
