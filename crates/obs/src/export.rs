//! Exporters: Perfetto/Chrome-trace JSON and the compact per-request
//! timeline summary the tests (and the CI smoke check) consume.
//!
//! Everything here is offline post-processing over the event slice a
//! [`RingTracer`] hands out — allocation is fine, determinism is not
//! optional: identical runs must serialize byte-identically (pinned by
//! the golden fixture and the determinism test).

use std::collections::BTreeMap;

use serde::Value;

use crate::event::{EventKind, TraceEvent, NODE_FRONTEND, REQ_NONE};
use crate::tracer::RingTracer;

/// One request's life, folded out of the event stream.
///
/// `Option` fields are `None` when the corresponding event is absent —
/// either because it never happened (a rejected request has no
/// dispatch) or because the ring overwrote it; validation assumes the
/// ring was large enough to hold the whole run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestTimeline {
    /// Request id.
    pub id: u64,
    /// Interned model-variant label id (from the arrival event).
    pub label: Option<u32>,
    /// Arrival time.
    pub arrival_ns: Option<u64>,
    /// SLO budget (from the arrival event).
    pub slo_ns: Option<i64>,
    /// Admission decision time (admit or degrade).
    pub admitted_ns: Option<u64>,
    /// True when admission control rejected the request.
    pub rejected: bool,
    /// True when admission control relaxed the request's SLO.
    pub degraded: bool,
    /// Front-end dispatch time (first placement on a node).
    pub dispatch_ns: Option<u64>,
    /// Slack at dispatch (deadline − dispatch time).
    pub dispatch_slack_ns: Option<i64>,
    /// The node that completed (or last executed) the request.
    pub node: Option<u32>,
    /// Start of the first execution segment.
    pub first_exec_ns: Option<u64>,
    /// Total time spent executing, summed over segments.
    pub executed_ns: u64,
    /// Layers executed, summed over segments.
    pub layers: u64,
    /// Number of contiguous execution segments.
    pub segments: u32,
    /// Times this request was switched *in* paying the penalty.
    pub preemptions: u32,
    /// Times this request moved between nodes (steal or migration).
    pub transfers: u32,
    /// Completion time.
    pub completion_ns: Option<u64>,
    /// True when the request finished past its deadline.
    pub violated: bool,
    /// Completion slack (deadline − completion; negative = violated).
    pub completion_slack_ns: Option<i64>,
    /// Times this request was salvaged off a crashed node.
    pub salvages: u32,
    /// Times a salvage landed the request on a new node.
    pub retries: u32,
    /// True when the request reneged from a queue (projected slack went
    /// negative before it ever started).
    pub reneged: bool,
    /// True when the request failed permanently (out of retry budget or
    /// no live node to take it).
    pub failed: bool,
}

/// Folds an event stream into per-request timelines, sorted by request
/// id. Events not tied to a request ([`REQ_NONE`]) are skipped.
pub fn timelines(events: &[TraceEvent]) -> Vec<RequestTimeline> {
    let mut map: BTreeMap<u64, RequestTimeline> = BTreeMap::new();
    for e in events {
        if e.request == REQ_NONE {
            continue;
        }
        let t = map.entry(e.request).or_insert_with(|| RequestTimeline {
            id: e.request,
            ..RequestTimeline::default()
        });
        match e.kind {
            EventKind::Arrival => {
                t.arrival_ns = Some(e.t_ns);
                t.label = Some(e.a as u32);
                t.slo_ns = Some(e.b);
            }
            EventKind::Admit => t.admitted_ns = Some(e.t_ns),
            EventKind::AdmitReject => t.rejected = true,
            EventKind::AdmitDegrade => {
                t.admitted_ns = Some(e.t_ns);
                t.degraded = true;
            }
            EventKind::Dispatch => {
                if t.dispatch_ns.is_none() {
                    t.dispatch_ns = Some(e.t_ns);
                    t.dispatch_slack_ns = Some(e.b);
                }
                t.node = Some(e.node);
            }
            EventKind::Segment => {
                if t.first_exec_ns.is_none() {
                    t.first_exec_ns = Some(e.t_ns);
                }
                t.executed_ns += e.a.saturating_sub(e.t_ns);
                t.layers += e.b.max(0) as u64;
                t.segments += 1;
                t.node = Some(e.node);
            }
            EventKind::Preemption => t.preemptions += 1,
            EventKind::Steal | EventKind::MigrationAccept => {
                t.transfers += 1;
            }
            EventKind::MigrationOffer | EventKind::MigrationReject => {}
            EventKind::SlackProjection => {}
            EventKind::Completion => {
                t.completion_ns = Some(e.t_ns);
                t.violated = e.a == 1;
                t.completion_slack_ns = Some(e.b);
                t.node = Some(e.node);
            }
            // Node-scoped fault events carry REQ_NONE and never reach
            // here; the arms exist for exhaustiveness.
            EventKind::NodeDown | EventKind::NodeUp | EventKind::Brownout => {}
            EventKind::Salvage => t.salvages += 1,
            EventKind::Retry => {
                t.retries += 1;
                t.transfers += 1;
                t.node = Some(e.node);
            }
            EventKind::Renege => t.reneged = true,
            EventKind::Failed => t.failed = true,
        }
    }
    map.into_values().collect()
}

/// Checks that every request's event sequence is well-formed:
/// arrival ≤ dispatch ≤ first execution ≤ completion, rejected requests
/// never execute, and per-node execution segments never overlap.
///
/// Assumes a complete trace (ring capacity ≥ events recorded); a
/// truncated stream can produce spurious orphans.
///
/// # Errors
///
/// Returns the first malformation found, described for humans.
pub fn validate(events: &[TraceEvent]) -> Result<(), String> {
    for t in timelines(events) {
        let id = t.id;
        if t.rejected {
            if t.segments > 0 || t.completion_ns.is_some() || t.dispatch_ns.is_some() {
                return Err(format!("rejected request {id} has execution events"));
            }
            continue;
        }
        if let (Some(arr), Some(disp)) = (t.arrival_ns, t.dispatch_ns) {
            if arr > disp {
                return Err(format!(
                    "request {id}: dispatch {disp} before arrival {arr}"
                ));
            }
        }
        if let (Some(disp), Some(exec)) = (t.dispatch_ns, t.first_exec_ns) {
            if disp > exec {
                return Err(format!(
                    "request {id}: first quantum {exec} before dispatch {disp}"
                ));
            }
        }
        if let (Some(exec), Some(done)) = (t.first_exec_ns, t.completion_ns) {
            if exec > done {
                return Err(format!(
                    "request {id}: completion {done} before first quantum {exec}"
                ));
            }
        }
        if t.completion_ns.is_some() && t.first_exec_ns.is_none() {
            return Err(format!("request {id} completed without executing"));
        }
        if t.reneged && t.completion_ns.is_some() {
            return Err(format!("reneged request {id} completed anyway"));
        }
        if t.failed && t.completion_ns.is_some() {
            return Err(format!("failed request {id} completed anyway"));
        }
    }
    // Fault-window discipline, checked in stream order: work must never
    // be placed on a node while it is down, and salvage only happens
    // off a node that actually crashed.
    let mut down: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for e in events {
        match e.kind {
            EventKind::NodeDown => {
                down.insert(e.node);
            }
            EventKind::NodeUp => {
                down.remove(&e.node);
            }
            EventKind::Dispatch if down.contains(&e.node) => {
                return Err(format!(
                    "request {} dispatched to down node {}",
                    e.request, e.node
                ));
            }
            EventKind::Steal if down.contains(&e.node) => {
                return Err(format!("down node {} stole request {}", e.node, e.request));
            }
            EventKind::MigrationAccept if down.contains(&(e.a as u32)) => {
                return Err(format!(
                    "request {} migrated to down node {}",
                    e.request, e.a
                ));
            }
            EventKind::Retry if down.contains(&e.node) => {
                return Err(format!(
                    "request {} retried onto down node {}",
                    e.request, e.node
                ));
            }
            EventKind::Salvage if !down.contains(&e.node) => {
                return Err(format!(
                    "request {} salvaged from node {} which is not down",
                    e.request, e.node
                ));
            }
            _ => {}
        }
    }
    // Execution segments on one node must not overlap.
    let mut per_node: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::Segment {
            per_node.entry(e.node).or_default().push((e.t_ns, e.a));
        }
    }
    for (node, mut segs) in per_node {
        segs.sort_unstable();
        for w in segs.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(format!(
                    "node {node}: overlapping segments [{}, {}) and [{}, {})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
    }
    Ok(())
}

/// Chrome-trace `tid` for a node id: the front-end pseudo-node is
/// thread 0, accelerator node `n` is thread `n + 1`.
fn tid(node: u32) -> u64 {
    if node == NODE_FRONTEND {
        0
    } else {
        u64::from(node) + 1
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Sim-time ns → Chrome-trace µs timestamp.
fn us(t_ns: u64) -> Value {
    Value::Float(t_ns as f64 / 1000.0)
}

fn event_base(e: &TraceEvent, name: String) -> Vec<(&'static str, Value)> {
    vec![
        ("pid", Value::UInt(1)),
        ("tid", Value::UInt(tid(e.node))),
        ("ts", us(e.t_ns)),
        ("name", Value::Str(name)),
    ]
}

fn instant(e: &TraceEvent, name: String, args: Vec<(&str, Value)>) -> Value {
    let mut fields = vec![("ph", Value::Str("i".into()))];
    fields.extend(event_base(e, name));
    fields.push(("s", Value::Str("t".into())));
    if !args.is_empty() {
        fields.push(("args", obj(args)));
    }
    obj(fields)
}

/// An instant with an explicit Chrome-trace color (`cname`), used to
/// make fault/recovery events pop on the track: crashes and permanent
/// failures red ("terrible"), degradation yellow ("bad"), recoveries
/// green ("good").
fn instant_colored(e: &TraceEvent, name: String, cname: &str, args: Vec<(&str, Value)>) -> Value {
    let mut fields = vec![("ph", Value::Str("i".into()))];
    fields.extend(event_base(e, name));
    fields.push(("s", Value::Str("t".into())));
    fields.push(("cname", Value::Str(cname.into())));
    if !args.is_empty() {
        fields.push(("args", obj(args)));
    }
    obj(fields)
}

/// Renders `events` as a Perfetto-loadable Chrome trace: one track
/// (thread) per node plus a front-end track, one `X` slice per
/// execution segment, instants for control-plane events, one flow
/// (`s`/`f`) per completed request connecting dispatch to completion,
/// and counter tracks for queue depth / backlog. Deterministic:
/// identical inputs produce identical bytes.
///
/// `labels` is the interned label table (arrival `a` payloads index
/// it); `node_names` maps node ids to display names.
pub fn perfetto_json(
    events: &[TraceEvent],
    labels: &[String],
    node_names: &[(u32, String)],
) -> String {
    // Request id → label string, resolved from arrival events.
    let mut req_label: BTreeMap<u64, &str> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::Arrival {
            if let Some(label) = labels.get(e.a as usize) {
                req_label.insert(e.request, label.as_str());
            }
        }
    }
    let slice_name = |req: u64| match req_label.get(&req) {
        Some(label) => format!("r{req} {label}"),
        None => format!("r{req}"),
    };

    let mut out: Vec<Value> = Vec::new();
    // Track metadata first: the front-end, then every named node.
    out.push(obj(vec![
        ("ph", Value::Str("M".into())),
        ("pid", Value::UInt(1)),
        ("tid", Value::UInt(0)),
        ("name", Value::Str("thread_name".into())),
        ("args", obj(vec![("name", Value::Str("frontend".into()))])),
    ]));
    for (node, name) in node_names {
        out.push(obj(vec![
            ("ph", Value::Str("M".into())),
            ("pid", Value::UInt(1)),
            ("tid", Value::UInt(tid(*node))),
            ("name", Value::Str("thread_name".into())),
            ("args", obj(vec![("name", Value::Str(name.clone()))])),
        ]));
    }

    for e in events {
        match e.kind {
            EventKind::Arrival => {
                out.push(instant(
                    e,
                    format!("arrival {}", slice_name(e.request)),
                    vec![("slo_ns", Value::Int(e.b))],
                ));
            }
            EventKind::Admit => {
                out.push(instant(
                    e,
                    format!("admit r{}", e.request),
                    vec![("wait_ns", Value::UInt(e.a))],
                ));
            }
            EventKind::AdmitReject => {
                out.push(instant(
                    e,
                    format!("reject r{}", e.request),
                    vec![("wait_ns", Value::UInt(e.a))],
                ));
            }
            EventKind::AdmitDegrade => {
                out.push(instant(
                    e,
                    format!("degrade r{}", e.request),
                    vec![
                        ("wait_ns", Value::UInt(e.a)),
                        ("relaxed_slo_ns", Value::Int(e.b)),
                    ],
                ));
            }
            EventKind::Dispatch => {
                out.push(instant(
                    e,
                    format!("dispatch r{}", e.request),
                    vec![
                        ("queue_depth", Value::UInt(e.a)),
                        ("slack_ns", Value::Int(e.b)),
                    ],
                ));
                // Flow start: dispatch → completion arrow.
                let mut fields = vec![("ph", Value::Str("s".into()))];
                fields.extend(event_base(e, slice_name(e.request)));
                fields.push(("cat", Value::Str("request".into())));
                fields.push(("id", Value::UInt(e.request)));
                out.push(obj(fields));
                out.push(obj(vec![
                    ("ph", Value::Str("C".into())),
                    ("pid", Value::UInt(1)),
                    ("ts", us(e.t_ns)),
                    ("name", Value::Str(format!("queue_depth node{}", e.node))),
                    ("args", obj(vec![("depth", Value::UInt(e.a))])),
                ]));
            }
            EventKind::Segment => {
                let mut fields = vec![("ph", Value::Str("X".into()))];
                fields.extend(event_base(e, slice_name(e.request)));
                fields.push((
                    "dur",
                    Value::Float(e.a.saturating_sub(e.t_ns) as f64 / 1000.0),
                ));
                fields.push(("args", obj(vec![("layers", Value::Int(e.b))])));
                out.push(obj(fields));
            }
            EventKind::Preemption => {
                out.push(instant(
                    e,
                    format!("preempt r{} -> r{}", e.a, e.request),
                    vec![("overhead_ns", Value::Int(e.b))],
                ));
            }
            EventKind::Steal => {
                out.push(instant(
                    e,
                    format!("steal r{}", e.request),
                    vec![
                        ("victim_node", Value::UInt(e.a)),
                        ("fetch_ns", Value::Int(e.b)),
                    ],
                ));
            }
            EventKind::MigrationOffer => {
                out.push(instant(
                    e,
                    format!("offer r{}", e.request),
                    vec![("slack_ns", Value::UInt(e.a))],
                ));
            }
            EventKind::MigrationAccept => {
                out.push(instant(
                    e,
                    format!("migrate r{}", e.request),
                    vec![("to_node", Value::UInt(e.a)), ("fetch_ns", Value::Int(e.b))],
                ));
            }
            EventKind::MigrationReject => {
                out.push(instant(e, format!("keep r{}", e.request), vec![]));
            }
            EventKind::SlackProjection => {
                out.push(obj(vec![
                    ("ph", Value::Str("C".into())),
                    ("pid", Value::UInt(1)),
                    ("ts", us(e.t_ns)),
                    ("name", Value::Str(format!("queue_depth node{}", e.node))),
                    ("args", obj(vec![("depth", Value::UInt(e.a))])),
                ]));
                out.push(obj(vec![
                    ("ph", Value::Str("C".into())),
                    ("pid", Value::UInt(1)),
                    ("ts", us(e.t_ns)),
                    ("name", Value::Str(format!("backlog_ms node{}", e.node))),
                    ("args", obj(vec![("ms", Value::Float(e.b as f64 / 1e6))])),
                ]));
            }
            EventKind::Completion => {
                out.push(instant(
                    e,
                    format!("complete r{}", e.request),
                    vec![
                        ("violated", Value::Bool(e.a == 1)),
                        ("slack_ns", Value::Int(e.b)),
                    ],
                ));
                // Flow finish.
                let mut fields = vec![("ph", Value::Str("f".into()))];
                fields.extend(event_base(e, slice_name(e.request)));
                fields.push(("cat", Value::Str("request".into())));
                fields.push(("id", Value::UInt(e.request)));
                fields.push(("bp", Value::Str("e".into())));
                out.push(obj(fields));
            }
            EventKind::NodeDown => {
                out.push(instant_colored(
                    e,
                    format!("node_down n{}", e.node),
                    "terrible",
                    vec![
                        ("salvaged", Value::UInt(e.a)),
                        ("down_until_ns", Value::Int(e.b)),
                    ],
                ));
            }
            EventKind::NodeUp => {
                out.push(instant_colored(
                    e,
                    format!("node_up n{}", e.node),
                    "good",
                    vec![],
                ));
            }
            EventKind::Brownout => {
                out.push(instant_colored(
                    e,
                    format!("brownout n{}", e.node),
                    "bad",
                    vec![
                        ("factor_ppm", Value::UInt(e.a)),
                        ("until_ns", Value::Int(e.b)),
                    ],
                ));
            }
            EventKind::Salvage => {
                out.push(instant_colored(
                    e,
                    format!("salvage r{}", e.request),
                    "bad",
                    vec![
                        ("retry_count", Value::UInt(e.a)),
                        ("lost_exec_ns", Value::Int(e.b)),
                    ],
                ));
            }
            EventKind::Retry => {
                out.push(instant_colored(
                    e,
                    format!("retry r{}", e.request),
                    "good",
                    vec![
                        ("from_node", Value::UInt(e.a)),
                        ("fetch_ns", Value::Int(e.b)),
                    ],
                ));
            }
            EventKind::Renege => {
                out.push(instant_colored(
                    e,
                    format!("renege r{}", e.request),
                    "bad",
                    vec![
                        ("queued_ns", Value::UInt(e.a)),
                        ("slack_ns", Value::Int(e.b)),
                    ],
                ));
            }
            EventKind::Failed => {
                out.push(instant_colored(
                    e,
                    format!("failed r{}", e.request),
                    "terrible",
                    vec![("retry_count", Value::UInt(e.a))],
                ));
            }
        }
    }

    let doc = obj(vec![
        ("displayTimeUnit", Value::Str("ns".into())),
        ("traceEvents", Value::Array(out)),
    ]);
    serde_json::to_string(&doc).expect("trace document serializes")
}

impl RingTracer {
    /// Renders everything currently held as a Perfetto-loadable Chrome
    /// trace (see [`perfetto_json`]).
    pub fn perfetto_json(&self) -> String {
        perfetto_json(&self.events(), &self.labels(), &self.node_names())
    }

    /// Folds the held events into per-request timelines (see
    /// [`timelines`]).
    pub fn timelines(&self) -> Vec<RequestTimeline> {
        timelines(&self.events())
    }

    /// Validates the held events' well-formedness (see [`validate`]).
    ///
    /// # Errors
    ///
    /// Returns the first malformation found.
    pub fn validate(&self) -> Result<(), String> {
        validate(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(t_ns: u64, request: u64, node: u32, kind: EventKind, a: u64, b: i64) -> TraceEvent {
        TraceEvent {
            t_ns,
            request,
            node,
            kind,
            a,
            b,
        }
    }

    fn well_formed_run() -> Vec<TraceEvent> {
        vec![
            e(0, 7, NODE_FRONTEND, EventKind::Arrival, 0, 1_000_000),
            e(100, 7, NODE_FRONTEND, EventKind::Admit, 100, 0),
            e(100, 7, 0, EventKind::Dispatch, 1, 999_900),
            e(200, 7, 0, EventKind::Segment, 700, 3),
            e(700, 8, 0, EventKind::Preemption, 7, 20),
            e(720, 8, 0, EventKind::Segment, 900, 2),
            e(900, 7, 0, EventKind::Segment, 1_000, 1),
            e(1_000, 7, 0, EventKind::Completion, 0, 999_000),
            e(50, 9, NODE_FRONTEND, EventKind::Arrival, 1, 500),
            e(150, 9, NODE_FRONTEND, EventKind::AdmitReject, 100, 0),
        ]
    }

    #[test]
    fn timelines_fold_the_request_lifecycle() {
        let tl = timelines(&well_formed_run());
        assert_eq!(tl.len(), 3);
        let r7 = &tl[0];
        assert_eq!(r7.id, 7);
        assert_eq!(r7.arrival_ns, Some(0));
        assert_eq!(r7.dispatch_ns, Some(100));
        assert_eq!(r7.first_exec_ns, Some(200));
        assert_eq!(r7.completion_ns, Some(1_000));
        assert_eq!(r7.segments, 2);
        assert_eq!(r7.layers, 4);
        assert_eq!(r7.executed_ns, 600);
        assert!(!r7.violated);
        assert!(!r7.rejected);
        let r9 = &tl[2];
        assert!(r9.rejected);
        assert_eq!(r9.segments, 0);
        assert_eq!(r9.completion_ns, None);
    }

    #[test]
    fn validation_accepts_a_well_formed_run() {
        assert_eq!(validate(&well_formed_run()), Ok(()));
    }

    #[test]
    fn validation_rejects_execution_after_rejection() {
        let mut events = well_formed_run();
        events.push(e(2_000, 9, 0, EventKind::Segment, 2_100, 1));
        let err = validate(&events).unwrap_err();
        assert!(err.contains("rejected request 9"), "{err}");
    }

    #[test]
    fn validation_rejects_dispatch_before_arrival() {
        let events = vec![
            e(500, 1, NODE_FRONTEND, EventKind::Arrival, 0, 0),
            e(400, 1, 0, EventKind::Dispatch, 1, 0),
        ];
        let err = validate(&events).unwrap_err();
        assert!(err.contains("before arrival"), "{err}");
    }

    #[test]
    fn validation_rejects_dispatch_to_a_down_node() {
        let events = vec![
            e(0, 1, NODE_FRONTEND, EventKind::Arrival, 0, 1_000),
            e(10, REQ_NONE, 0, EventKind::NodeDown, 0, -1),
            e(20, 1, 0, EventKind::Dispatch, 1, 900),
        ];
        let err = validate(&events).unwrap_err();
        assert!(err.contains("down node 0"), "{err}");
    }

    #[test]
    fn validation_requires_salvage_to_follow_node_down() {
        let events = vec![e(10, 1, 0, EventKind::Salvage, 0, 0)];
        let err = validate(&events).unwrap_err();
        assert!(err.contains("not down"), "{err}");
    }

    #[test]
    fn validation_accepts_dispatch_after_recovery() {
        let events = vec![
            e(0, 1, NODE_FRONTEND, EventKind::Arrival, 0, 10_000),
            e(10, REQ_NONE, 0, EventKind::NodeDown, 0, 50),
            e(50, REQ_NONE, 0, EventKind::NodeUp, 0, 0),
            e(60, 1, 0, EventKind::Dispatch, 1, 9_000),
            e(70, 1, 0, EventKind::Segment, 90, 1),
            e(90, 1, 0, EventKind::Completion, 0, 100),
        ];
        assert_eq!(validate(&events), Ok(()));
    }

    #[test]
    fn validation_rejects_completion_after_renege() {
        let mut events = well_formed_run();
        events.push(e(950, 7, 0, EventKind::Renege, 900, -5));
        let err = validate(&events).unwrap_err();
        assert!(err.contains("reneged request 7"), "{err}");
    }

    #[test]
    fn validation_rejects_overlapping_segments_on_one_node() {
        let events = vec![
            e(0, 1, 0, EventKind::Segment, 100, 1),
            e(50, 2, 0, EventKind::Segment, 150, 1),
        ];
        let err = validate(&events).unwrap_err();
        assert!(err.contains("overlapping"), "{err}");
    }

    #[test]
    fn perfetto_export_is_deterministic_and_parses() {
        let events = well_formed_run();
        let labels = vec!["resnet50@eyeriss".to_string(), "bert@sanger".to_string()];
        let names = vec![(0u32, "node0 EyerissV2".to_string())];
        let one = perfetto_json(&events, &labels, &names);
        let two = perfetto_json(&events, &labels, &names);
        assert_eq!(one, two);
        let doc: Value = serde_json::from_str(&one).expect("valid JSON");
        let trace_events = doc.field("traceEvents").expect("traceEvents");
        let Value::Array(items) = trace_events else {
            panic!("traceEvents must be an array");
        };
        // 2 metadata + at least one entry per input event.
        assert!(items.len() >= events.len() + 2, "{}", items.len());
        // Slices carry the interned label.
        assert!(one.contains("r7 resnet50@eyeriss"));
        // Exactly one X slice per Segment event — the rejected request
        // contributes none.
        assert_eq!(one.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn ring_tracer_convenience_exports_match_free_functions() {
        use crate::tracer::Tracer;
        let tracer = RingTracer::new(64);
        let label = tracer.intern("resnet50");
        tracer.name_node(0, "node0");
        for mut ev in well_formed_run() {
            if ev.kind == EventKind::Arrival {
                ev.a = u64::from(label);
            }
            tracer.record(ev);
        }
        assert_eq!(tracer.validate(), Ok(()));
        assert_eq!(tracer.timelines().len(), 3);
        assert_eq!(
            tracer.perfetto_json(),
            perfetto_json(&tracer.events(), &tracer.labels(), &tracer.node_names())
        );
    }
}
