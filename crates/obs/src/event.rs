//! The structured trace-event vocabulary.
//!
//! Every event is a fixed-size `Copy` record stamped with *simulated*
//! time, so recording one is a handful of word moves — no formatting, no
//! allocation, no wall-clock reads on the hot path. Free-form data
//! (model-variant names, node names) is interned once through
//! [`crate::Tracer::intern`] and referenced by id.

/// Pseudo-node id for events emitted by the cluster front-end rather
/// than an accelerator node (arrival, admission decisions).
pub const NODE_FRONTEND: u32 = u32::MAX;

/// Sentinel request id for events not tied to a single request
/// (per-node slack re-projections).
pub const REQ_NONE: u64 = u64::MAX;

/// What happened. The payload fields `a`/`b` of [`TraceEvent`] are
/// overloaded per kind; each variant documents its convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A request entered the system. `a` = interned label id of the
    /// model variant, `b` = the request's SLO budget in ns.
    Arrival = 0,
    /// Admission control accepted the request as-is. `a` = admission
    /// wait in ns (batching delay between arrival and the decision).
    Admit = 1,
    /// Admission control rejected the request outright. `a` = admission
    /// wait in ns.
    AdmitReject = 2,
    /// Admission control admitted the request at a degraded
    /// (relaxed) SLO. `a` = admission wait in ns, `b` = the relaxed SLO
    /// budget in ns.
    AdmitDegrade = 3,
    /// The request was placed on a node's queue. `node` = target node,
    /// `a` = the node's queue length after dispatch, `b` = slack at
    /// dispatch (deadline − now; negative = already doomed).
    Dispatch = 4,
    /// A maximal contiguous run of quanta one request executed on a
    /// node. `t_ns` = start, `a` = end in ns, `b` = layers executed.
    /// One segment spans every back-to-back quantum of the same
    /// request, so segment count ≈ context-switch count, not layer
    /// count.
    Segment = 5,
    /// Execution switched to a different request than the one that ran
    /// last (the engine paid the context-switch penalty). `request` =
    /// the incoming request, `a` = the outgoing request's id, `b` = the
    /// switch overhead in ns.
    Preemption = 6,
    /// A work-stealing transfer. `node` = the thief, `request` = the
    /// stolen request, `a` = the victim node, `b` = the weight/activation
    /// re-fetch cost in ns charged to the thief.
    Steal = 7,
    /// A migration pass offered this request to the pool. `node` = the
    /// overloaded source node, `a` = how many times the request has
    /// already migrated (the per-request budget the engine enforces).
    MigrationOffer = 8,
    /// A migration offer was accepted. `node` = the source node, `a` =
    /// the destination node, `b` = the re-fetch cost in ns.
    MigrationAccept = 9,
    /// A migration offer found no taker. `node` = the source node.
    MigrationReject = 10,
    /// A per-node slack re-projection at a front-end decision point.
    /// `request` = [`REQ_NONE`], `a` = the node's queue length, `b` =
    /// the node's estimated backlog in ns.
    SlackProjection = 11,
    /// A request finished. `a` = 1 if its SLO was violated else 0,
    /// `b` = completion slack (deadline − completion; negative =
    /// violated by that much).
    Completion = 12,
    /// A node crashed (fault injection). `node` = the crashed node,
    /// `request` = [`REQ_NONE`], `a` = how many queued/in-flight
    /// requests were salvaged off the node, `b` = the scheduled
    /// recovery time in ns for a transient crash, or −1 for a
    /// permanent one.
    NodeDown = 13,
    /// A transiently-crashed node came back up. `node` = the
    /// recovered node, `request` = [`REQ_NONE`].
    NodeUp = 14,
    /// A brown-out or transfer-stall window toggled on a node.
    /// `request` = [`REQ_NONE`], `a` = the effective factor in parts
    /// per million (capacity multiplier for brown-outs, fetch-cost
    /// multiplier for stalls; 1_000_000 = back to nominal), `b` = the
    /// window end in ns (0 when the window is closing).
    Brownout = 15,
    /// A request was pulled off a crashed node for re-dispatch.
    /// `node` = the crashed node, `a` = the request's retry count so
    /// far, `b` = executed work lost on the dead node in ns.
    Salvage = 16,
    /// A salvaged request landed on a new node. `node` = the new
    /// target, `a` = the crashed node it came from, `b` = the
    /// re-fetch cost in ns charged to the target.
    Retry = 17,
    /// A queued request reneged: its re-projected slack went negative
    /// before it ever started, so the front-end dropped it. `node` =
    /// the node it was queued on, `a` = time spent queued in ns,
    /// `b` = the (negative) projected slack at the drop.
    Renege = 18,
    /// A request failed permanently: out of retry budget or no live
    /// node to run it. `node` = the node it died on (or
    /// [`NODE_FRONTEND`] when it never landed anywhere), `a` = its
    /// retry count.
    Failed = 19,
}

impl EventKind {
    /// Number of kinds (size for per-kind counter arrays).
    pub const COUNT: usize = 20;

    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::Arrival,
        EventKind::Admit,
        EventKind::AdmitReject,
        EventKind::AdmitDegrade,
        EventKind::Dispatch,
        EventKind::Segment,
        EventKind::Preemption,
        EventKind::Steal,
        EventKind::MigrationOffer,
        EventKind::MigrationAccept,
        EventKind::MigrationReject,
        EventKind::SlackProjection,
        EventKind::Completion,
        EventKind::NodeDown,
        EventKind::NodeUp,
        EventKind::Brownout,
        EventKind::Salvage,
        EventKind::Retry,
        EventKind::Renege,
        EventKind::Failed,
    ];

    /// Stable lower-snake name (used in exports and metric keys).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Arrival => "arrival",
            EventKind::Admit => "admit",
            EventKind::AdmitReject => "admit_reject",
            EventKind::AdmitDegrade => "admit_degrade",
            EventKind::Dispatch => "dispatch",
            EventKind::Segment => "segment",
            EventKind::Preemption => "preemption",
            EventKind::Steal => "steal",
            EventKind::MigrationOffer => "migration_offer",
            EventKind::MigrationAccept => "migration_accept",
            EventKind::MigrationReject => "migration_reject",
            EventKind::SlackProjection => "slack_projection",
            EventKind::Completion => "completion",
            EventKind::NodeDown => "node_down",
            EventKind::NodeUp => "node_up",
            EventKind::Brownout => "brownout",
            EventKind::Salvage => "salvage",
            EventKind::Retry => "retry",
            EventKind::Renege => "renege",
            EventKind::Failed => "failed",
        }
    }

    /// True for kinds that represent the request actually executing on
    /// an accelerator (used by well-formedness validation: rejected
    /// requests must have none of these).
    pub fn is_execution(self) -> bool {
        matches!(
            self,
            EventKind::Segment | EventKind::Preemption | EventKind::Completion
        )
    }
}

/// One structured, sim-time-stamped observation.
///
/// `a` and `b` are per-kind payloads (see [`EventKind`]); `b` is signed
/// because several kinds carry slack, which goes negative exactly when
/// it matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event in ns (for [`EventKind::Segment`]:
    /// the segment start).
    pub t_ns: u64,
    /// The request the event concerns, or [`REQ_NONE`].
    pub request: u64,
    /// The node the event happened on, or [`NODE_FRONTEND`].
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
    /// First per-kind payload word.
    pub a: u64,
    /// Second per-kind payload word (signed: often slack).
    pub b: i64,
}

impl TraceEvent {
    /// A placeholder event (ring-buffer fill value; never exported).
    pub const EMPTY: TraceEvent = TraceEvent {
        t_ns: 0,
        request: REQ_NONE,
        node: NODE_FRONTEND,
        kind: EventKind::Arrival,
        a: 0,
        b: 0,
    };
}

/// Wall-clock phases the engines attribute profiling time to (see
/// [`crate::Tracer::phase_ns`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Scheduler `pick_next` calls.
    Pick = 0,
    /// Quantum execution (layer replay + bookkeeping).
    Execute = 1,
    /// Cluster front-end work (admission, dispatch, steal/migration
    /// passes).
    Frontend = 2,
}

impl Phase {
    /// Number of phases (size for accumulator arrays).
    pub const COUNT: usize = 3;

    /// Every phase, in discriminant order.
    pub const ALL: [Phase; Phase::COUNT] = [Phase::Pick, Phase::Execute, Phase::Frontend];

    /// Stable lower-snake name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Pick => "pick",
            Phase::Execute => "execute",
            Phase::Frontend => "frontend",
        }
    }
}
