//! Attention-based models: BERT, GPT-2 and BART.
//!
//! All three use the base configuration (hidden 768, 12 heads, FFN 3072)
//! matching the checkpoints the paper obtains from HuggingFace. Each
//! transformer block is expanded into its constituent matmuls so that the
//! attention score (`Q·Kᵀ`) and context (`A·V`) layers — the ones subject to
//! dynamic attention sparsity on Sanger — appear as individual schedulable
//! layers.

use crate::{Attention, Layer, LayerKind, Linear, ModelGraph, ModelId};

const HIDDEN: u32 = 768;
const HEADS: u32 = 12;
const HEAD_DIM: u32 = HIDDEN / HEADS;
const FFN: u32 = 3072;
/// GPT-2 byte-pair-encoding vocabulary.
const GPT2_VOCAB: u32 = 50257;
/// BART vocabulary.
const BART_VOCAB: u32 = 50265;

fn linear(name: String, in_f: u32, out_f: u32, tokens: u32) -> Layer {
    Layer::new(
        name,
        LayerKind::Linear(Linear {
            in_features: in_f,
            out_features: out_f,
            tokens,
        }),
    )
}

/// Appends one self-attention sub-block (QKV projection, score, context,
/// output projection).
fn self_attention(layers: &mut Vec<Layer>, prefix: &str, seq: u32) {
    layers.push(linear(format!("{prefix}_qkv"), HIDDEN, 3 * HIDDEN, seq));
    let attn = Attention {
        heads: HEADS,
        head_dim: HEAD_DIM,
        q_len: seq,
        kv_len: seq,
    };
    layers.push(Layer::new(
        format!("{prefix}_score"),
        LayerKind::AttentionScore(attn),
    ));
    layers.push(Layer::new(
        format!("{prefix}_ctx"),
        LayerKind::AttentionContext(attn),
    ));
    layers.push(linear(format!("{prefix}_out"), HIDDEN, HIDDEN, seq));
}

/// Appends one cross-attention sub-block (decoder queries over encoder keys).
fn cross_attention(layers: &mut Vec<Layer>, prefix: &str, q_len: u32, kv_len: u32) {
    layers.push(linear(format!("{prefix}_q"), HIDDEN, HIDDEN, q_len));
    layers.push(linear(format!("{prefix}_kv"), HIDDEN, 2 * HIDDEN, kv_len));
    let attn = Attention {
        heads: HEADS,
        head_dim: HEAD_DIM,
        q_len,
        kv_len,
    };
    layers.push(Layer::new(
        format!("{prefix}_score"),
        LayerKind::AttentionScore(attn),
    ));
    layers.push(Layer::new(
        format!("{prefix}_ctx"),
        LayerKind::AttentionContext(attn),
    ));
    layers.push(linear(format!("{prefix}_out"), HIDDEN, HIDDEN, q_len));
}

/// Appends one feed-forward sub-block.
fn ffn(layers: &mut Vec<Layer>, prefix: &str, seq: u32) {
    layers.push(linear(format!("{prefix}_ffn1"), HIDDEN, FFN, seq));
    layers.push(linear(format!("{prefix}_ffn2"), FFN, HIDDEN, seq));
}

/// Builds BERT-base (12 encoder blocks) for sequence length `seq`, with a
/// span-prediction head as used for SQuAD question answering.
///
/// # Examples
///
/// ```
/// let g = dysta_models::zoo::bert(384);
/// assert_eq!(g.attention_layer_indices().len(), 24);
/// ```
pub fn bert(seq: u32) -> ModelGraph {
    assert!(seq > 0, "sequence length must be positive");
    let mut layers = Vec::new();
    for b in 0..12 {
        let p = format!("enc{b}");
        self_attention(&mut layers, &p, seq);
        ffn(&mut layers, &p, seq);
    }
    layers.push(linear("qa_head".into(), HIDDEN, 2, seq));
    ModelGraph::new(ModelId::Bert, layers).expect("bert graph is valid")
}

/// Builds GPT-2 small (12 decoder blocks) for sequence length `seq`, with
/// the tied language-model head.
///
/// # Examples
///
/// ```
/// let g = dysta_models::zoo::gpt2(256);
/// assert!(g.total_macs() > 0);
/// ```
pub fn gpt2(seq: u32) -> ModelGraph {
    assert!(seq > 0, "sequence length must be positive");
    let mut layers = Vec::new();
    for b in 0..12 {
        let p = format!("dec{b}");
        self_attention(&mut layers, &p, seq);
        ffn(&mut layers, &p, seq);
    }
    layers.push(linear("lm_head".into(), HIDDEN, GPT2_VOCAB, seq));
    ModelGraph::new(ModelId::Gpt2, layers).expect("gpt2 graph is valid")
}

/// Builds BART-base (6 encoder + 6 decoder blocks) for the given encoder
/// (`src_seq`) and decoder (`tgt_seq`) sequence lengths, with the
/// generation head, as used for machine translation.
///
/// # Examples
///
/// ```
/// let g = dysta_models::zoo::bart(256, 256);
/// // encoder self-attn (6*2) + decoder self-attn (6*2) + cross-attn (6*2)
/// assert_eq!(g.attention_layer_indices().len(), 36);
/// ```
pub fn bart(src_seq: u32, tgt_seq: u32) -> ModelGraph {
    assert!(
        src_seq > 0 && tgt_seq > 0,
        "sequence lengths must be positive"
    );
    let mut layers = Vec::new();
    for b in 0..6 {
        let p = format!("enc{b}");
        self_attention(&mut layers, &p, src_seq);
        ffn(&mut layers, &p, src_seq);
    }
    for b in 0..6 {
        let p = format!("dec{b}");
        self_attention(&mut layers, &p, tgt_seq);
        cross_attention(&mut layers, &format!("{p}_x"), tgt_seq, src_seq);
        ffn(&mut layers, &p, tgt_seq);
    }
    layers.push(linear("lm_head".into(), HIDDEN, BART_VOCAB, tgt_seq));
    ModelGraph::new(ModelId::Bart, layers).expect("bart graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_macs_scale_quadratically_in_attention() {
        let short = bert(128);
        let long = bert(256);
        let attn_macs = |g: &ModelGraph| -> u64 {
            g.layers()
                .iter()
                .filter(|l| l.is_dynamic_attention())
                .map(|l| l.macs())
                .sum()
        };
        // Doubling seq quadruples attention MACs.
        assert_eq!(attn_macs(&long), 4 * attn_macs(&short));
    }

    #[test]
    fn bert_base_parameter_count() {
        // Encoder-only weights: 12 * (4*768^2 + 2*768*3072) ≈ 85 M.
        let g = bert(384);
        let mparams = g.total_params() as f64 / 1e6;
        assert!((80.0..90.0).contains(&mparams), "{mparams}");
    }

    #[test]
    fn gpt2_lm_head_dominates_params() {
        let g = gpt2(256);
        let head = g.layers().last().unwrap();
        assert_eq!(head.name(), "lm_head");
        assert!(head.params() as f64 / g.total_params() as f64 > 0.25);
    }

    #[test]
    fn bart_cross_attention_uses_encoder_kv_length() {
        let g = bart(384, 128);
        let cross = g
            .layers()
            .iter()
            .find(|l| l.name() == "dec0_x_score")
            .unwrap();
        match cross.kind() {
            LayerKind::AttentionScore(a) => {
                assert_eq!(a.q_len, 128);
                assert_eq!(a.kv_len, 384);
            }
            _ => panic!("expected attention score"),
        }
    }

    #[test]
    #[should_panic(expected = "sequence length must be positive")]
    fn bert_rejects_zero_seq() {
        let _ = bert(0);
    }
}
