//! Shared helpers for building CNN layer graphs.

use crate::{Conv2d, Layer, LayerKind, Pool, PoolKind};

/// A square conv + ReLU layer.
pub(crate) fn conv_relu(
    name: &str,
    in_ch: u32,
    out_ch: u32,
    kernel: u32,
    stride: u32,
    padding: u32,
    in_size: u32,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d(Conv2d::square(
            in_ch, out_ch, kernel, stride, padding, in_size,
        )),
    )
    .with_relu()
}

/// A square conv without activation (e.g. projection shortcuts).
pub(crate) fn conv_plain(
    name: &str,
    in_ch: u32,
    out_ch: u32,
    kernel: u32,
    stride: u32,
    padding: u32,
    in_size: u32,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d(Conv2d::square(
            in_ch, out_ch, kernel, stride, padding, in_size,
        )),
    )
}

/// An asymmetric conv + ReLU (`kh × kw` kernel with size-preserving padding).
pub(crate) fn conv_asym_relu(
    name: &str,
    in_ch: u32,
    out_ch: u32,
    kh: u32,
    kw: u32,
    in_size: u32,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d(Conv2d {
            in_channels: in_ch,
            out_channels: out_ch,
            kernel_h: kh,
            kernel_w: kw,
            stride: 1,
            padding_h: kh / 2,
            padding_w: kw / 2,
            groups: 1,
            in_size,
        }),
    )
    .with_relu()
}

/// A depthwise conv + ReLU.
pub(crate) fn depthwise_relu(name: &str, channels: u32, stride: u32, in_size: u32) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d(Conv2d {
            groups: channels,
            ..Conv2d::square(channels, channels, 3, stride, 1, in_size)
        }),
    )
    .with_relu()
}

/// A max-pooling layer.
pub(crate) fn max_pool(name: &str, channels: u32, kernel: u32, stride: u32, in_size: u32) -> Layer {
    Layer::new(
        name,
        LayerKind::Pool(Pool {
            kind: PoolKind::Max,
            channels,
            kernel,
            stride,
            in_size,
        }),
    )
}

/// A global average-pooling layer (collapses the spatial dimensions).
pub(crate) fn global_avg_pool(name: &str, channels: u32, in_size: u32) -> Layer {
    Layer::new(
        name,
        LayerKind::Pool(Pool {
            kind: PoolKind::Avg,
            channels,
            kernel: in_size,
            stride: 1,
            in_size,
        }),
    )
}
