//! Inception-V3 (Szegedy et al., CVPR 2016) for 299×299 inputs.

use super::cnn_util::{conv_asym_relu, conv_relu, global_avg_pool, max_pool};
use crate::{Layer, LayerKind, Linear, ModelGraph, ModelId};

/// Inception-A module (35×35 grid). Returns output channels.
fn inception_a(layers: &mut Vec<Layer>, name: &str, in_ch: u32, pool_ch: u32) -> u32 {
    let s = 35;
    layers.push(conv_relu(&format!("{name}_1x1"), in_ch, 64, 1, 1, 0, s));
    layers.push(conv_relu(&format!("{name}_5x5r"), in_ch, 48, 1, 1, 0, s));
    layers.push(conv_relu(&format!("{name}_5x5"), 48, 64, 5, 1, 2, s));
    layers.push(conv_relu(&format!("{name}_3x3r"), in_ch, 64, 1, 1, 0, s));
    layers.push(conv_relu(&format!("{name}_3x3a"), 64, 96, 3, 1, 1, s));
    layers.push(conv_relu(&format!("{name}_3x3b"), 96, 96, 3, 1, 1, s));
    layers.push(conv_relu(&format!("{name}_pp"), in_ch, pool_ch, 1, 1, 0, s));
    64 + 64 + 96 + pool_ch
}

/// Inception-B module (grid reduction 35→17). Returns output channels.
fn inception_b(layers: &mut Vec<Layer>, name: &str, in_ch: u32) -> u32 {
    layers.push(conv_relu(&format!("{name}_3x3"), in_ch, 384, 3, 2, 0, 35));
    layers.push(conv_relu(&format!("{name}_dblr"), in_ch, 64, 1, 1, 0, 35));
    layers.push(conv_relu(&format!("{name}_dbla"), 64, 96, 3, 1, 1, 35));
    layers.push(conv_relu(&format!("{name}_dblb"), 96, 96, 3, 2, 0, 35));
    layers.push(max_pool(&format!("{name}_pool"), in_ch, 3, 2, 35));
    384 + 96 + in_ch
}

/// Inception-C module (17×17 grid, factorised 7×7). Returns output channels.
fn inception_c(layers: &mut Vec<Layer>, name: &str, in_ch: u32, c7: u32) -> u32 {
    let s = 17;
    layers.push(conv_relu(&format!("{name}_1x1"), in_ch, 192, 1, 1, 0, s));
    layers.push(conv_relu(&format!("{name}_7x7r"), in_ch, c7, 1, 1, 0, s));
    layers.push(conv_asym_relu(&format!("{name}_1x7a"), c7, c7, 1, 7, s));
    layers.push(conv_asym_relu(&format!("{name}_7x1a"), c7, 192, 7, 1, s));
    layers.push(conv_relu(&format!("{name}_dblr"), in_ch, c7, 1, 1, 0, s));
    layers.push(conv_asym_relu(&format!("{name}_7x1b"), c7, c7, 7, 1, s));
    layers.push(conv_asym_relu(&format!("{name}_1x7b"), c7, c7, 1, 7, s));
    layers.push(conv_asym_relu(&format!("{name}_7x1c"), c7, c7, 7, 1, s));
    layers.push(conv_asym_relu(&format!("{name}_1x7c"), c7, 192, 1, 7, s));
    layers.push(conv_relu(&format!("{name}_pp"), in_ch, 192, 1, 1, 0, s));
    192 * 4
}

/// Inception-D module (grid reduction 17→8). Returns output channels.
fn inception_d(layers: &mut Vec<Layer>, name: &str, in_ch: u32) -> u32 {
    layers.push(conv_relu(&format!("{name}_3x3r"), in_ch, 192, 1, 1, 0, 17));
    layers.push(conv_relu(&format!("{name}_3x3"), 192, 320, 3, 2, 0, 17));
    layers.push(conv_relu(&format!("{name}_7x7r"), in_ch, 192, 1, 1, 0, 17));
    layers.push(conv_asym_relu(&format!("{name}_1x7"), 192, 192, 1, 7, 17));
    layers.push(conv_asym_relu(&format!("{name}_7x1"), 192, 192, 7, 1, 17));
    layers.push(conv_relu(&format!("{name}_3x3b"), 192, 192, 3, 2, 0, 17));
    layers.push(max_pool(&format!("{name}_pool"), in_ch, 3, 2, 17));
    320 + 192 + in_ch
}

/// Inception-E module (8×8 grid, expanded filter bank). Returns channels.
fn inception_e(layers: &mut Vec<Layer>, name: &str, in_ch: u32) -> u32 {
    let s = 8;
    layers.push(conv_relu(&format!("{name}_1x1"), in_ch, 320, 1, 1, 0, s));
    layers.push(conv_relu(&format!("{name}_3x3r"), in_ch, 384, 1, 1, 0, s));
    layers.push(conv_asym_relu(&format!("{name}_1x3a"), 384, 384, 1, 3, s));
    layers.push(conv_asym_relu(&format!("{name}_3x1a"), 384, 384, 3, 1, s));
    layers.push(conv_relu(&format!("{name}_dblr"), in_ch, 448, 1, 1, 0, s));
    layers.push(conv_relu(&format!("{name}_dbl3"), 448, 384, 3, 1, 1, s));
    layers.push(conv_asym_relu(&format!("{name}_1x3b"), 384, 384, 1, 3, s));
    layers.push(conv_asym_relu(&format!("{name}_3x1b"), 384, 384, 3, 1, s));
    layers.push(conv_relu(&format!("{name}_pp"), in_ch, 192, 1, 1, 0, s));
    320 + 768 + 768 + 192
}

/// Builds Inception-V3 (~5.7 GMACs, ~24 M parameters).
///
/// Used for the Table 2 network-sparsity profiling.
///
/// # Examples
///
/// ```
/// let g = dysta_models::zoo::inception_v3();
/// assert!(g.num_layers() > 90);
/// ```
#[allow(clippy::vec_init_then_push)]
pub fn inception_v3() -> ModelGraph {
    let mut layers = Vec::new();
    layers.push(conv_relu("conv1", 3, 32, 3, 2, 0, 299)); // 149
    layers.push(conv_relu("conv2", 32, 32, 3, 1, 0, 149)); // 147
    layers.push(conv_relu("conv3", 32, 64, 3, 1, 1, 147)); // 147
    layers.push(max_pool("pool1", 64, 3, 2, 147)); // 73
    layers.push(conv_relu("conv4", 64, 80, 1, 1, 0, 73)); // 73
    layers.push(conv_relu("conv5", 80, 192, 3, 1, 0, 73)); // 71
    layers.push(max_pool("pool2", 192, 3, 2, 71)); // 35

    let mut ch = 192;
    ch = inception_a(&mut layers, "a1", ch, 32);
    ch = inception_a(&mut layers, "a2", ch, 64);
    ch = inception_a(&mut layers, "a3", ch, 64);
    debug_assert_eq!(ch, 288);
    ch = inception_b(&mut layers, "b1", ch);
    debug_assert_eq!(ch, 768);
    ch = inception_c(&mut layers, "c1", ch, 128);
    ch = inception_c(&mut layers, "c2", ch, 160);
    ch = inception_c(&mut layers, "c3", ch, 160);
    ch = inception_c(&mut layers, "c4", ch, 192);
    ch = inception_d(&mut layers, "d1", ch);
    debug_assert_eq!(ch, 1280);
    ch = inception_e(&mut layers, "e1", ch);
    ch = inception_e(&mut layers, "e2", ch);
    debug_assert_eq!(ch, 2048);

    layers.push(global_avg_pool("avgpool", 2048, 8));
    layers.push(Layer::new(
        "fc",
        LayerKind::Linear(Linear {
            in_features: 2048,
            out_features: 1000,
            tokens: 1,
        }),
    ));
    ModelGraph::new(ModelId::InceptionV3, layers).expect("inception_v3 graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stem_reduces_to_35() {
        let g = inception_v3();
        let conv5 = g.layers().iter().find(|l| l.name() == "conv5").unwrap();
        match conv5.kind() {
            crate::LayerKind::Conv2d(c) => assert_eq!(c.out_size(), 71),
            _ => panic!("expected conv"),
        }
    }

    #[test]
    fn factorised_convs_have_asymmetric_kernels() {
        let g = inception_v3();
        let l = g.layers().iter().find(|l| l.name() == "c1_1x7a").unwrap();
        match l.kind() {
            crate::LayerKind::Conv2d(c) => {
                assert_eq!((c.kernel_h, c.kernel_w), (1, 7));
                assert_eq!(c.out_h(), 17);
                assert_eq!(c.out_w(), 17);
            }
            _ => panic!("expected conv"),
        }
    }

    #[test]
    fn param_count_close_to_published() {
        let g = inception_v3();
        let mparams = g.total_params() as f64 / 1e6;
        assert!((20.0..26.0).contains(&mparams), "{mparams}");
    }
}
