//! Constructors for the nine benchmark architectures.
//!
//! Each function builds a [`ModelGraph`] with exact published shapes. The
//! attention models take sequence lengths as parameters (the paper varies
//! them per dataset); [`build`] applies the defaults used throughout the
//! evaluation.
//!
//! # Examples
//!
//! ```
//! use dysta_models::{zoo, ModelId};
//!
//! for id in ModelId::ALL {
//!     let graph = zoo::build(id);
//!     assert_eq!(graph.id(), id);
//!     assert!(graph.total_macs() > 0);
//! }
//! ```

mod cnn_util;
mod googlenet;
mod inception_v3;
mod mobilenet;
mod resnet;
mod ssd;
mod transformer;
mod vgg;

pub use googlenet::googlenet;
pub use inception_v3::inception_v3;
pub use mobilenet::mobilenet;
pub use resnet::resnet50;
pub use ssd::ssd300;
pub use transformer::{bart, bert, gpt2};
pub use vgg::vgg16;

use crate::{ModelGraph, ModelId};

/// Default BERT sequence length (SQuAD question answering).
pub const BERT_DEFAULT_SEQ: u32 = 384;
/// Default GPT-2 sequence length (GLUE-style inputs).
pub const GPT2_DEFAULT_SEQ: u32 = 128;
/// Default BART encoder/decoder sequence lengths (machine translation).
pub const BART_DEFAULT_SEQ: (u32, u32) = (256, 256);

/// Builds the graph for `id` with the default configuration used in the
/// paper's evaluation (224×224 images for classifiers, 300×300 for SSD,
/// 299×299 for Inception-V3, default sequence lengths for AttNNs).
pub fn build(id: ModelId) -> ModelGraph {
    match id {
        ModelId::Ssd => ssd300(),
        ModelId::ResNet50 => resnet50(),
        ModelId::Vgg16 => vgg16(),
        ModelId::MobileNet => mobilenet(),
        ModelId::GoogLeNet => googlenet(),
        ModelId::InceptionV3 => inception_v3(),
        ModelId::Bert => bert(BERT_DEFAULT_SEQ),
        ModelId::Gpt2 => gpt2(GPT2_DEFAULT_SEQ),
        ModelId::Bart => bart(BART_DEFAULT_SEQ.0, BART_DEFAULT_SEQ.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published dense-MAC figures (fused multiply-add counted once).
    /// Tolerances are loose enough to absorb head/pooling bookkeeping
    /// differences but tight enough to catch shape bugs.
    #[test]
    fn gmacs_match_published_figures() {
        let cases: [(ModelId, f64, f64); 6] = [
            (ModelId::ResNet50, 3.8, 4.4),    // ~4.1 GMACs
            (ModelId::Vgg16, 14.5, 16.5),     // ~15.5 GMACs
            (ModelId::MobileNet, 0.52, 0.62), // ~0.57 GMACs
            (ModelId::GoogLeNet, 1.3, 1.7),   // ~1.5 GMACs
            (ModelId::InceptionV3, 5.0, 6.2), // ~5.7 GMACs
            (ModelId::Ssd, 28.0, 36.0),       // ~31 GMACs (SSD300-VGG)
        ];
        for (id, lo, hi) in cases {
            let gmacs = build(id).total_macs() as f64 / 1e9;
            assert!(
                (lo..=hi).contains(&gmacs),
                "{id}: {gmacs:.2} GMACs outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn param_counts_match_published_figures() {
        let cases: [(ModelId, f64, f64); 4] = [
            (ModelId::ResNet50, 23.0, 27.0), // 25.5 M
            (ModelId::Vgg16, 132.0, 140.0),  // 138 M
            (ModelId::MobileNet, 3.6, 4.8),  // 4.2 M
            (ModelId::GoogLeNet, 5.5, 7.5),  // ~6.6 M (conv weights)
        ];
        for (id, lo, hi) in cases {
            let mparams = build(id).total_params() as f64 / 1e6;
            assert!(
                (lo..=hi).contains(&mparams),
                "{id}: {mparams:.2} M params outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn every_model_builds_and_validates() {
        for id in ModelId::ALL {
            let g = build(id);
            assert_eq!(g.id(), id);
            assert!(g.num_layers() >= 10, "{id} suspiciously small");
        }
    }

    #[test]
    fn cnns_have_relu_layers_attnns_have_attention() {
        for id in ModelId::ALL {
            let g = build(id);
            match id.family() {
                crate::ModelFamily::Cnn => {
                    assert!(!g.relu_layer_indices().is_empty(), "{id} has no ReLUs");
                    assert!(g.attention_layer_indices().is_empty());
                }
                crate::ModelFamily::AttNn => {
                    assert!(
                        !g.attention_layer_indices().is_empty(),
                        "{id} has no attention layers"
                    );
                }
            }
        }
    }
}
