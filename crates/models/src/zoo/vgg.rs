//! VGG-16 (Simonyan & Zisserman, ICLR 2015) for 224×224 inputs.

use super::cnn_util::{conv_relu, max_pool};
use crate::{Layer, LayerKind, Linear, ModelGraph, ModelId};

/// Builds VGG-16 with the standard 13-conv + 3-FC configuration
/// (~15.5 GMACs, 138 M parameters).
///
/// # Examples
///
/// ```
/// let g = dysta_models::zoo::vgg16();
/// assert_eq!(g.num_layers(), 21); // 13 convs + 5 pools + 3 FCs
/// ```
pub fn vgg16() -> ModelGraph {
    let mut layers = Vec::new();
    let mut size = 224;
    // (block, convs, in_ch, out_ch)
    let blocks: [(u32, u32, u32, u32); 5] = [
        (1, 2, 3, 64),
        (2, 2, 64, 128),
        (3, 3, 128, 256),
        (4, 3, 256, 512),
        (5, 3, 512, 512),
    ];
    for (block, convs, in_ch, out_ch) in blocks {
        let mut ch = in_ch;
        for i in 1..=convs {
            layers.push(conv_relu(
                &format!("conv{block}_{i}"),
                ch,
                out_ch,
                3,
                1,
                1,
                size,
            ));
            ch = out_ch;
        }
        layers.push(max_pool(&format!("pool{block}"), out_ch, 2, 2, size));
        size /= 2;
    }
    debug_assert_eq!(size, 7);
    let fc = |name: &str, in_f: u32, out_f: u32, relu: bool| {
        let l = Layer::new(
            name,
            LayerKind::Linear(Linear {
                in_features: in_f,
                out_features: out_f,
                tokens: 1,
            }),
        );
        if relu {
            l.with_relu()
        } else {
            l
        }
    };
    layers.push(fc("fc6", 512 * 7 * 7, 4096, true));
    layers.push(fc("fc7", 4096, 4096, true));
    layers.push(fc("fc8", 4096, 1000, false));
    ModelGraph::new(ModelId::Vgg16, layers).expect("vgg16 graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_dominated_by_conv5_under_conv4() {
        // Sanity-check the published per-layer structure: conv4_2 on 28x28
        // with 512 channels is one of the most expensive layers.
        let g = vgg16();
        let conv4_2 = g
            .layers()
            .iter()
            .find(|l| l.name() == "conv4_2")
            .expect("layer exists");
        assert_eq!(conv4_2.macs(), 28 * 28 * 512 * 512 * 9);
    }

    #[test]
    fn fc6_has_expected_fan_in() {
        let g = vgg16();
        let fc6 = g.layers().iter().find(|l| l.name() == "fc6").unwrap();
        assert_eq!(fc6.params(), 25088 * 4096);
        assert!(fc6.relu());
    }

    #[test]
    fn last_layer_is_classifier_without_relu() {
        let g = vgg16();
        let last = g.layers().last().unwrap();
        assert_eq!(last.name(), "fc8");
        assert!(!last.relu());
        assert_eq!(last.output_elements(), 1000);
    }
}
