//! MobileNet-V1 (Howard et al., 2017) for 224×224 inputs.

use super::cnn_util::{conv_relu, depthwise_relu, global_avg_pool};
use crate::{Layer, LayerKind, Linear, ModelGraph, ModelId};

/// Builds MobileNet-V1 (width multiplier 1.0): a 3×3 stem followed by 13
/// depthwise-separable blocks (~0.57 GMACs, 4.2 M parameters).
///
/// # Examples
///
/// ```
/// let g = dysta_models::zoo::mobilenet();
/// // 1 stem + 13 * (depthwise + pointwise) + pool + fc
/// assert_eq!(g.num_layers(), 1 + 26 + 2);
/// ```
pub fn mobilenet() -> ModelGraph {
    let mut layers = Vec::new();
    layers.push(conv_relu("conv0", 3, 32, 3, 2, 1, 224));

    // (in_ch, out_ch, stride) for the 13 separable blocks.
    let blocks: [(u32, u32, u32); 13] = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 2),
        (1024, 1024, 1),
    ];
    let mut size = 112;
    for (i, (in_ch, out_ch, stride)) in blocks.into_iter().enumerate() {
        layers.push(depthwise_relu(&format!("dw{}", i + 1), in_ch, stride, size));
        size /= stride;
        layers.push(conv_relu(
            &format!("pw{}", i + 1),
            in_ch,
            out_ch,
            1,
            1,
            0,
            size,
        ));
    }
    debug_assert_eq!(size, 7);

    layers.push(global_avg_pool("avgpool", 1024, 7));
    layers.push(Layer::new(
        "fc",
        LayerKind::Linear(Linear {
            in_features: 1024,
            out_features: 1000,
            tokens: 1,
        }),
    ));
    ModelGraph::new(ModelId::MobileNet, layers).expect("mobilenet graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn depthwise_layers_are_grouped() {
        let g = mobilenet();
        for l in g.layers().iter().filter(|l| l.name().starts_with("dw")) {
            match l.kind() {
                LayerKind::Conv2d(c) => assert!(c.is_depthwise(), "{}", l.name()),
                _ => panic!("expected conv"),
            }
        }
    }

    #[test]
    fn pointwise_macs_dominate() {
        // The published breakdown: ~95% of MACs in 1x1 convs.
        let g = mobilenet();
        let pw: u64 = g
            .layers()
            .iter()
            .filter(|l| l.name().starts_with("pw") || l.name() == "fc")
            .map(|l| l.macs())
            .sum();
        let total = g.total_macs();
        assert!(pw as f64 / total as f64 > 0.9);
    }

    #[test]
    fn final_feature_map_is_7x7x1024() {
        let g = mobilenet();
        let pw13 = g.layers().iter().find(|l| l.name() == "pw13").unwrap();
        assert_eq!(pw13.output_elements(), 7 * 7 * 1024);
    }
}
