//! SSD300 with VGG-16 backbone (Liu et al., ECCV 2016), 300×300 inputs.

use super::cnn_util::{conv_plain, conv_relu, max_pool};
use crate::{ModelGraph, ModelId};

/// Number of object classes (COCO: 80 + background), as used by the paper's
/// object-detection and hand-detection tasks.
const NUM_CLASSES: u32 = 81;

/// Builds SSD300: truncated VGG-16 backbone, fc6/fc7 converted to
/// convolutions, four extra feature stages, and per-scale localisation +
/// classification heads (~31 GMACs dense).
///
/// # Examples
///
/// ```
/// let g = dysta_models::zoo::ssd300();
/// assert!(g.layers().iter().any(|l| l.name() == "conv6"));
/// assert!(g.layers().iter().any(|l| l.name() == "head_conf_0"));
/// ```
pub fn ssd300() -> ModelGraph {
    let mut layers = Vec::new();

    // VGG-16 backbone on a 300x300 input; spatial sizes 300→150→75→38→19.
    let mut size = 300;
    let blocks: [(u32, u32, u32, u32); 4] = [
        (1, 2, 3, 64),
        (2, 2, 64, 128),
        (3, 3, 128, 256),
        (4, 3, 256, 512),
    ];
    for (block, convs, in_ch, out_ch) in blocks {
        let mut ch = in_ch;
        for i in 1..=convs {
            layers.push(conv_relu(
                &format!("conv{block}_{i}"),
                ch,
                out_ch,
                3,
                1,
                1,
                size,
            ));
            ch = out_ch;
        }
        // SSD uses ceil-mode pooling on block 3 (75 -> 38).
        layers.push(max_pool(
            &format!("pool{block}"),
            out_ch,
            2,
            2,
            size + size % 2,
        ));
        size = size.div_ceil(2);
    }
    debug_assert_eq!(size, 19);
    for i in 1..=3 {
        layers.push(conv_relu(&format!("conv5_{i}"), 512, 512, 3, 1, 1, 19));
    }

    // conv4_3 is a detection source at 38x38; pool5 is 3x3 stride 1.
    layers.push(max_pool("pool5", 512, 3, 1, 21)); // stays 19x19
                                                   // fc6 converted to dilated 3x3 conv (modelled as same-size 3x3).
    layers.push(conv_relu("conv6", 512, 1024, 3, 1, 1, 19));
    layers.push(conv_relu("conv7", 1024, 1024, 1, 1, 0, 19));

    // Extra feature layers: 19→10→5→3→1.
    layers.push(conv_relu("conv8_1", 1024, 256, 1, 1, 0, 19));
    layers.push(conv_relu("conv8_2", 256, 512, 3, 2, 1, 19)); // 10
    layers.push(conv_relu("conv9_1", 512, 128, 1, 1, 0, 10));
    layers.push(conv_relu("conv9_2", 128, 256, 3, 2, 1, 10)); // 5
    layers.push(conv_relu("conv10_1", 256, 128, 1, 1, 0, 5));
    layers.push(conv_relu("conv10_2", 128, 256, 3, 1, 0, 5)); // 3
    layers.push(conv_relu("conv11_1", 256, 128, 1, 1, 0, 3));
    layers.push(conv_relu("conv11_2", 128, 256, 3, 1, 0, 3)); // 1

    // Multibox heads: (source size, channels, default boxes per location).
    let sources: [(u32, u32, u32); 6] = [
        (38, 512, 4),
        (19, 1024, 6),
        (10, 512, 6),
        (5, 256, 6),
        (3, 256, 4),
        (1, 256, 4),
    ];
    for (i, (fm, ch, boxes)) in sources.into_iter().enumerate() {
        layers.push(conv_plain(
            &format!("head_loc_{i}"),
            ch,
            boxes * 4,
            3,
            1,
            1,
            fm,
        ));
        layers.push(conv_plain(
            &format!("head_conf_{i}"),
            ch,
            boxes * NUM_CLASSES,
            3,
            1,
            1,
            fm,
        ));
    }

    ModelGraph::new(ModelId::Ssd, layers).expect("ssd300 graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backbone_reaches_19x19() {
        let g = ssd300();
        let conv7 = g.layers().iter().find(|l| l.name() == "conv7").unwrap();
        assert_eq!(conv7.output_elements(), 19 * 19 * 1024);
    }

    #[test]
    fn extras_shrink_to_1x1() {
        let g = ssd300();
        let conv11_2 = g.layers().iter().find(|l| l.name() == "conv11_2").unwrap();
        assert_eq!(conv11_2.output_elements(), 256);
    }

    #[test]
    fn six_detection_scales() {
        let g = ssd300();
        let heads = g
            .layers()
            .iter()
            .filter(|l| l.name().starts_with("head_loc"))
            .count();
        assert_eq!(heads, 6);
    }

    #[test]
    fn heads_have_no_relu() {
        let g = ssd300();
        for l in g.layers().iter().filter(|l| l.name().starts_with("head_")) {
            assert!(!l.relu(), "{}", l.name());
        }
    }
}
