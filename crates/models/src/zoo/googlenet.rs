//! GoogLeNet / Inception-V1 (Szegedy et al., CVPR 2015) for 224×224 inputs.

use super::cnn_util::{conv_relu, global_avg_pool, max_pool};
use crate::{Layer, LayerKind, Linear, ModelGraph, ModelId};

/// Filter configuration of one inception module:
/// `(n1x1, n3x3_reduce, n3x3, n5x5_reduce, n5x5, pool_proj)`.
type InceptionCfg = (u32, u32, u32, u32, u32, u32);

fn inception(layers: &mut Vec<Layer>, name: &str, in_ch: u32, cfg: InceptionCfg, size: u32) -> u32 {
    let (n1, r3, n3, r5, n5, pp) = cfg;
    layers.push(conv_relu(&format!("{name}_1x1"), in_ch, n1, 1, 1, 0, size));
    layers.push(conv_relu(&format!("{name}_3x3r"), in_ch, r3, 1, 1, 0, size));
    layers.push(conv_relu(&format!("{name}_3x3"), r3, n3, 3, 1, 1, size));
    layers.push(conv_relu(&format!("{name}_5x5r"), in_ch, r5, 1, 1, 0, size));
    layers.push(conv_relu(&format!("{name}_5x5"), r5, n5, 5, 1, 2, size));
    layers.push(conv_relu(&format!("{name}_pp"), in_ch, pp, 1, 1, 0, size));
    n1 + n3 + n5 + pp
}

/// Builds GoogLeNet: stem + 9 inception modules + classifier
/// (~1.5 GMACs, ~6.6 M conv/FC parameters).
///
/// Used for the Table 2 network-sparsity profiling.
///
/// # Examples
///
/// ```
/// let g = dysta_models::zoo::googlenet();
/// assert!(g.num_layers() > 50);
/// ```
#[allow(clippy::vec_init_then_push)]
pub fn googlenet() -> ModelGraph {
    let mut layers = Vec::new();
    layers.push(conv_relu("conv1", 3, 64, 7, 2, 3, 224));
    layers.push(max_pool("pool1", 64, 3, 2, 112));
    layers.push(conv_relu("conv2r", 64, 64, 1, 1, 0, 56));
    layers.push(conv_relu("conv2", 64, 192, 3, 1, 1, 56));
    layers.push(max_pool("pool2", 192, 3, 2, 56));

    let mut ch = 192;
    ch = inception(&mut layers, "i3a", ch, (64, 96, 128, 16, 32, 32), 28);
    ch = inception(&mut layers, "i3b", ch, (128, 128, 192, 32, 96, 64), 28);
    layers.push(max_pool("pool3", ch, 3, 2, 28));
    ch = inception(&mut layers, "i4a", ch, (192, 96, 208, 16, 48, 64), 14);
    ch = inception(&mut layers, "i4b", ch, (160, 112, 224, 24, 64, 64), 14);
    ch = inception(&mut layers, "i4c", ch, (128, 128, 256, 24, 64, 64), 14);
    ch = inception(&mut layers, "i4d", ch, (112, 144, 288, 32, 64, 64), 14);
    ch = inception(&mut layers, "i4e", ch, (256, 160, 320, 32, 128, 128), 14);
    layers.push(max_pool("pool4", ch, 3, 2, 14));
    ch = inception(&mut layers, "i5a", ch, (256, 160, 320, 32, 128, 128), 7);
    ch = inception(&mut layers, "i5b", ch, (384, 192, 384, 48, 128, 128), 7);
    debug_assert_eq!(ch, 1024);

    layers.push(global_avg_pool("avgpool", 1024, 7));
    layers.push(Layer::new(
        "fc",
        LayerKind::Linear(Linear {
            in_features: 1024,
            out_features: 1000,
            tokens: 1,
        }),
    ));
    ModelGraph::new(ModelId::GoogLeNet, layers).expect("googlenet graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accounting_reaches_1024() {
        // Covered by the debug_assert; re-check the final pointwise output.
        let g = googlenet();
        let i5b_pp = g.layers().iter().find(|l| l.name() == "i5b_pp").unwrap();
        assert_eq!(i5b_pp.output_elements(), 7 * 7 * 128);
    }

    #[test]
    fn nine_inception_modules() {
        let g = googlenet();
        let modules: std::collections::HashSet<&str> = g
            .layers()
            .iter()
            .filter(|l| l.name().starts_with('i'))
            .map(|l| l.name().split('_').next().unwrap())
            .collect();
        assert_eq!(modules.len(), 9);
    }

    #[test]
    fn i3a_output_channels() {
        // 64 + 128 + 32 + 32 = 256 feeds i3b's 256-in branches.
        let g = googlenet();
        let i3b_1x1 = g.layers().iter().find(|l| l.name() == "i3b_1x1").unwrap();
        match i3b_1x1.kind() {
            crate::LayerKind::Conv2d(c) => assert_eq!(c.in_channels, 256),
            _ => panic!("expected conv"),
        }
    }
}
