//! ResNet-50 (He et al., CVPR 2016) for 224×224 inputs.

use super::cnn_util::{conv_plain, conv_relu, global_avg_pool, max_pool};
use crate::{Layer, LayerKind, Linear, ModelGraph, ModelId};

/// Builds ResNet-50: conv1 + 4 stages of [3, 4, 6, 3] bottleneck blocks +
/// global average pool + 1000-way classifier (~4.1 GMACs, 25.5 M params).
///
/// Shortcut projection convolutions are included (they execute on the
/// accelerator like any other layer); element-wise residual additions are
/// not, as they contribute no MACs.
///
/// # Examples
///
/// ```
/// let g = dysta_models::zoo::resnet50();
/// // 1 stem + 16 blocks x 3 convs + 4 projections + 1 classifier = 54
/// assert_eq!(g.layers().iter().filter(|l| l.params() > 0).count(), 54);
/// ```
pub fn resnet50() -> ModelGraph {
    let mut layers = Vec::new();
    layers.push(conv_relu("conv1", 3, 64, 7, 2, 3, 224));
    layers.push(max_pool("maxpool", 64, 3, 2, 112));

    // (stage index, blocks, bottleneck width, input size)
    let stages: [(u32, u32, u32, u32); 4] = [
        (1, 3, 64, 56),
        (2, 4, 128, 56),
        (3, 6, 256, 28),
        (4, 3, 512, 14),
    ];
    let mut in_ch = 64;
    for (stage, blocks, width, mut size) in stages {
        let out_ch = width * 4;
        for block in 0..blocks {
            // First block of stages 2-4 downsamples spatially.
            let stride = if block == 0 && stage > 1 { 2 } else { 1 };
            let prefix = format!("s{stage}b{block}");
            layers.push(conv_relu(
                &format!("{prefix}_conv1"),
                in_ch,
                width,
                1,
                1,
                0,
                size,
            ));
            layers.push(conv_relu(
                &format!("{prefix}_conv2"),
                width,
                width,
                3,
                stride,
                1,
                size,
            ));
            let post = size / stride;
            layers.push(conv_relu(
                &format!("{prefix}_conv3"),
                width,
                out_ch,
                1,
                1,
                0,
                post,
            ));
            if block == 0 {
                layers.push(conv_plain(
                    &format!("{prefix}_proj"),
                    in_ch,
                    out_ch,
                    1,
                    stride,
                    0,
                    size,
                ));
            }
            in_ch = out_ch;
            size = post;
        }
    }

    layers.push(global_avg_pool("avgpool", 2048, 7));
    layers.push(Layer::new(
        "fc",
        LayerKind::Linear(Linear {
            in_features: 2048,
            out_features: 1000,
            tokens: 1,
        }),
    ));
    ModelGraph::new(ModelId::ResNet50, layers).expect("resnet50 graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts_match_3463() {
        let g = resnet50();
        for (stage, expected) in [(1u32, 3usize), (2, 4), (3, 6), (4, 3)] {
            let blocks = g
                .layers()
                .iter()
                .filter(|l| {
                    l.name().starts_with(&format!("s{stage}b")) && l.name().ends_with("conv1")
                })
                .count();
            assert_eq!(blocks, expected, "stage {stage}");
        }
    }

    #[test]
    fn projection_only_in_first_block_of_each_stage() {
        let g = resnet50();
        let projs: Vec<&str> = g
            .layers()
            .iter()
            .filter(|l| l.name().ends_with("_proj"))
            .map(|l| l.name())
            .collect();
        assert_eq!(projs, ["s1b0_proj", "s2b0_proj", "s3b0_proj", "s4b0_proj"]);
    }

    #[test]
    fn downsampling_halves_spatial_size() {
        let g = resnet50();
        let s2 = g
            .layers()
            .iter()
            .find(|l| l.name() == "s2b0_conv2")
            .unwrap();
        match s2.kind() {
            crate::LayerKind::Conv2d(c) => {
                assert_eq!(c.stride, 2);
                assert_eq!(c.out_size(), 28);
            }
            _ => panic!("expected conv"),
        }
    }

    #[test]
    fn classifier_head_shape() {
        let g = resnet50();
        let fc = g.layers().last().unwrap();
        assert_eq!(fc.params(), 2048 * 1000);
        assert_eq!(fc.macs(), 2048 * 1000);
    }
}
