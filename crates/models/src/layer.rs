//! Layer descriptions and arithmetic-cost accounting.
//!
//! Every layer knows its exact output shape, MAC count and parameter count.
//! These are the quantities the accelerator performance models (and hence
//! the schedulers) consume; no trained weights are required.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 2-D convolution (grouped, depthwise and asymmetric kernels supported).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: u32,
    /// Output channels.
    pub out_channels: u32,
    /// Kernel height.
    pub kernel_h: u32,
    /// Kernel width.
    pub kernel_w: u32,
    /// Stride (same in both spatial dimensions).
    pub stride: u32,
    /// Zero padding along the height dimension.
    pub padding_h: u32,
    /// Zero padding along the width dimension.
    pub padding_w: u32,
    /// Number of groups; `groups == in_channels == out_channels` is a
    /// depthwise convolution.
    pub groups: u32,
    /// Input spatial size (square feature map edge length).
    pub in_size: u32,
}

impl Conv2d {
    /// Convenience constructor for the common square-kernel case.
    pub fn square(
        in_channels: u32,
        out_channels: u32,
        kernel: u32,
        stride: u32,
        padding: u32,
        in_size: u32,
    ) -> Self {
        Conv2d {
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding_h: padding,
            padding_w: padding,
            groups: 1,
            in_size,
        }
    }

    /// Output height after this convolution.
    pub fn out_h(&self) -> u32 {
        (self.in_size + 2 * self.padding_h).saturating_sub(self.kernel_h) / self.stride + 1
    }

    /// Output width after this convolution.
    pub fn out_w(&self) -> u32 {
        (self.in_size + 2 * self.padding_w).saturating_sub(self.kernel_w) / self.stride + 1
    }

    /// Output spatial edge length; meaningful when the output stays square
    /// (which holds for every layer in the benchmark zoo).
    pub fn out_size(&self) -> u32 {
        self.out_h()
    }

    /// Dense multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.out_h() as u64
            * self.out_w() as u64
            * self.out_channels as u64
            * (self.in_channels as u64 / self.groups as u64)
            * self.kernel_h as u64
            * self.kernel_w as u64
    }

    /// Weight parameter count (bias ignored, as in the paper's profiling).
    pub fn params(&self) -> u64 {
        self.out_channels as u64
            * (self.in_channels as u64 / self.groups as u64)
            * self.kernel_h as u64
            * self.kernel_w as u64
    }

    /// Number of output activation elements.
    pub fn output_elements(&self) -> u64 {
        self.out_h() as u64 * self.out_w() as u64 * self.out_channels as u64
    }

    /// True if this is a depthwise convolution.
    pub fn is_depthwise(&self) -> bool {
        self.groups == self.in_channels && self.groups == self.out_channels
    }
}

/// A fully-connected layer, optionally applied per token of a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Linear {
    /// Input features.
    pub in_features: u32,
    /// Output features.
    pub out_features: u32,
    /// How many positions the layer is applied to (1 for CNN classifier
    /// heads, the sequence length for transformer projections).
    pub tokens: u32,
}

impl Linear {
    /// Dense multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.tokens as u64 * self.in_features as u64 * self.out_features as u64
    }

    /// Weight parameter count.
    pub fn params(&self) -> u64 {
        self.in_features as u64 * self.out_features as u64
    }

    /// Number of output activation elements.
    pub fn output_elements(&self) -> u64 {
        self.tokens as u64 * self.out_features as u64
    }
}

/// Multi-head attention score (`Q·Kᵀ`) or context (`A·V`) computation.
///
/// These are the layers whose work shrinks under *dynamic attention
/// sparsity* (the paper's Section 2.3.1): when a fraction of the attention
/// matrix is pruned, a proportional fraction of the MACs is skipped by
/// accelerators such as Sanger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attention {
    /// Number of attention heads.
    pub heads: u32,
    /// Per-head feature dimension.
    pub head_dim: u32,
    /// Query sequence length.
    pub q_len: u32,
    /// Key/value sequence length (differs from `q_len` in cross-attention).
    pub kv_len: u32,
}

impl Attention {
    /// Dense multiply-accumulate operations of one score or context matmul.
    pub fn macs(&self) -> u64 {
        self.heads as u64 * self.q_len as u64 * self.kv_len as u64 * self.head_dim as u64
    }

    /// Elements of the attention matrix (`heads × q_len × kv_len`); the
    /// quantity monitored by the hardware sparsity monitor.
    pub fn attention_elements(&self) -> u64 {
        self.heads as u64 * self.q_len as u64 * self.kv_len as u64
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling (including global average pooling).
    Avg,
}

/// A pooling layer. Contributes no MACs but changes the spatial size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool {
    /// Max or average.
    pub kind: PoolKind,
    /// Channels (unchanged by pooling).
    pub channels: u32,
    /// Kernel size.
    pub kernel: u32,
    /// Stride.
    pub stride: u32,
    /// Input spatial edge length.
    pub in_size: u32,
}

impl Pool {
    /// Output spatial edge length.
    pub fn out_size(&self) -> u32 {
        if self.kernel >= self.in_size {
            1
        } else {
            (self.in_size - self.kernel) / self.stride + 1
        }
    }

    /// Number of output activation elements.
    pub fn output_elements(&self) -> u64 {
        let out = self.out_size() as u64;
        out * out * self.channels as u64
    }
}

/// The operation performed by a [`Layer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully-connected / projection layer.
    Linear(Linear),
    /// Attention score computation (`Q·Kᵀ`), dynamically sparse.
    AttentionScore(Attention),
    /// Attention context computation (`A·V`), dynamically sparse.
    AttentionContext(Attention),
    /// Pooling.
    Pool(Pool),
}

impl LayerKind {
    /// Dense multiply-accumulate operations of this layer.
    pub fn macs(&self) -> u64 {
        match self {
            LayerKind::Conv2d(c) => c.macs(),
            LayerKind::Linear(l) => l.macs(),
            LayerKind::AttentionScore(a) | LayerKind::AttentionContext(a) => a.macs(),
            LayerKind::Pool(_) => 0,
        }
    }

    /// Weight parameter count of this layer.
    pub fn params(&self) -> u64 {
        match self {
            LayerKind::Conv2d(c) => c.params(),
            LayerKind::Linear(l) => l.params(),
            LayerKind::AttentionScore(_) | LayerKind::AttentionContext(_) => 0,
            LayerKind::Pool(_) => 0,
        }
    }

    /// Number of output activation elements.
    pub fn output_elements(&self) -> u64 {
        match self {
            LayerKind::Conv2d(c) => c.output_elements(),
            LayerKind::Linear(l) => l.output_elements(),
            LayerKind::AttentionScore(a) => a.attention_elements(),
            LayerKind::AttentionContext(a) => a.heads as u64 * a.q_len as u64 * a.head_dim as u64,
            LayerKind::Pool(p) => p.output_elements(),
        }
    }

    /// True for the attention matmuls whose work scales with dynamic
    /// attention sparsity.
    pub fn is_dynamic_attention(&self) -> bool {
        matches!(
            self,
            LayerKind::AttentionScore(_) | LayerKind::AttentionContext(_)
        )
    }
}

/// One layer of a [`crate::ModelGraph`].
///
/// # Examples
///
/// ```
/// use dysta_models::{Conv2d, Layer, LayerKind};
///
/// let conv = Layer::new(
///     "conv1",
///     LayerKind::Conv2d(Conv2d::square(3, 64, 7, 2, 3, 224)),
/// )
/// .with_relu();
/// assert!(conv.relu());
/// assert_eq!(conv.macs(), 112 * 112 * 64 * 3 * 7 * 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    relu: bool,
}

impl Layer {
    /// Creates a layer with the given name and operation, without a ReLU.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
            relu: false,
        }
    }

    /// Marks the layer as followed by a ReLU activation.
    ///
    /// ReLU outputs regularly contain zeros, which is the paper's main
    /// source of *dynamic activation sparsity* in CNNs (Section 2.3.1).
    pub fn with_relu(mut self) -> Self {
        self.relu = true;
        self
    }

    /// The layer's human-readable name (unique within its graph).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation performed by this layer.
    pub fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// Whether a ReLU follows this layer.
    pub fn relu(&self) -> bool {
        self.relu
    }

    /// Dense multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.kind.macs()
    }

    /// Weight parameter count.
    pub fn params(&self) -> u64 {
        self.kind.params()
    }

    /// Number of output activation elements.
    pub fn output_elements(&self) -> u64 {
        self.kind.output_elements()
    }

    /// True for attention matmuls subject to dynamic attention sparsity.
    pub fn is_dynamic_attention(&self) -> bool {
        self.kind.is_dynamic_attention()
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.2} MMACs)", self.name, self.macs() as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(in_ch: u32, out_ch: u32, k: u32, s: u32, p: u32, size: u32) -> Conv2d {
        Conv2d::square(in_ch, out_ch, k, s, p, size)
    }

    #[test]
    fn conv_output_size_standard_cases() {
        // 3x3 stride-1 pad-1 preserves size.
        assert_eq!(conv(64, 64, 3, 1, 1, 56).out_size(), 56);
        // 7x7 stride-2 pad-3 halves 224 -> 112.
        assert_eq!(conv(3, 64, 7, 2, 3, 224).out_size(), 112);
        // 1x1 stride-2 halves.
        assert_eq!(conv(256, 512, 1, 2, 0, 56).out_size(), 28);
    }

    #[test]
    fn conv_macs_match_formula() {
        let c = conv(3, 64, 7, 2, 3, 224);
        assert_eq!(c.macs(), 112 * 112 * 64 * 3 * 7 * 7);
        assert_eq!(c.params(), 64 * 3 * 7 * 7);
    }

    #[test]
    fn depthwise_conv_divides_by_groups() {
        let dw = Conv2d {
            groups: 32,
            ..Conv2d::square(32, 32, 3, 1, 1, 112)
        };
        assert!(dw.is_depthwise());
        assert_eq!(dw.macs(), 112 * 112 * 32 * 3 * 3);
    }

    #[test]
    fn linear_macs() {
        let l = Linear {
            in_features: 2048,
            out_features: 1000,
            tokens: 1,
        };
        assert_eq!(l.macs(), 2048 * 1000);
        assert_eq!(l.output_elements(), 1000);
    }

    #[test]
    fn attention_macs_scale_with_seq() {
        let a = Attention {
            heads: 12,
            head_dim: 64,
            q_len: 384,
            kv_len: 384,
        };
        assert_eq!(a.macs(), 12 * 384 * 384 * 64);
        assert_eq!(a.attention_elements(), 12 * 384 * 384);
    }

    #[test]
    fn pool_has_no_macs() {
        let p = LayerKind::Pool(Pool {
            kind: PoolKind::Max,
            channels: 64,
            kernel: 2,
            stride: 2,
            in_size: 112,
        });
        assert_eq!(p.macs(), 0);
        assert_eq!(p.output_elements(), 56 * 56 * 64);
    }

    #[test]
    fn global_pool_collapses_to_one() {
        let p = Pool {
            kind: PoolKind::Avg,
            channels: 2048,
            kernel: 7,
            stride: 1,
            in_size: 7,
        };
        assert_eq!(p.out_size(), 1);
        assert_eq!(p.output_elements(), 2048);
    }

    #[test]
    fn dynamic_attention_flag() {
        let a = Attention {
            heads: 12,
            head_dim: 64,
            q_len: 128,
            kv_len: 128,
        };
        assert!(LayerKind::AttentionScore(a).is_dynamic_attention());
        assert!(LayerKind::AttentionContext(a).is_dynamic_attention());
        assert!(!LayerKind::Linear(Linear {
            in_features: 768,
            out_features: 768,
            tokens: 128
        })
        .is_dynamic_attention());
    }

    #[test]
    fn layer_display_mentions_name() {
        let l = Layer::new(
            "fc",
            LayerKind::Linear(Linear {
                in_features: 4096,
                out_features: 1000,
                tokens: 1,
            }),
        );
        assert!(l.to_string().contains("fc"));
    }
}
