//! Whole-model layer graphs.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Layer, ModelFamily, ModelId};

/// An ordered layer graph describing one benchmark model.
///
/// The paper's schedulers operate on layer-wise execution: the accelerator
/// runs one layer at a time and the scheduler is consulted at layer
/// boundaries. A `ModelGraph` captures everything those components need:
/// the per-layer shapes and costs, in execution order.
///
/// # Examples
///
/// ```
/// use dysta_models::zoo;
///
/// let bert = zoo::bert(384);
/// assert!(bert.num_layers() > 0);
/// let attn_layers = bert.layers().iter().filter(|l| l.is_dynamic_attention()).count();
/// assert_eq!(attn_layers, 24); // 12 blocks x (score + context)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    id: ModelId,
    layers: Vec<Layer>,
}

impl ModelGraph {
    /// Builds a graph from an ordered list of layers.
    ///
    /// # Errors
    ///
    /// Returns [`GraphValidationError`] if the layer list is empty or two
    /// layers share a name.
    pub fn new(id: ModelId, layers: Vec<Layer>) -> Result<Self, GraphValidationError> {
        if layers.is_empty() {
            return Err(GraphValidationError::Empty { id });
        }
        let mut names = std::collections::HashSet::new();
        for layer in &layers {
            if !names.insert(layer.name().to_owned()) {
                return Err(GraphValidationError::DuplicateLayerName {
                    id,
                    name: layer.name().to_owned(),
                });
            }
        }
        Ok(ModelGraph { id, layers })
    }

    /// The model identifier.
    pub fn id(&self) -> ModelId {
        self.id
    }

    /// The model family (CNN or AttNN).
    pub fn family(&self) -> ModelFamily {
        self.id.family()
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer at `index`, if any.
    pub fn layer(&self, index: usize) -> Option<&Layer> {
        self.layers.get(index)
    }

    /// Total dense MAC operations across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total weight parameters across all layers.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Iterator over `(index, layer)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Layer)> {
        self.layers.iter().enumerate()
    }

    /// Indices of layers followed by a ReLU (dynamic activation-sparsity
    /// sources in CNNs).
    pub fn relu_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.relu())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of dynamically sparse attention matmuls.
    pub fn attention_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_dynamic_attention())
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for ModelGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} layers, {:.2} GMACs, {:.1} M params",
            self.id,
            self.num_layers(),
            self.total_macs() as f64 / 1e9,
            self.total_params() as f64 / 1e6
        )
    }
}

/// Error returned by [`ModelGraph::new`] for malformed layer lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphValidationError {
    /// The layer list was empty.
    Empty {
        /// Model the graph was being built for.
        id: ModelId,
    },
    /// Two layers shared a name.
    DuplicateLayerName {
        /// Model the graph was being built for.
        id: ModelId,
        /// The offending duplicate name.
        name: String,
    },
}

impl fmt::Display for GraphValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphValidationError::Empty { id } => {
                write!(f, "model {id} has no layers")
            }
            GraphValidationError::DuplicateLayerName { id, name } => {
                write!(f, "model {id} has duplicate layer name `{name}`")
            }
        }
    }
}

impl std::error::Error for GraphValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerKind, Linear};

    fn linear_layer(name: &str) -> Layer {
        Layer::new(
            name,
            LayerKind::Linear(Linear {
                in_features: 8,
                out_features: 8,
                tokens: 1,
            }),
        )
    }

    #[test]
    fn rejects_empty_graph() {
        let err = ModelGraph::new(ModelId::Vgg16, vec![]).unwrap_err();
        assert_eq!(err, GraphValidationError::Empty { id: ModelId::Vgg16 });
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = ModelGraph::new(ModelId::Vgg16, vec![linear_layer("a"), linear_layer("a")])
            .unwrap_err();
        assert!(matches!(
            err,
            GraphValidationError::DuplicateLayerName { ref name, .. } if name == "a"
        ));
        assert!(err.to_string().contains('a'));
    }

    #[test]
    fn totals_sum_layers() {
        let g =
            ModelGraph::new(ModelId::Vgg16, vec![linear_layer("a"), linear_layer("b")]).unwrap();
        assert_eq!(g.total_macs(), 2 * 64);
        assert_eq!(g.total_params(), 2 * 64);
        assert_eq!(g.num_layers(), 2);
    }

    #[test]
    fn relu_indices() {
        let g = ModelGraph::new(
            ModelId::Vgg16,
            vec![linear_layer("a").with_relu(), linear_layer("b")],
        )
        .unwrap();
        assert_eq!(g.relu_layer_indices(), vec![0]);
    }

    #[test]
    fn display_includes_id() {
        let g = ModelGraph::new(ModelId::MobileNet, vec![linear_layer("a")]).unwrap();
        assert!(g.to_string().contains("mobilenet"));
    }
}
