//! Identifiers for benchmark models and model families.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The nine benchmark architectures used throughout the paper.
///
/// Table 3 lists the scheduling-benchmark models (SSD, ResNet-50, VGG-16,
/// MobileNet, BERT, BART, GPT-2); Table 2 additionally profiles GoogLeNet
/// and Inception-V3 for network-sparsity range.
///
/// # Examples
///
/// ```
/// use dysta_models::{ModelFamily, ModelId};
///
/// assert_eq!(ModelId::Bert.family(), ModelFamily::AttNn);
/// assert_eq!("resnet50".parse::<ModelId>(), Ok(ModelId::ResNet50));
/// assert_eq!(ModelId::Vgg16.to_string(), "vgg16");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ModelId {
    Ssd,
    ResNet50,
    Vgg16,
    MobileNet,
    GoogLeNet,
    InceptionV3,
    Bert,
    Gpt2,
    Bart,
}

impl ModelId {
    /// All benchmark models, in a stable order.
    pub const ALL: [ModelId; 9] = [
        ModelId::Ssd,
        ModelId::ResNet50,
        ModelId::Vgg16,
        ModelId::MobileNet,
        ModelId::GoogLeNet,
        ModelId::InceptionV3,
        ModelId::Bert,
        ModelId::Gpt2,
        ModelId::Bart,
    ];

    /// The CNN models used in the multi-CNN scheduling workloads
    /// (visual perception + hand tracking, Table 3).
    pub const MULTI_CNN: [ModelId; 4] = [
        ModelId::Ssd,
        ModelId::ResNet50,
        ModelId::Vgg16,
        ModelId::MobileNet,
    ];

    /// The attention models used in the multi-AttNN scheduling workloads
    /// (personal assistant, Table 3).
    pub const MULTI_ATTNN: [ModelId; 3] = [ModelId::Bert, ModelId::Bart, ModelId::Gpt2];

    /// Which family (CNN or attention NN) this model belongs to.
    pub fn family(self) -> ModelFamily {
        match self {
            ModelId::Ssd
            | ModelId::ResNet50
            | ModelId::Vgg16
            | ModelId::MobileNet
            | ModelId::GoogLeNet
            | ModelId::InceptionV3 => ModelFamily::Cnn,
            ModelId::Bert | ModelId::Gpt2 | ModelId::Bart => ModelFamily::AttNn,
        }
    }

    /// Lower-case canonical name, identical to the [`fmt::Display`] output.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelId::Ssd => "ssd",
            ModelId::ResNet50 => "resnet50",
            ModelId::Vgg16 => "vgg16",
            ModelId::MobileNet => "mobilenet",
            ModelId::GoogLeNet => "googlenet",
            ModelId::InceptionV3 => "inceptionv3",
            ModelId::Bert => "bert",
            ModelId::Gpt2 => "gpt2",
            ModelId::Bart => "bart",
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing a [`ModelId`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelIdError {
    input: String,
}

impl ParseModelIdError {
    /// The rejected input string.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseModelIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown model id `{}`", self.input)
    }
}

impl std::error::Error for ParseModelIdError {}

impl FromStr for ModelId {
    type Err = ParseModelIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        ModelId::ALL
            .iter()
            .copied()
            .find(|m| m.as_str() == lower)
            .ok_or(ParseModelIdError {
                input: s.to_owned(),
            })
    }
}

/// The two model families distinguished by the paper.
///
/// CNNs exhibit ReLU-induced activation sparsity and static weight-sparsity
/// patterns; attention NNs exhibit input-dependent dynamic attention
/// sparsity. The two families also target different accelerators
/// (Eyeriss-V2 vs Sanger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Convolutional neural networks (vision tasks).
    Cnn,
    /// Attention-based neural networks (NLP tasks).
    AttNn,
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelFamily::Cnn => f.write_str("CNN"),
            ModelFamily::AttNn => f.write_str("AttNN"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_display_fromstr() {
        for id in ModelId::ALL {
            let parsed: ModelId = id.to_string().parse().expect("roundtrip");
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("ReSNet50".parse::<ModelId>(), Ok(ModelId::ResNet50));
        assert_eq!("BERT".parse::<ModelId>(), Ok(ModelId::Bert));
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "alexnet".parse::<ModelId>().unwrap_err();
        assert_eq!(err.input(), "alexnet");
        assert!(err.to_string().contains("alexnet"));
    }

    #[test]
    fn families_match_paper_taxonomy() {
        for id in ModelId::MULTI_CNN {
            assert_eq!(id.family(), ModelFamily::Cnn);
        }
        for id in ModelId::MULTI_ATTNN {
            assert_eq!(id.family(), ModelFamily::AttNn);
        }
    }

    #[test]
    fn all_contains_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for id in ModelId::ALL {
            assert!(seen.insert(id), "duplicate model id {id}");
        }
    }
}
