//! DNN layer-graph model zoo for the Sparse-DySta benchmark.
//!
//! The Sparse-DySta paper (MICRO 2023) evaluates multi-DNN scheduling on a
//! benchmark of nine architectures (Table 3 and Table 2 of the paper):
//! four vision CNNs (SSD, ResNet-50, VGG-16, MobileNet), two profiling-only
//! CNNs (GoogLeNet, Inception-V3), and three attention NNs (BERT, GPT-2,
//! BART). Scheduling decisions depend only on per-layer *work* — tensor
//! shapes, multiply-accumulate (MAC) counts, parameter counts — together
//! with sparsity information, never on trained weights. This crate therefore
//! describes each model as a [`ModelGraph`]: an ordered list of [`Layer`]s
//! with exact shapes and arithmetic-cost accounting.
//!
//! # Examples
//!
//! ```
//! use dysta_models::{zoo, ModelFamily};
//!
//! let resnet = zoo::resnet50();
//! assert_eq!(resnet.family(), ModelFamily::Cnn);
//! // ~4.1 GMACs for a 224x224 input, matching the published figure.
//! let gmacs = resnet.total_macs() as f64 / 1e9;
//! assert!((3.8..4.4).contains(&gmacs));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod id;
mod layer;
pub mod zoo;

pub use graph::{GraphValidationError, ModelGraph};
pub use id::{ModelFamily, ModelId, ParseModelIdError};
pub use layer::{Attention, Conv2d, Layer, LayerKind, Linear, Pool, PoolKind};
