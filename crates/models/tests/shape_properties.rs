//! Property-based tests on layer shape and cost accounting.

use proptest::prelude::*;

use dysta_models::{Attention, Conv2d, Linear};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MACs = output positions × per-position dot-product length; params
    /// are independent of spatial size; output elements are consistent.
    #[test]
    fn conv_accounting_is_internally_consistent(
        in_ch in 1u32..128,
        out_ch in 1u32..128,
        kernel in prop::sample::select(vec![1u32, 3, 5, 7]),
        stride in 1u32..3,
        in_size in 8u32..128,
    ) {
        let padding = kernel / 2;
        let c = Conv2d::square(in_ch, out_ch, kernel, stride, padding, in_size);
        let per_position = (in_ch * kernel * kernel) as u64;
        prop_assert_eq!(c.macs(), c.output_elements() * per_position);
        prop_assert_eq!(c.params(), out_ch as u64 * per_position);
        // Stride-1 same-padding preserves the spatial size for odd kernels.
        if stride == 1 && kernel % 2 == 1 {
            prop_assert_eq!(c.out_size(), in_size);
        }
        // Output size never exceeds input size for stride >= 1, pad <= k/2.
        prop_assert!(c.out_size() <= in_size);
    }

    #[test]
    fn depthwise_divides_macs_by_channels(
        ch in 1u32..256,
        in_size in 4u32..64,
    ) {
        let dense = Conv2d::square(ch, ch, 3, 1, 1, in_size);
        let dw = Conv2d { groups: ch, ..dense };
        prop_assert_eq!(dense.macs(), dw.macs() * ch as u64);
    }

    #[test]
    fn linear_macs_equal_params_times_tokens(
        in_f in 1u32..4096,
        out_f in 1u32..4096,
        tokens in 1u32..512,
    ) {
        let l = Linear { in_features: in_f, out_features: out_f, tokens };
        prop_assert_eq!(l.macs(), l.params() * tokens as u64);
    }

    #[test]
    fn attention_macs_symmetric_in_q_and_kv(
        heads in 1u32..16,
        head_dim in 8u32..128,
        q in 1u32..512,
        kv in 1u32..512,
    ) {
        let a = Attention { heads, head_dim, q_len: q, kv_len: kv };
        let b = Attention { heads, head_dim, q_len: kv, kv_len: q };
        prop_assert_eq!(a.macs(), b.macs());
        prop_assert_eq!(a.attention_elements(), b.attention_elements());
    }
}
