//! Property-based tests on the FP16 emulation and hardware structures.

use proptest::prelude::*;

use dysta_hw::{fp16::EPSILON_REL, Fifo, F16};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn conversion_error_is_within_half_ulp(x in -60000.0f64..60000.0) {
        let h = F16::from_f64(x);
        prop_assert!(!h.is_nan());
        if x.abs() > 6.2e-5 && !h.is_infinite() {
            // Normal range: relative error bounded by 2^-11.
            let rel = ((h.to_f64() - x) / x).abs();
            prop_assert!(rel <= EPSILON_REL, "x={x} rel={rel}");
        } else {
            // Subnormal range: absolute error bounded by half the
            // smallest subnormal step (2^-25).
            prop_assert!((h.to_f64() - x).abs() <= 2f64.powi(-25) + 1e-18);
        }
    }

    #[test]
    fn conversion_is_monotone(a in -60000.0f64..60000.0, b in -60000.0f64..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f64(lo).to_f64() <= F16::from_f64(hi).to_f64());
    }

    #[test]
    fn conversion_is_idempotent(x in -60000.0f64..60000.0) {
        let once = F16::from_f64(x);
        let twice = F16::from_f64(once.to_f64());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn addition_commutes(a in -200.0f64..200.0, b in -200.0f64..200.0) {
        let (x, y) = (F16::from_f64(a), F16::from_f64(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
    }

    #[test]
    fn multiplication_by_one_is_identity(a in -60000.0f64..60000.0) {
        let x = F16::from_f64(a);
        prop_assert_eq!(x * F16::ONE, x);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bounded FIFO behaves exactly like a capacity-checked VecDeque.
    #[test]
    fn fifo_matches_reference_model(
        depth in 1usize..16,
        ops in prop::collection::vec(0u8..3, 0..64),
    ) {
        let mut fifo: Fifo<u8> = Fifo::new(depth);
        let mut reference: std::collections::VecDeque<u8> =
            std::collections::VecDeque::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    let item = i as u8;
                    let ok = fifo.push(item).is_ok();
                    if reference.len() < depth {
                        reference.push_back(item);
                        prop_assert!(ok);
                    } else {
                        prop_assert!(!ok);
                    }
                }
                1 => prop_assert_eq!(fifo.pop(), reference.pop_front()),
                _ => {
                    prop_assert_eq!(fifo.len(), reference.len());
                    prop_assert_eq!(fifo.is_empty(), reference.is_empty());
                    prop_assert_eq!(fifo.is_full(), reference.len() == depth);
                }
            }
        }
    }
}
