//! The reconfigurable compute unit (the paper's Figures 10–11).
//!
//! The unit owns three multipliers and three adder/subtractors whose
//! interconnect is reconfigured by mux select signals between two
//! dataflows:
//!
//! * **Coefficient mode** (Figure 11(a)/(c)): the division by the layer
//!   shape is folded into a multiplication by the offline-precomputed
//!   reciprocal, so `γ = num_zeros_complement × (1/shape) × (1/avg_density)`
//!   uses only the last two multipliers.
//! * **Score mode** (Figure 11(b)/(d)): all units are active to evaluate
//!   `remain = γ·Lat_avg` and `score = remain + η·(slack + penalty)`,
//!   with the normalised-isolation division likewise folded into a
//!   precomputed reciprocal multiplication.
//!
//! All arithmetic is FP16, matching the `Opt_FP16` design point.

use crate::F16;

/// Which dataflow the unit is configured for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitMode {
    /// Sparsity-coefficient computation (two multipliers active).
    Coefficient,
    /// Score computation (all arithmetic units active).
    Score,
}

/// The shared FP16 datapath with cycle accounting.
///
/// # Examples
///
/// ```
/// use dysta_hw::{ComputeUnit, F16};
///
/// let mut cu = ComputeUnit::new();
/// let gamma = cu.coefficient(256, 1024, F16::from_f64(1.0 / 0.3));
/// assert!((gamma.to_f64() - 2.5).abs() < 0.01); // (1-256/1024)/0.3
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComputeUnit {
    cycles: u64,
    reconfigurations: u64,
    mode: Option<UnitMode>,
}

/// Pipeline cycles per coefficient evaluation (2 mult stages).
const COEFF_CYCLES: u64 = 2;
/// Pipeline cycles per score evaluation (mult + 3 add/sub + mult stages).
const SCORE_CYCLES: u64 = 5;

impl ComputeUnit {
    /// A fresh unit with zeroed counters.
    pub fn new() -> Self {
        ComputeUnit::default()
    }

    /// Total arithmetic cycles consumed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of mux reconfigurations performed.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    fn enter(&mut self, mode: UnitMode) {
        if self.mode != Some(mode) {
            self.reconfigurations += 1;
            self.mode = Some(mode);
        }
    }

    /// Computes the sparsity coefficient `γ` from the monitor's raw
    /// zero count (Algorithm 3 line 6 in the Figure 11(a) dataflow).
    ///
    /// `num_zeros` and `shape` come from the zero-counting monitor;
    /// `inv_avg_density` is the LUT-cached reciprocal of the layer's
    /// average density.
    pub fn coefficient(&mut self, num_zeros: u64, shape: u64, inv_avg_density: F16) -> F16 {
        self.enter(UnitMode::Coefficient);
        self.cycles += COEFF_CYCLES;
        // Monitored density = 1 - zeros/shape, with the shape division
        // folded into a reciprocal multiplication.
        let inv_shape = F16::from_f64(1.0 / shape.max(1) as f64);
        let zero_frac = F16::from_f64(num_zeros as f64) * inv_shape;
        let density = F16::ONE - zero_frac;
        density * inv_avg_density
    }

    /// Computes the dynamic score (Algorithm 2 line 11 in the Figure
    /// 11(b) dataflow): `γ·lat_avg + η·((ddl − now − γ·lat_avg) + wait·inv_queue)`.
    ///
    /// All time inputs are in milliseconds (the FP16 range comfortably
    /// covers the paper's workloads: SSD's 150× SLO is ~80 s = 8e4 ms,
    /// near but under the 65504 FP16 max).
    #[allow(clippy::too_many_arguments)]
    pub fn score(
        &mut self,
        gamma: F16,
        lat_avg_ms: F16,
        ddl_ms: F16,
        now_ms: F16,
        wait_ms: F16,
        inv_queue_len: F16,
        eta: F16,
    ) -> F16 {
        self.enter(UnitMode::Score);
        self.cycles += SCORE_CYCLES;
        let remain = gamma * lat_avg_ms;
        let slack = ddl_ms - now_ms - remain;
        let penalty = wait_ms * inv_queue_len;
        remain + eta * (slack + penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficient_matches_reference_within_fp16() {
        let mut cu = ComputeUnit::new();
        for (zeros, shape, avg_density) in [(100u64, 1000u64, 0.5), (900, 1000, 0.25), (0, 64, 0.9)]
        {
            let g = cu.coefficient(zeros, shape, F16::from_f64(1.0 / avg_density));
            let reference = (1.0 - zeros as f64 / shape as f64) / avg_density;
            let rel = ((g.to_f64() - reference) / reference.max(1e-9)).abs();
            assert!(rel < 5e-3, "γ={} ref={reference}", g.to_f64());
        }
    }

    #[test]
    fn score_matches_reference_within_fp16() {
        let mut cu = ComputeUnit::new();
        let s = cu.score(
            F16::from_f64(1.2),
            F16::from_f64(30.0),  // lat_avg 30 ms
            F16::from_f64(400.0), // deadline
            F16::from_f64(100.0), // now
            F16::from_f64(12.0),  // wait
            F16::from_f64(0.25),  // 1/|Q|
            F16::from_f64(0.03),
        );
        let remain = 1.2 * 30.0;
        let reference = remain + 0.03 * ((400.0 - 100.0 - remain) + 12.0 * 0.25);
        assert!((s.to_f64() - reference).abs() / reference < 5e-3);
    }

    #[test]
    fn cycle_accounting() {
        let mut cu = ComputeUnit::new();
        cu.coefficient(1, 2, F16::ONE);
        cu.coefficient(1, 2, F16::ONE);
        assert_eq!(cu.cycles(), 4);
        cu.score(
            F16::ONE,
            F16::ONE,
            F16::ONE,
            F16::ZERO,
            F16::ZERO,
            F16::ONE,
            F16::ZERO,
        );
        assert_eq!(cu.cycles(), 9);
    }

    #[test]
    fn reconfiguration_counted_on_mode_switch_only() {
        let mut cu = ComputeUnit::new();
        cu.coefficient(1, 2, F16::ONE);
        cu.coefficient(1, 2, F16::ONE);
        assert_eq!(cu.reconfigurations(), 1);
        cu.score(
            F16::ONE,
            F16::ONE,
            F16::ONE,
            F16::ZERO,
            F16::ZERO,
            F16::ONE,
            F16::ZERO,
        );
        assert_eq!(cu.reconfigurations(), 2);
        cu.coefficient(1, 2, F16::ONE);
        assert_eq!(cu.reconfigurations(), 3);
    }
}
