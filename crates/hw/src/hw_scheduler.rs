//! The hardware Dysta scheduler: Algorithm 2 executed through the FP16
//! datapath and bounded FIFOs.

use dysta_core::{DystaConfig, ModelInfoLut, Scheduler, TaskQueue, TaskState};

use crate::{ComputeUnit, F16};

/// Fixed-point resolution of the zero-counting monitor interface: the
/// monitored sparsity is reported as a zero count out of this many
/// elements (the real circuit counts zeros over the layer's true shape;
/// the reciprocal-multiply normalisation makes the two equivalent up to
/// FP16 resolution).
const MONITOR_SHAPE: u64 = 1024;

/// Slack values are clamped to this many milliseconds before FP16
/// conversion so very loose deadlines saturate instead of overflowing to
/// infinity (FP16 tops out at 65504).
const SLACK_CLAMP_MS: f64 = 60_000.0;

/// A [`Scheduler`] implementation that computes every Dysta dynamic score
/// in half precision on the shared [`ComputeUnit`], with request capacity
/// bounded by the tag/score FIFO depth.
///
/// When more requests are outstanding than the FIFO depth, only the
/// `depth` earliest-arrived requests are visible to the hardware (the
/// host holds the overflow), matching the back-pressure behaviour of the
/// RTL design.
///
/// Used to verify the paper's claim that the `Opt_FP16` design point
/// preserves scheduling quality: on the benchmark workloads its decisions
/// track the f64 software scheduler's.
///
/// # Examples
///
/// ```
/// use dysta_core::Scheduler;
/// use dysta_hw::HardwareDystaScheduler;
///
/// let hw = HardwareDystaScheduler::new(Default::default(), 64);
/// assert_eq!(hw.name(), "dysta-hw-fp16");
/// ```
#[derive(Debug, Clone)]
pub struct HardwareDystaScheduler {
    config: DystaConfig,
    fifo_depth: usize,
    compute: ComputeUnit,
    /// Reusable buffer for the FIFO-visible queue positions, so
    /// steady-state picks don't allocate.
    visible: Vec<usize>,
}

impl HardwareDystaScheduler {
    /// Creates the hardware scheduler with the given scoring
    /// hyperparameters and FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics if `fifo_depth` is zero.
    pub fn new(config: DystaConfig, fifo_depth: usize) -> Self {
        assert!(fifo_depth > 0, "FIFO depth must be positive");
        HardwareDystaScheduler {
            config,
            fifo_depth,
            compute: ComputeUnit::new(),
            visible: Vec::new(),
        }
    }

    /// Total datapath cycles consumed so far (for the overhead analysis).
    pub fn compute_cycles(&self) -> u64 {
        self.compute.cycles()
    }

    /// The FIFO depth.
    pub fn fifo_depth(&self) -> usize {
        self.fifo_depth
    }

    /// The FP16 sparsity coefficient of a task (last-one strategy through
    /// the coefficient dataflow).
    fn gamma(&mut self, task: &TaskState, lut: &ModelInfoLut) -> F16 {
        let info = lut.info(task.variant);
        // Walk back to the most recent dynamic layer the monitor saw
        // (`dynamic_layer_avg_density` owns the epsilon/floor shared
        // with the software predictor).
        let last_dynamic = task
            .monitored
            .iter()
            .enumerate()
            .rev()
            .find_map(|(j, m)| info.dynamic_layer_avg_density(j).map(|d| (m, d)));
        match last_dynamic {
            None => F16::ONE,
            Some((m, avg_density)) => {
                let num_zeros = (m.sparsity.clamp(0.0, 1.0) * MONITOR_SHAPE as f64).round() as u64;
                let ratio = self.compute.coefficient(
                    num_zeros,
                    MONITOR_SHAPE,
                    F16::from_f64(1.0 / avg_density),
                );
                // The per-variant hardware-effectiveness exponent is
                // applied through a small ratio->gamma lookup table in the
                // RTL design; modelled here as an FP16-quantised pow.
                F16::from_f64(ratio.to_f64().max(1e-3).powf(info.gamma_exponent()))
            }
        }
    }
}

impl Scheduler for HardwareDystaScheduler {
    fn name(&self) -> &str {
        "dysta-hw-fp16"
    }

    fn pick_next(&mut self, queue: TaskQueue<'_>, lut: &ModelInfoLut, now_ns: u64) -> usize {
        // Hardware visibility: the `fifo_depth` earliest arrivals, staged
        // in a reusable buffer (capacity stabilises after warm-up).
        self.visible.clear();
        self.visible.extend(0..queue.len());
        if queue.len() > self.fifo_depth {
            self.visible
                .sort_by_key(|&i| (queue.get(i).arrival_ns, queue.get(i).id));
            self.visible.truncate(self.fifo_depth);
        }

        let eta = F16::from_f64(self.config.eta);
        let inv_queue = F16::from_f64(1.0 / self.visible.len() as f64);
        // Selection key: (deadline-infeasible flag, FP16 score, id). The
        // flag is a single comparator bit in the RTL design — requests
        // whose predicted slack is already negative are served
        // best-effort behind every feasible one, matching the software
        // scheduler's lost-cause demotion.
        let mut best: Option<(usize, (bool, F16))> = None;
        for k in 0..self.visible.len() {
            let i = self.visible[k];
            let t = queue.get(i);
            let info = lut.info(t.variant);
            let gamma = self.gamma(t, lut);
            let lat_avg_ms = F16::from_f64(info.avg_remaining_ns(t.next_layer) / 1e6);
            let ttd_ms = ((t.deadline_ns() as f64 - now_ns as f64) / 1e6)
                .clamp(-SLACK_CLAMP_MS, SLACK_CLAMP_MS);
            let wait_ms = (t.waiting_ns(now_ns) as f64 / 1e6).min(SLACK_CLAMP_MS);
            let ttd = F16::from_f64(ttd_ms);
            let score = self.compute.score(
                gamma,
                lat_avg_ms,
                ttd,
                F16::ZERO, // deadline passed in relative to `now`
                F16::from_f64(wait_ms),
                inv_queue,
                eta,
            );
            let remain = gamma * lat_avg_ms;
            let infeasible = (ttd - remain).total_cmp(F16::ZERO) == std::cmp::Ordering::Less;
            let key = (infeasible, score);
            let better = match best {
                None => true,
                Some((bi, (b_inf, b_score))) => {
                    (key.0, key.1.to_f32()) < (b_inf, b_score.to_f32())
                        || (key.0 == b_inf && key.1 == b_score && t.id < queue.get(bi).id)
                }
            };
            if better {
                best = Some((i, key));
            }
        }
        best.expect("engine never passes an empty queue").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_core::{DystaScheduler, MonitoredLayer, SparseLatencyPredictor};
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};

    fn setup() -> (SparseModelSpec, ModelInfoLut) {
        let spec = SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0);
        let mut store = TraceStore::new();
        store.insert(TraceGenerator::default().generate(&spec, 16, 5));
        (spec, ModelInfoLut::from_store(&store))
    }

    fn mk(id: u64, spec: SparseModelSpec, lut: &ModelInfoLut, arrival: u64) -> TaskState {
        let variant = lut.variant_id(&spec).expect("spec profiled");
        TaskState {
            true_remaining_ns: 30_000_000,
            ..TaskState::arrived(id, spec, variant, arrival, 300_000_000, 109)
        }
    }

    #[test]
    fn agrees_with_software_scheduler_on_clear_cases() {
        let (spec, lut) = setup();
        let info = lut.expect(&spec);
        let info_sparsity = info.avg_layer_sparsity().to_vec();
        let dyn_layer = info_sparsity.iter().position(|&s| s > 0.1).unwrap();
        let avg_s = info_sparsity[dyn_layer];

        let mut sparse = mk(0, spec, &lut, 0);
        sparse.next_layer = dyn_layer + 1;
        sparse.monitored = vec![
            MonitoredLayer {
                sparsity: 0.0,
                latency_ns: 1
            };
            dyn_layer
        ];
        sparse.monitored.push(MonitoredLayer {
            sparsity: (avg_s + 0.12).min(0.99),
            latency_ns: 1,
        });
        sparse.rebuild_sparsity_summary(info);
        let mut dense = sparse.clone();
        dense.id = 1;
        dense.monitored.last_mut().unwrap().sparsity = (avg_s - 0.12).max(0.0);
        dense.rebuild_sparsity_summary(info);

        let queue = [dense, sparse];
        let mut hw = HardwareDystaScheduler::new(DystaConfig::default(), 64);
        let mut sw = DystaScheduler::new(DystaConfig::default(), SparseLatencyPredictor::default());
        assert_eq!(
            hw.pick_next(TaskQueue::dense(&queue), &lut, 0),
            sw.pick_next(TaskQueue::dense(&queue), &lut, 0),
            "FP16 must preserve the decision"
        );
    }

    #[test]
    fn fifo_depth_limits_visibility() {
        let (spec, lut) = setup();
        // Task 9 arrived latest; with depth 2 only tasks 0 and 1 are
        // visible even if 9 would score best.
        let tasks: Vec<TaskState> = (0..10).map(|i| mk(i, spec, &lut, i * 1000)).collect();
        let mut hw = HardwareDystaScheduler::new(DystaConfig::default(), 2);
        let picked = hw.pick_next(TaskQueue::dense(&tasks), &lut, 1_000_000);
        assert!(tasks[picked].id < 2, "picked {}", tasks[picked].id);
    }

    #[test]
    fn cycles_accumulate_across_decisions() {
        let (spec, lut) = setup();
        let queue = [mk(0, spec, &lut, 0), mk(1, spec, &lut, 10)];
        let mut hw = HardwareDystaScheduler::new(DystaConfig::default(), 64);
        hw.pick_next(TaskQueue::dense(&queue), &lut, 100);
        let after_one = hw.compute_cycles();
        assert!(after_one > 0);
        hw.pick_next(TaskQueue::dense(&queue), &lut, 200);
        assert!(hw.compute_cycles() > after_one);
    }
}
