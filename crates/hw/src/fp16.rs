//! IEEE 754 binary16 (half-precision) software emulation.
//!
//! The paper's hardware scheduler stores and computes scores in FP16 to
//! cut resource usage (its Figure 16 `Opt_FP16` design). This module
//! emulates that datapath bit-exactly: conversions implement
//! round-to-nearest-even, and arithmetic rounds through f32 the way an
//! FP16 FPGA operator with a normalised result does.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An IEEE 754 binary16 value (1 sign, 5 exponent, 10 mantissa bits).
///
/// # Examples
///
/// ```
/// use dysta_hw::F16;
///
/// let x = F16::from_f64(1.5);
/// let y = F16::from_f64(2.25);
/// assert_eq!((x * y).to_f64(), 3.375); // exactly representable
/// let z = F16::from_f64(0.1);
/// assert!((z.to_f64() - 0.1).abs() < 1e-4); // rounded
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);

    /// Creates a value from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from f32 with round-to-nearest-even, overflowing to
    /// infinity and flushing tiny values through the subnormal range.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN.
            let payload = if frac != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }
        // Re-bias from 127 to 15.
        let unbiased = exp - 127;
        if unbiased >= 16 {
            return F16(sign | 0x7C00); // overflow -> inf
        }
        if unbiased >= -14 {
            // Normal half. Keep 10 mantissa bits, round to nearest even.
            let half_exp = (unbiased + 15) as u16;
            let mantissa = frac >> 13;
            let round_bits = frac & 0x1FFF;
            let mut out = (sign as u32) | ((half_exp as u32) << 10) | mantissa;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (mantissa & 1) == 1) {
                out += 1; // may carry into the exponent: that is correct
            }
            return F16(out as u16);
        }
        if unbiased >= -25 {
            // Subnormal half: m = round(1.frac × 2^(unbiased+24)), i.e.
            // shift the 24-bit significand right by (-unbiased - 1).
            let shift = (-unbiased - 1) as u32;
            let full = frac | 0x0080_0000; // implicit leading one
            let mantissa = full >> shift;
            let rem = full & ((1 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let mut out = mantissa;
            if rem > half || (rem == half && (mantissa & 1) == 1) {
                out += 1;
            }
            return F16(sign | out as u16);
        }
        F16(sign) // underflow to signed zero
    }

    /// Converts from f64 (rounds through f32; double rounding is
    /// negligible at 10 mantissa bits).
    pub fn from_f64(value: f64) -> Self {
        F16::from_f32(value as f32)
    }

    /// Converts to f32 (exact).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let frac = (self.0 & 0x03FF) as u32;
        let bits = match (exp, frac) {
            (0, 0) => sign,
            (0, f) => {
                // Subnormal: value = f × 2^-24; normalise around the
                // leading set bit at position p (0..=9).
                let p = 31 - f.leading_zeros();
                let e = 103 + p; // (p - 24) + 127
                let r = f & !(1u32 << p);
                sign | (e << 23) | (r << (23 - p))
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, f) => sign | 0x7F80_0000 | (f << 13),
            (e, f) => sign | ((e + 127 - 15) << 23) | (f << 13),
        };
        f32::from_bits(bits)
    }

    /// Converts to f64 (exact).
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True for positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True for NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// IEEE total-order-ish comparison adequate for score sorting
    /// (NaN sorts last).
    pub fn total_cmp(self, other: F16) -> std::cmp::Ordering {
        self.to_f32().total_cmp(&other.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> f32 {
        v.to_f32()
    }
}

macro_rules! impl_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

impl_op!(Add, add, +);
impl_op!(Sub, sub, -);
impl_op!(Mul, mul, *);
impl_op!(Div, div, /);

/// Worst-case relative rounding error of one FP16 operation (2^-11).
pub const EPSILON_REL: f64 = 4.8828125e-4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let h = F16::from_f64(i as f64);
            assert_eq!(h.to_f64(), i as f64, "{i}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f64(1.0), F16::ONE);
        assert_eq!(F16::from_f64(0.0), F16::ZERO);
        assert_eq!(F16::from_f64(65504.0), F16::MAX);
        assert_eq!(F16::from_f64(1e6), F16::INFINITY);
        assert_eq!(F16::from_f64(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f64(-2.0).to_bits(), 0xC000);
    }

    #[test]
    fn rounding_error_is_bounded() {
        let mut x = 0.001;
        while x < 60000.0 {
            let h = F16::from_f64(x);
            let rel = ((h.to_f64() - x) / x).abs();
            assert!(rel <= EPSILON_REL, "x={x} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive subnormal: 2^-24.
        let tiny = F16::from_bits(1);
        assert!((tiny.to_f64() - 2f64.powi(-24)).abs() < 1e-12);
        assert_eq!(F16::from_f32(tiny.to_f32()), tiny);
        // A mid-range subnormal.
        let sub = F16::from_bits(0x0155);
        assert_eq!(F16::from_f32(sub.to_f32()), sub);
    }

    #[test]
    fn all_finite_bit_patterns_roundtrip_through_f32() {
        for bits in 0..=0xFFFFu16 {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(F16::from_f32(h.to_f32()), h, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn arithmetic_matches_f32_rounded() {
        let a = F16::from_f64(3.7);
        let b = F16::from_f64(1.9);
        assert_eq!((a + b), F16::from_f32(a.to_f32() + b.to_f32()));
        assert_eq!((a * b), F16::from_f32(a.to_f32() * b.to_f32()));
        assert_eq!((a - b), F16::from_f32(a.to_f32() - b.to_f32()));
        assert_eq!((a / b), F16::from_f32(a.to_f32() / b.to_f32()));
    }

    #[test]
    fn round_to_nearest_even() {
        // 2049 is exactly between 2048 and 2050 -> ties to even (2048).
        assert_eq!(F16::from_f64(2049.0).to_f64(), 2048.0);
        // 2051 is between 2050 and 2052 -> 2052 (even mantissa).
        assert_eq!(F16::from_f64(2051.0).to_f64(), 2052.0);
    }

    #[test]
    fn nan_detected() {
        let nan = F16::from_f32(f32::NAN);
        assert!(nan.is_nan());
        assert!(!nan.is_infinite());
        assert!(F16::INFINITY.is_infinite());
    }
}
