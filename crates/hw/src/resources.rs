//! FPGA resource cost model (the paper's Figure 16 and Table 6).
//!
//! The paper synthesises three variants of the hardware scheduler on a
//! Xilinx Zynq ZU7EV at 200 MHz: `Non_Opt_FP32` (separate compute units
//! per dataflow, 32-bit floats), `Opt_FP32` (shared reconfigurable unit)
//! and `Opt_FP16` (shared unit + half precision). This module prices each
//! design from per-component costs typical of Xilinx floating-point
//! operator IP, calibrated so that `Opt_FP16` at FIFO depth 64 lands on
//! the paper's reported footprint (553 LUTs, 3 DSPs, ~0.5 KB of on-chip
//! RAM) and the relative savings of the two optimizations match
//! Figure 16.

use serde::{Deserialize, Serialize};

/// Floating-point precision of the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit single precision.
    Fp32,
    /// 16-bit half precision.
    Fp16,
}

impl Precision {
    /// Operand width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Fp32 => 32,
            Precision::Fp16 => 16,
        }
    }
}

/// Resource usage of a design.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Lookup tables.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// DSP slices.
    pub dsps: u32,
    /// On-chip RAM in kilobytes.
    pub ram_kb: f64,
}

impl ResourceUsage {
    /// Element-wise sum.
    pub fn plus(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            dsps: self.dsps + other.dsps,
            ram_kb: self.ram_kb + other.ram_kb,
        }
    }

    /// Component-wise ratio against a baseline (used by Figure 16's
    /// normalised plot).
    pub fn normalized_to(self, base: ResourceUsage) -> (f64, f64, f64) {
        (
            self.luts as f64 / base.luts.max(1) as f64,
            self.ffs as f64 / base.ffs.max(1) as f64,
            self.dsps as f64 / base.dsps.max(1) as f64,
        )
    }
}

/// Per-operator costs (LUT, FF, DSP), typical of Xilinx FP operator IP.
fn mult_cost(p: Precision) -> (u32, u32, u32) {
    match p {
        Precision::Fp32 => (85, 120, 3),
        Precision::Fp16 => (25, 55, 1),
    }
}

fn addsub_cost(p: Precision) -> (u32, u32, u32) {
    match p {
        Precision::Fp32 => (220, 210, 0),
        Precision::Fp16 => (70, 85, 0),
    }
}

/// One 2:1 mux per operand bit costs half a LUT (fracturable LUT6).
fn mux_cost(p: Precision) -> u32 {
    p.bits() / 2
}

/// Controller FSM + request bookkeeping.
const CONTROLLER_LUTS: u32 = 120;
const CONTROLLER_FFS: u32 = 110;
/// Zero-counting sparsity monitor.
const MONITOR_LUTS: u32 = 40;
const MONITOR_FFS: u32 = 36;
/// Per-FIFO pointer/flag control logic.
const FIFO_CTRL_LUTS: u32 = 20;

/// Number of multipliers / adder-subtractors in the shared unit
/// (Figure 10: three of each, with the division folded into a
/// reciprocal multiplication).
const SHARED_MULTS: u32 = 3;
const SHARED_ADDSUBS: u32 = 3;
/// The non-optimised design duplicates the coefficient dataflow's two
/// multipliers in a separate unit.
const COEFF_UNIT_MULTS: u32 = 2;
/// Muxes/demuxes required to share the unit between the two dataflows.
const SHARED_MUXES: u32 = 6;

/// A point in the scheduler's design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Datapath precision.
    pub precision: Precision,
    /// Whether the compute unit is shared between dataflows.
    pub shared_unit: bool,
    /// Request FIFO depth.
    pub fifo_depth: u32,
}

impl DesignPoint {
    /// The paper's `Non_Opt_FP32` design.
    pub fn non_opt_fp32(fifo_depth: u32) -> Self {
        DesignPoint {
            precision: Precision::Fp32,
            shared_unit: false,
            fifo_depth,
        }
    }

    /// The paper's `Opt_FP32` design.
    pub fn opt_fp32(fifo_depth: u32) -> Self {
        DesignPoint {
            precision: Precision::Fp32,
            shared_unit: true,
            fifo_depth,
        }
    }

    /// The paper's `Opt_FP16` design (the deployed configuration).
    pub fn opt_fp16(fifo_depth: u32) -> Self {
        DesignPoint {
            precision: Precision::Fp16,
            shared_unit: true,
            fifo_depth,
        }
    }

    /// Display label matching the paper's Figure 16 legend.
    pub fn label(&self) -> &'static str {
        match (self.shared_unit, self.precision) {
            (false, Precision::Fp32) => "Non_Opt_FP32",
            (true, Precision::Fp32) => "Opt_FP32",
            (true, Precision::Fp16) => "Opt_FP16",
            (false, Precision::Fp16) => "Non_Opt_FP16",
        }
    }

    /// Prices the design.
    pub fn usage(&self) -> ResourceUsage {
        let p = self.precision;
        let (m_lut, m_ff, m_dsp) = mult_cost(p);
        let (a_lut, a_ff, a_dsp) = addsub_cost(p);

        let (mults, addsubs, muxes, extra_ffs) = if self.shared_unit {
            (SHARED_MULTS, SHARED_ADDSUBS, SHARED_MUXES, 0)
        } else {
            // Separate units: duplicate the coefficient multipliers, no
            // sharing muxes, plus inter-unit pipeline registers.
            (
                SHARED_MULTS + COEFF_UNIT_MULTS,
                SHARED_ADDSUBS,
                0,
                4 * p.bits(),
            )
        };

        let luts = mults * m_lut
            + addsubs * a_lut
            + muxes * mux_cost(p)
            + CONTROLLER_LUTS
            + MONITOR_LUTS
            + self.num_fifos() * FIFO_CTRL_LUTS;
        let ffs = mults * m_ff
            + addsubs * a_ff
            + CONTROLLER_FFS
            + MONITOR_FFS
            + extra_ffs
            + self.num_fifos() * 2 * log2_ceil(self.fifo_depth);
        let dsps = mults * m_dsp + addsubs * a_dsp;
        ResourceUsage {
            luts,
            ffs,
            dsps,
            ram_kb: self.fifo_bits() as f64 / 8.0 / 1024.0,
        }
    }

    /// Tag FIFO (8-bit) plus score, deadline and wait-timestamp FIFOs at
    /// datapath width.
    fn num_fifos(&self) -> u32 {
        4
    }

    fn fifo_bits(&self) -> u32 {
        let width = 8 + 3 * self.precision.bits();
        width * self.fifo_depth
    }
}

fn log2_ceil(x: u32) -> u32 {
    32 - x.max(1).saturating_sub(1).leading_zeros()
}

/// The Eyeriss-V2 accelerator footprint the paper measures against
/// (third-party implementation on the Zynq ZU7EV, Table 6).
pub fn eyeriss_v2_baseline() -> ResourceUsage {
    ResourceUsage {
        luts: 99_168,
        ffs: 86_000,
        dsps: 194,
        ram_kb: 140.0,
    }
}

/// Table 6: scheduler overhead relative to the accelerator, in percent
/// `(LUTs, DSPs, RAM)`.
pub fn overhead_percent(scheduler: ResourceUsage, accelerator: ResourceUsage) -> (f64, f64, f64) {
    (
        scheduler.luts as f64 / accelerator.luts as f64 * 100.0,
        scheduler.dsps as f64 / accelerator.dsps as f64 * 100.0,
        scheduler.ram_kb / accelerator.ram_kb * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_fp16_depth_64_matches_paper_footprint() {
        let u = DesignPoint::opt_fp16(64).usage();
        // Paper Table 6: 553 LUTs, 3 DSPs, 0.5 KB.
        assert!((500..=620).contains(&u.luts), "{} LUTs", u.luts);
        assert_eq!(u.dsps, 3);
        assert!((0.3..=0.6).contains(&u.ram_kb), "{} KB", u.ram_kb);
    }

    #[test]
    fn optimizations_strictly_reduce_every_resource() {
        for depth in [64, 512] {
            let non = DesignPoint::non_opt_fp32(depth).usage();
            let opt32 = DesignPoint::opt_fp32(depth).usage();
            let opt16 = DesignPoint::opt_fp16(depth).usage();
            assert!(
                opt32.luts < non.luts && opt32.dsps < non.dsps,
                "depth {depth}"
            );
            assert!(opt16.luts < opt32.luts, "depth {depth}");
            assert!(opt16.dsps < opt32.dsps, "depth {depth}");
            assert!(
                opt16.ffs < opt32.ffs && opt32.ffs < non.ffs,
                "depth {depth}"
            );
            assert!(opt16.ram_kb < opt32.ram_kb, "depth {depth}");
        }
    }

    #[test]
    fn overhead_is_negligible_vs_eyeriss() {
        let (lut, dsp, ram) =
            overhead_percent(DesignPoint::opt_fp16(64).usage(), eyeriss_v2_baseline());
        // Paper: 0.55% LUTs, 1.5% DSPs, 0.35% RAM.
        assert!(lut < 1.0, "LUT overhead {lut}%");
        assert!(dsp < 2.0, "DSP overhead {dsp}%");
        assert!(ram < 0.5, "RAM overhead {ram}%");
    }

    #[test]
    fn deeper_fifos_cost_ram_not_dsps() {
        let shallow = DesignPoint::opt_fp16(64).usage();
        let deep = DesignPoint::opt_fp16(512).usage();
        assert!(deep.ram_kb > shallow.ram_kb * 4.0);
        assert_eq!(deep.dsps, shallow.dsps);
    }

    #[test]
    fn normalization_against_non_opt() {
        let base = DesignPoint::non_opt_fp32(64).usage();
        let (l, f, d) = DesignPoint::opt_fp16(64).usage().normalized_to(base);
        assert!(l < 0.6 && f < 0.7 && d < 0.3, "({l:.2}, {f:.2}, {d:.2})");
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(64), 6);
        assert_eq!(log2_ceil(65), 7);
        assert_eq!(log2_ceil(512), 9);
    }
}
