//! Bounded FIFO queues (the paper's tag/score/SLO FIFOs, Figure 10).

use std::collections::VecDeque;
use std::fmt;

/// A bounded FIFO with the paper's configurable depth (its hardware
/// evaluation instantiates 64 and 512). Depth bounds the number of
/// outstanding requests the hardware scheduler can track.
///
/// # Examples
///
/// ```
/// use dysta_hw::Fifo;
///
/// let mut f: Fifo<u32> = Fifo::new(2);
/// f.push(1)?;
/// f.push(2)?;
/// assert!(f.push(3).is_err()); // full
/// assert_eq!(f.pop(), Some(1));
/// # Ok::<(), dysta_hw::FifoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    depth: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        Fifo {
            items: VecDeque::with_capacity(depth),
            depth,
        }
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.depth
    }

    /// Enqueues an item.
    ///
    /// # Errors
    ///
    /// Returns [`FifoError::Full`] when at capacity (hardware
    /// back-pressure: the host must retry).
    pub fn push(&mut self, item: T) -> Result<(), FifoError> {
        if self.is_full() {
            return Err(FifoError::Full { depth: self.depth });
        }
        self.items.push_back(item);
        Ok(())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Iterates over queued items front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes the first item matching the predicate and returns it
    /// (models the tag-matching dequeue when a request completes
    /// out of FIFO order).
    pub fn remove_where<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> Option<T> {
        let idx = self.items.iter().position(&mut pred)?;
        self.items.remove(idx)
    }
}

/// FIFO failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoError {
    /// Push attempted while at capacity.
    Full {
        /// The configured depth.
        depth: usize,
    },
}

impl fmt::Display for FifoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FifoError::Full { depth } => write!(f, "fifo full at depth {depth}"),
        }
    }
}

impl std::error::Error for FifoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_preserved() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert!(f.is_full());
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert!(f.is_empty());
    }

    #[test]
    fn full_reports_depth() {
        let mut f = Fifo::new(1);
        f.push(7u8).unwrap();
        let err = f.push(8).unwrap_err();
        assert_eq!(err, FifoError::Full { depth: 1 });
        assert!(err.to_string().contains('1'));
    }

    #[test]
    fn remove_where_extracts_mid_queue() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert_eq!(f.remove_where(|&x| x == 2), Some(2));
        assert_eq!(f.len(), 3);
        assert_eq!(f.remove_where(|&x| x == 99), None);
        let rest: Vec<i32> = f.iter().copied().collect();
        assert_eq!(rest, vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}
