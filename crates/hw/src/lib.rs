//! Hardware design of the Dysta dynamic scheduler (the paper's Section 5).
//!
//! The paper implements the dynamic scheduler as a small RTL module
//! sitting between the host and the NPU (its Figure 10): request FIFOs, a
//! runtime sparsity monitor, LUTs, and a *reconfigurable compute unit*
//! shared between the sparsity-coefficient and score dataflows (Figure
//! 11), all in half-precision floating point. This crate reproduces that
//! design as a functional model plus an FPGA resource cost model:
//!
//! * [`fp16`] — IEEE 754 binary16 software emulation with round-to-nearest,
//!   used to verify that FP16 arithmetic preserves scheduling decisions.
//! * [`Fifo`] — the bounded tag/score queues (configurable depth, the
//!   paper evaluates 64 and 512).
//! * [`ComputeUnit`] — the shared reconfigurable datapath with its two
//!   configurations (coefficient / score) and cycle accounting.
//! * [`HardwareDystaScheduler`] — a [`dysta_core::Scheduler`] that runs
//!   Dysta's dynamic level through the FP16 datapath and bounded FIFOs,
//!   demonstrating functional equivalence with the software scheduler.
//! * [`resources`] — component-level LUT/FF/DSP/BRAM costs for the three
//!   design points of Figure 16 (`Non_Opt_FP32`, `Opt_FP32`, `Opt_FP16`)
//!   and the Table 6 overhead comparison against Eyeriss-V2.
//!
//! # Examples
//!
//! ```
//! use dysta_hw::resources::{DesignPoint, Precision};
//!
//! let opt16 = DesignPoint::opt_fp16(64).usage();
//! let non_opt = DesignPoint::non_opt_fp32(64).usage();
//! assert!(opt16.luts < non_opt.luts);
//! assert!(opt16.dsps < non_opt.dsps);
//! # let _ = Precision::Fp16;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compute_unit;
mod fifo;
pub mod fp16;
mod hw_scheduler;
pub mod resources;

pub use compute_unit::{ComputeUnit, UnitMode};
pub use fifo::{Fifo, FifoError};
pub use fp16::F16;
pub use hw_scheduler::HardwareDystaScheduler;
