//! Persistence for trace sets (the paper's "save as files" step).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{ModelTraces, SparseModelSpec};

/// A keyed collection of [`ModelTraces`] with JSON save/load.
///
/// # Examples
///
/// ```
/// use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};
/// use dysta_models::ModelId;
/// use dysta_sparsity::SparsityPattern;
///
/// let mut store = TraceStore::new();
/// let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
/// store.insert(TraceGenerator::default().generate(&spec, 4, 1));
/// assert!(store.get(&spec).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStore {
    traces: BTreeMap<String, ModelTraces>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Inserts a trace set, replacing any existing entry for the same
    /// spec, and returns the replaced entry if any.
    pub fn insert(&mut self, traces: ModelTraces) -> Option<ModelTraces> {
        self.traces.insert(traces.spec().key(), traces)
    }

    /// Looks up the traces for a spec.
    pub fn get(&self, spec: &SparseModelSpec) -> Option<&ModelTraces> {
        self.traces.get(&spec.key())
    }

    /// Number of stored variants.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterator over stored trace sets.
    pub fn iter(&self) -> impl Iterator<Item = &ModelTraces> {
        self.traces.values()
    }

    /// Serializes the store to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created or written.
    pub fn save(&self, path: &Path) -> Result<(), TraceStoreError> {
        let file = File::create(path).map_err(TraceStoreError::Io)?;
        serde_json::to_writer(BufWriter::new(file), self).map_err(TraceStoreError::Json)
    }

    /// Loads a store from a JSON file written by [`TraceStore::save`].
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Self, TraceStoreError> {
        let file = File::open(path).map_err(TraceStoreError::Io)?;
        serde_json::from_reader(BufReader::new(file)).map_err(TraceStoreError::Json)
    }
}

/// Error saving or loading a [`TraceStore`].
#[derive(Debug)]
pub enum TraceStoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON content.
    Json(serde_json::Error),
}

impl fmt::Display for TraceStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceStoreError::Io(e) => write!(f, "trace store I/O failure: {e}"),
            TraceStoreError::Json(e) => write!(f, "trace store serialization failure: {e}"),
        }
    }
}

impl std::error::Error for TraceStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceStoreError::Io(e) => Some(e),
            TraceStoreError::Json(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGenerator;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;

    #[test]
    fn insert_and_get() {
        let mut store = TraceStore::new();
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        let t = TraceGenerator::default().generate(&spec, 2, 1);
        assert!(store.insert(t.clone()).is_none());
        assert_eq!(store.get(&spec), Some(&t));
        assert_eq!(store.len(), 1);
        // Replacement returns the old value.
        assert_eq!(store.insert(t.clone()), Some(t));
    }

    #[test]
    fn missing_spec_is_none() {
        let store = TraceStore::new();
        let spec = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0);
        assert!(store.get(&spec).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn save_load_roundtrip() {
        let mut store = TraceStore::new();
        for (model, pattern) in [
            (ModelId::MobileNet, SparsityPattern::RandomPointwise),
            (ModelId::Bert, SparsityPattern::Dense),
        ] {
            let spec = SparseModelSpec::new(model, pattern, 0.5);
            store.insert(TraceGenerator::default().generate(&spec, 3, 7));
        }
        let dir = std::env::temp_dir().join("dysta-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        store.save(&path).unwrap();
        let loaded = TraceStore::load(&path).unwrap();
        assert_eq!(store, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = TraceStore::load(Path::new("/nonexistent/dysta.json")).unwrap_err();
        assert!(matches!(err, TraceStoreError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
