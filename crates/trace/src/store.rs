//! Persistence for trace sets (the paper's "save as files" step).

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::{ModelTraces, SparseModelSpec, VariantId};

/// A keyed collection of [`ModelTraces`] with JSON save/load.
///
/// Entries are held densely, sorted by spec key; an entry's rank is its
/// [`VariantId`], shared with the `ModelInfoLut` built from the store so
/// hot paths can index by id instead of hashing string keys. Lookups by
/// spec ([`TraceStore::get`], [`TraceStore::variant_id`]) binary-search
/// with a stack-formatted key and never heap-allocate.
///
/// # Examples
///
/// ```
/// use dysta_trace::{SparseModelSpec, TraceGenerator, TraceStore};
/// use dysta_models::ModelId;
/// use dysta_sparsity::SparsityPattern;
///
/// let mut store = TraceStore::new();
/// let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
/// store.insert(TraceGenerator::default().generate(&spec, 4, 1));
/// assert!(store.get(&spec).is_some());
/// assert_eq!(store.variant_id(&spec).unwrap().index(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStore {
    /// Spec keys, sorted; parallel to `traces`.
    keys: Vec<String>,
    /// Trace sets in key order; index = `VariantId`.
    traces: Vec<ModelTraces>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Inserts a trace set, replacing any existing entry for the same
    /// spec, and returns the replaced entry if any.
    ///
    /// Inserting a *new* spec shifts the sorted-key ranks of every entry
    /// that sorts after it, invalidating any [`VariantId`]s (and any
    /// `ModelInfoLut`) minted earlier: resolve ids and build LUTs only
    /// after the store's contents are final. (Replacing an existing
    /// spec's traces keeps all ids stable.)
    pub fn insert(&mut self, traces: ModelTraces) -> Option<ModelTraces> {
        let key = traces.spec().key();
        match self.keys.binary_search(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.traces[i], traces)),
            Err(i) => {
                self.keys.insert(i, key);
                self.traces.insert(i, traces);
                None
            }
        }
    }

    /// The dense rank of a spec's entry, used to index the store and any
    /// LUT built from it. Stable until the next [`TraceStore::insert`].
    pub fn variant_id(&self, spec: &SparseModelSpec) -> Option<VariantId> {
        let probe = spec.spec_key();
        self.keys
            .binary_search_by(|k| k.as_str().cmp(probe.as_str()))
            .ok()
            .map(VariantId::from_index)
    }

    /// Looks up the traces for a spec (allocation-free binary search).
    pub fn get(&self, spec: &SparseModelSpec) -> Option<&ModelTraces> {
        self.variant_id(spec).map(|id| &self.traces[id.index()])
    }

    /// The traces stored under a variant id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this store.
    pub fn by_id(&self, id: VariantId) -> &ModelTraces {
        &self.traces[id.index()]
    }

    /// Number of stored variants.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterator over stored trace sets, in [`VariantId`] order.
    pub fn iter(&self) -> impl Iterator<Item = &ModelTraces> {
        self.traces.iter()
    }

    /// Serializes the store to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created or written.
    pub fn save(&self, path: &Path) -> Result<(), TraceStoreError> {
        let file = File::create(path).map_err(TraceStoreError::Io)?;
        serde_json::to_writer(BufWriter::new(file), self).map_err(TraceStoreError::Json)
    }

    /// Loads a store from a JSON file written by [`TraceStore::save`].
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Self, TraceStoreError> {
        let file = File::open(path).map_err(TraceStoreError::Io)?;
        serde_json::from_reader(BufReader::new(file)).map_err(TraceStoreError::Json)
    }
}

// The on-disk shape is unchanged from the map-backed implementation
// (`{"traces": {key: ModelTraces}}`); deserialization rebuilds entries
// through `insert` so key/order invariants hold for any input ordering.
impl Serialize for TraceStore {
    fn to_value(&self) -> Value {
        let entries = self
            .keys
            .iter()
            .zip(&self.traces)
            .map(|(k, t)| (k.clone(), t.to_value()))
            .collect();
        Value::Object(vec![("traces".to_string(), Value::Object(entries))])
    }
}

impl Deserialize for TraceStore {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let traces = value.field("traces")?;
        let Value::Object(entries) = traces else {
            return Err(DeError::new(format!(
                "expected trace map, found {}",
                traces.kind()
            )));
        };
        let mut store = TraceStore::new();
        for (_, v) in entries {
            store.insert(ModelTraces::from_value(v)?);
        }
        Ok(store)
    }
}

/// Error saving or loading a [`TraceStore`].
#[derive(Debug)]
pub enum TraceStoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON content.
    Json(serde_json::Error),
}

impl fmt::Display for TraceStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceStoreError::Io(e) => write!(f, "trace store I/O failure: {e}"),
            TraceStoreError::Json(e) => write!(f, "trace store serialization failure: {e}"),
        }
    }
}

impl std::error::Error for TraceStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceStoreError::Io(e) => Some(e),
            TraceStoreError::Json(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGenerator;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;

    #[test]
    fn insert_and_get() {
        let mut store = TraceStore::new();
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
        let t = TraceGenerator::default().generate(&spec, 2, 1);
        assert!(store.insert(t.clone()).is_none());
        assert_eq!(store.get(&spec), Some(&t));
        assert_eq!(store.len(), 1);
        // Replacement returns the old value.
        assert_eq!(store.insert(t.clone()), Some(t));
    }

    #[test]
    fn missing_spec_is_none() {
        let store = TraceStore::new();
        let spec = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0);
        assert!(store.get(&spec).is_none());
        assert!(store.variant_id(&spec).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn variant_ids_are_dense_sorted_key_ranks() {
        let mut store = TraceStore::new();
        let specs: Vec<SparseModelSpec> = [
            (ModelId::Vgg16, SparsityPattern::Dense, 0.0),
            (ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.7),
            (ModelId::Bert, SparsityPattern::Dense, 0.0),
        ]
        .into_iter()
        .map(|(m, p, r)| SparseModelSpec::new(m, p, r))
        .collect();
        for s in &specs {
            store.insert(TraceGenerator::default().generate(s, 2, 0));
        }
        // Ids cover 0..len and agree with iteration order.
        let mut seen = vec![false; store.len()];
        for s in &specs {
            let id = store.variant_id(s).expect("inserted");
            assert!(!seen[id.index()], "duplicate id");
            seen[id.index()] = true;
            assert_eq!(store.by_id(id).spec().key(), s.key());
        }
        assert!(seen.iter().all(|&s| s));
        for (rank, t) in store.iter().enumerate() {
            assert_eq!(
                store.variant_id(t.spec()),
                Some(VariantId::from_index(rank))
            );
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let mut store = TraceStore::new();
        for (model, pattern) in [
            (ModelId::MobileNet, SparsityPattern::RandomPointwise),
            (ModelId::Bert, SparsityPattern::Dense),
        ] {
            let spec = SparseModelSpec::new(model, pattern, 0.5);
            store.insert(TraceGenerator::default().generate(&spec, 3, 7));
        }
        let dir = std::env::temp_dir().join("dysta-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        store.save(&path).unwrap();
        let loaded = TraceStore::load(&path).unwrap();
        assert_eq!(store, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = TraceStore::load(Path::new("/nonexistent/dysta.json")).unwrap_err();
        assert!(matches!(err, TraceStoreError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
