//! Trace record types.

use std::fmt;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use dysta_models::ModelId;
use dysta_sparsity::{DatasetProfile, SparsityPattern};

/// Identifies one sparse-model variant: the unit the paper's LUTs key on
/// ("model-pattern pair") plus the dataset profile driving its dynamic
/// sparsity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparseModelSpec {
    /// Which benchmark architecture.
    pub model: ModelId,
    /// Weight-sparsity pattern.
    pub pattern: SparsityPattern,
    /// Weight-sparsity rate (ignored for `Dense`; fixed by N:M patterns).
    pub weight_rate: f64,
    /// Dataset profile driving dynamic sparsity.
    pub profile: DatasetProfile,
}

impl SparseModelSpec {
    /// Creates a spec with the model's default dataset profile.
    pub fn new(model: ModelId, pattern: SparsityPattern, weight_rate: f64) -> Self {
        SparseModelSpec {
            model,
            pattern,
            weight_rate,
            profile: DatasetProfile::default_for(model),
        }
    }

    /// Replaces the dataset profile.
    pub fn with_profile(mut self, profile: DatasetProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Stable string key (used by the trace store and LUTs).
    pub fn key(&self) -> String {
        self.spec_key().as_str().to_owned()
    }

    /// The same stable key formatted into a fixed stack buffer — the
    /// allocation-free probe the store's and LUT's lookup paths use.
    pub fn spec_key(&self) -> SpecKey {
        let mut key = SpecKey::default();
        write!(
            key,
            "{}|{}|{:.4}|{:?}",
            self.model, self.pattern, self.weight_rate, self.profile
        )
        .expect("spec key exceeds SpecKey capacity");
        key
    }
}

/// A spec key held in a fixed-capacity stack buffer, so lookups never
/// heap-allocate (the `format!`-per-probe cost this replaces showed up
/// in every scheduler LUT access).
#[derive(Debug, Clone, Copy)]
pub struct SpecKey {
    buf: [u8; SpecKey::CAPACITY],
    len: usize,
}

impl SpecKey {
    /// Longest key the buffer holds; ample for every model/pattern/profile
    /// combination in the zoo (keys run ~30-50 bytes).
    const CAPACITY: usize = 128;

    /// The formatted key.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len]).expect("SpecKey only stores UTF-8")
    }
}

impl Default for SpecKey {
    fn default() -> Self {
        SpecKey {
            buf: [0; SpecKey::CAPACITY],
            len: 0,
        }
    }
}

impl fmt::Write for SpecKey {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let bytes = s.as_bytes();
        let end = self.len + bytes.len();
        if end > SpecKey::CAPACITY {
            return Err(fmt::Error);
        }
        self.buf[self.len..end].copy_from_slice(bytes);
        self.len = end;
        Ok(())
    }
}

/// Dense handle of one profiled sparse-model variant.
///
/// Assigned by sorted-key rank when a [`crate::TraceStore`] (and the
/// `ModelInfoLut` built from it) is constructed, so schedulers index the
/// LUT with a plain array offset instead of hashing a formatted string
/// key on every decision. Resolved once per request at enqueue time; the
/// string-keyed lookups survive as slow-path conveniences for store
/// construction and serde.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VariantId(u32);

impl VariantId {
    /// Builds an id from a dense index (the variant's sorted-key rank).
    pub fn from_index(index: usize) -> Self {
        VariantId(u32::try_from(index).expect("variant count fits in u32"))
    }

    /// The dense index this id names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SparseModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} @ {:.0}%)",
            self.model,
            self.pattern,
            self.weight_rate * 100.0
        )
    }
}

/// Per-layer runtime record: what the hardware monitor would report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerRecord {
    /// Layer execution latency in nanoseconds.
    pub latency_ns: u64,
    /// Monitored layer sparsity (output-activation sparsity for CNN
    /// layers, attention-matrix sparsity for attention matmuls, 0
    /// otherwise).
    pub sparsity: f64,
}

/// The runtime information of one input sample on one sparse model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleTrace {
    layers: Vec<LayerRecord>,
    seq_scale: f64,
}

impl SampleTrace {
    /// Builds a trace from per-layer records.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<LayerRecord>, seq_scale: f64) -> Self {
        assert!(!layers.is_empty(), "trace must have at least one layer");
        SampleTrace { layers, seq_scale }
    }

    /// Per-layer records in execution order.
    pub fn layers(&self) -> &[LayerRecord] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Relative sequence length of this sample.
    pub fn seq_scale(&self) -> f64 {
        self.seq_scale
    }

    /// Total uninterrupted execution time (the paper's `T_isol`).
    pub fn isolated_latency_ns(&self) -> u64 {
        self.layers.iter().map(|l| l.latency_ns).sum()
    }

    /// True remaining execution time starting at layer `next_layer`
    /// (0 = nothing executed yet). Layers before `next_layer` are done.
    pub fn remaining_ns(&self, next_layer: usize) -> u64 {
        self.layers
            .iter()
            .skip(next_layer)
            .map(|l| l.latency_ns)
            .sum()
    }

    /// Mean monitored sparsity across layers that have a dynamic-sparsity
    /// source (non-zero records).
    pub fn mean_dynamic_sparsity(&self) -> f64 {
        let dynamic: Vec<f64> = self
            .layers
            .iter()
            .map(|l| l.sparsity)
            .filter(|&s| s > 0.0)
            .collect();
        if dynamic.is_empty() {
            0.0
        } else {
            dynamic.iter().sum::<f64>() / dynamic.len() as f64
        }
    }
}

/// All sampled traces of one sparse-model variant — the in-memory
/// equivalent of one Phase-1 CSV file, plus the LUT statistics derived
/// from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelTraces {
    spec: SparseModelSpec,
    samples: Vec<SampleTrace>,
}

impl ModelTraces {
    /// Bundles sampled traces for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the samples disagree on layer
    /// count.
    pub fn new(spec: SparseModelSpec, samples: Vec<SampleTrace>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples[0].num_layers();
        assert!(
            samples.iter().all(|s| s.num_layers() == n),
            "inconsistent layer counts"
        );
        ModelTraces { spec, samples }
    }

    /// The variant this trace set describes.
    pub fn spec(&self) -> &SparseModelSpec {
        &self.spec
    }

    /// All sampled traces.
    pub fn samples(&self) -> &[SampleTrace] {
        &self.samples
    }

    /// Number of sampled inputs.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Number of layers (identical across samples).
    pub fn num_layers(&self) -> usize {
        self.samples[0].num_layers()
    }

    /// Trace of sample `index`, wrapping around (the scheduler engine
    /// draws sample indices beyond the trace count).
    pub fn sample(&self, index: u64) -> &SampleTrace {
        &self.samples[(index % self.samples.len() as u64) as usize]
    }

    /// Average isolated latency over all samples — the latency-LUT entry
    /// the static scheduler uses (Algorithm 1, line 5).
    pub fn avg_latency_ns(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.isolated_latency_ns() as f64)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Average monitored sparsity of layer `layer` over all samples — the
    /// sparsity-LUT entry (Algorithm 3, line 4).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn avg_layer_sparsity(&self, layer: usize) -> f64 {
        assert!(layer < self.num_layers(), "layer index out of range");
        self.samples
            .iter()
            .map(|s| s.layers()[layer].sparsity)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Average per-layer latency profile.
    pub fn avg_layer_latency_ns(&self) -> Vec<f64> {
        let n = self.num_layers();
        let mut acc = vec![0.0; n];
        for s in &self.samples {
            for (i, l) in s.layers().iter().enumerate() {
                acc[i] += l.latency_ns as f64;
            }
        }
        for a in &mut acc {
            *a /= self.samples.len() as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(lat: &[u64], sp: &[f64]) -> SampleTrace {
        SampleTrace::new(
            lat.iter()
                .zip(sp)
                .map(|(&latency_ns, &sparsity)| LayerRecord {
                    latency_ns,
                    sparsity,
                })
                .collect(),
            1.0,
        )
    }

    #[test]
    fn isolated_and_remaining() {
        let t = trace(&[10, 20, 30], &[0.1, 0.2, 0.3]);
        assert_eq!(t.isolated_latency_ns(), 60);
        assert_eq!(t.remaining_ns(0), 60);
        assert_eq!(t.remaining_ns(1), 50);
        assert_eq!(t.remaining_ns(3), 0);
    }

    #[test]
    fn mean_dynamic_sparsity_ignores_zero_layers() {
        let t = trace(&[1, 1, 1], &[0.0, 0.4, 0.2]);
        assert!((t.mean_dynamic_sparsity() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn luts_average_over_samples() {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.8);
        let m = ModelTraces::new(
            spec,
            vec![trace(&[10, 10], &[0.2, 0.4]), trace(&[30, 10], &[0.4, 0.8])],
        );
        assert!((m.avg_latency_ns() - 30.0).abs() < 1e-12);
        assert!((m.avg_layer_sparsity(0) - 0.3).abs() < 1e-12);
        assert_eq!(m.avg_layer_latency_ns(), vec![20.0, 10.0]);
    }

    #[test]
    fn sample_wraps_around() {
        let spec = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0);
        let m = ModelTraces::new(spec, vec![trace(&[1], &[0.0]), trace(&[2], &[0.0])]);
        assert_eq!(m.sample(0).isolated_latency_ns(), 1);
        assert_eq!(m.sample(3).isolated_latency_ns(), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent layer counts")]
    fn rejects_ragged_samples() {
        let spec = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0);
        let _ = ModelTraces::new(spec, vec![trace(&[1], &[0.0]), trace(&[1, 2], &[0.0, 0.0])]);
    }

    #[test]
    fn spec_key_distinguishes_variants() {
        let a = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::RandomPointwise, 0.8);
        let b = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::ChannelWise, 0.8);
        let c = SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::RandomPointwise, 0.9);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }
}
