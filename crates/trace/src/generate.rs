//! Phase-1 trace generation: drive the accelerator models over sampled
//! inputs.

use dysta_accel::{Accelerator, AnyAccelerator, EyerissV2, Sanger, SparseContext};
use dysta_models::{zoo, ModelGraph};
use dysta_sparsity::{SampleSparsityGenerator, SparsityPattern};

use crate::{LayerRecord, ModelTraces, SampleTrace, SparseModelSpec};

/// Generates [`ModelTraces`] by iterating a sparse model over sampled
/// inputs on its target accelerator — the paper's "insert hardware
/// simulator via layer hooks and iterate through the dataset" step.
///
/// # Examples
///
/// ```
/// use dysta_trace::{SparseModelSpec, TraceGenerator};
/// use dysta_models::ModelId;
/// use dysta_sparsity::SparsityPattern;
///
/// let spec = SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0);
/// let traces = TraceGenerator::default().generate(&spec, 8, 1);
/// assert_eq!(traces.num_layers(), dysta_models::zoo::bert(384).num_layers());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceGenerator {
    eyeriss: EyerissV2,
    sanger: Sanger,
}

impl TraceGenerator {
    /// Creates a generator with customized accelerator models.
    pub fn new(eyeriss: EyerissV2, sanger: Sanger) -> Self {
        TraceGenerator { eyeriss, sanger }
    }

    /// Generates `count` sample traces for `spec`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn generate(&self, spec: &SparseModelSpec, count: u64, seed: u64) -> ModelTraces {
        assert!(count > 0, "need at least one sample");
        let model = zoo::build(spec.model);
        let accel = match AnyAccelerator::default_for(spec.model.family()) {
            AnyAccelerator::Eyeriss(_) => AnyAccelerator::Eyeriss(self.eyeriss.clone()),
            AnyAccelerator::Sanger(_) => AnyAccelerator::Sanger(self.sanger.clone()),
        };
        let sparsity_gen = SampleSparsityGenerator::new(&model, spec.profile, seed);
        let samples = (0..count)
            .map(|i| self.trace_one(&model, spec, &accel, &sparsity_gen, i))
            .collect();
        ModelTraces::new(*spec, samples)
    }

    fn trace_one(
        &self,
        model: &ModelGraph,
        spec: &SparseModelSpec,
        accel: &AnyAccelerator,
        sparsity_gen: &SampleSparsityGenerator,
        index: u64,
    ) -> SampleTrace {
        let sample = sparsity_gen.sample(index);
        let weight_rate = match spec.pattern {
            SparsityPattern::Dense => 0.0,
            SparsityPattern::BlockNm { n, m } => 1.0 - n as f64 / m as f64,
            _ => spec.weight_rate,
        };
        let mut prev_out_sparsity = 0.0;
        let layers = model
            .iter()
            .map(|(i, layer)| {
                let own = sample.layer(i);
                let ctx = SparseContext {
                    pattern: spec.pattern,
                    weight_rate,
                    input_activation_sparsity: prev_out_sparsity,
                    layer_sparsity: own,
                    seq_scale: sample.seq_scale(),
                };
                let latency_ns = accel.layer_latency_ns(layer, &ctx).round().max(1.0) as u64;
                // Attention-matrix sparsity does not propagate as input
                // activation sparsity; ReLU output sparsity does.
                prev_out_sparsity = if layer.relu() { own } else { 0.0 };
                // The hardware monitor counts zeros over the *nominal*
                // layer shape, so for attention layers the recorded
                // sparsity folds in the sample's sequence length: a short
                // prompt leaves most of the nominal attention matrix
                // empty. This is exactly the signal that makes the
                // monitored value predictive of remaining latency.
                let recorded = if layer.is_dynamic_attention() {
                    let nominal_density =
                        ((1.0 - own) * sample.seq_scale() * sample.seq_scale()).min(1.0);
                    1.0 - nominal_density
                } else {
                    own
                };
                LayerRecord {
                    latency_ns,
                    sparsity: recorded,
                }
            })
            .collect();
        SampleTrace::new(layers, sample.seq_scale())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::stats;

    #[test]
    fn deterministic_generation() {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.8);
        let g = TraceGenerator::default();
        assert_eq!(g.generate(&spec, 4, 9), g.generate(&spec, 4, 9));
    }

    #[test]
    fn latency_varies_across_samples_for_language_models() {
        let spec = SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0);
        let traces = TraceGenerator::default().generate(&spec, 64, 2);
        let lats: Vec<f64> = traces
            .samples()
            .iter()
            .map(|s| s.isolated_latency_ns() as f64)
            .collect();
        let cv = stats::std_dev(&lats) / stats::mean(&lats);
        // Sequence-length + attention-density dynamicity: strong variance.
        assert!(cv > 0.1, "coefficient of variation {cv}");
        // And a meaningful min-max spread (the paper's Fig. 1c shows ~4x).
        let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lats.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.8, "spread {}", max / min);
    }

    #[test]
    fn cnn_latency_varies_mildly_across_samples() {
        let spec = SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::RandomPointwise, 0.8);
        let traces = TraceGenerator::default().generate(&spec, 64, 3);
        let lats: Vec<f64> = traces
            .samples()
            .iter()
            .map(|s| s.isolated_latency_ns() as f64)
            .collect();
        let cv = stats::std_dev(&lats) / stats::mean(&lats);
        assert!(cv > 0.005 && cv < 0.3, "cv {cv}");
    }

    #[test]
    fn sparser_variant_is_faster() {
        let g = TraceGenerator::default();
        let dense = g.generate(
            &SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::Dense, 0.0),
            8,
            4,
        );
        let sparse = g.generate(
            &SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::RandomPointwise, 0.9),
            8,
            4,
        );
        assert!(sparse.avg_latency_ns() < dense.avg_latency_ns());
    }

    #[test]
    fn attention_layers_record_their_sparsity() {
        let spec = SparseModelSpec::new(ModelId::Gpt2, SparsityPattern::Dense, 0.0);
        let traces = TraceGenerator::default().generate(&spec, 4, 5);
        let model = zoo::gpt2(256);
        let attn = model.attention_layer_indices();
        let t = traces.sample(0);
        for &i in &attn {
            assert!(t.layers()[i].sparsity > 0.3, "layer {i}");
        }
    }
}
