//! CSV import/export of trace sets.
//!
//! The paper's artifact saves Phase-1 runtime information as CSV files
//! that the scheduler engine later replays. This module mirrors that
//! interchange format: one row per (sample, layer) with the monitored
//! latency and sparsity.

use std::fmt::Write as _;
use std::str::FromStr;

use dysta_models::ModelId;
use dysta_sparsity::{DatasetProfile, SparsityPattern};

use crate::{LayerRecord, ModelTraces, SampleTrace, SparseModelSpec};

/// Serialises one trace set to the CSV interchange format.
///
/// The header line carries the spec
/// (`# model,pattern,weight_rate,profile`), followed by
/// `sample,layer,latency_ns,sparsity,seq_scale` rows.
///
/// # Examples
///
/// ```
/// use dysta_trace::{csv, SparseModelSpec, TraceGenerator};
/// use dysta_models::ModelId;
/// use dysta_sparsity::SparsityPattern;
///
/// let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
/// let traces = TraceGenerator::default().generate(&spec, 2, 0);
/// let text = csv::to_csv(&traces);
/// let back = csv::from_csv(&text)?;
/// assert_eq!(traces, back);
/// # Ok::<(), dysta_trace::csv::CsvError>(())
/// ```
pub fn to_csv(traces: &ModelTraces) -> String {
    let spec = traces.spec();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {},{},{},{:?}",
        spec.model,
        spec.pattern.short_name(),
        spec.weight_rate,
        spec.profile
    );
    out.push_str("sample,layer,latency_ns,sparsity,seq_scale\n");
    for (i, sample) in traces.samples().iter().enumerate() {
        for (j, layer) in sample.layers().iter().enumerate() {
            let _ = writeln!(
                out,
                "{i},{j},{},{},{}",
                layer.latency_ns,
                layer.sparsity,
                sample.seq_scale()
            );
        }
    }
    out
}

/// Parses the CSV interchange format back into a trace set.
///
/// # Errors
///
/// Returns [`CsvError`] on malformed headers, fields, or ragged samples.
pub fn from_csv(text: &str) -> Result<ModelTraces, CsvError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(CsvError::MissingHeader)?;
    let spec = parse_spec(header)?;
    let columns = lines.next().ok_or(CsvError::MissingHeader)?;
    if columns.trim() != "sample,layer,latency_ns,sparsity,seq_scale" {
        return Err(CsvError::MissingHeader);
    }

    let mut samples: Vec<(Vec<LayerRecord>, f64)> = Vec::new();
    for (line_no, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(CsvError::BadRow { line: line_no + 3 });
        }
        let sample: usize = parse_field(fields[0], line_no)?;
        let layer: usize = parse_field(fields[1], line_no)?;
        let latency_ns: u64 = parse_field(fields[2], line_no)?;
        let sparsity: f64 = parse_field(fields[3], line_no)?;
        let seq_scale: f64 = parse_field(fields[4], line_no)?;
        if sample == samples.len() {
            samples.push((Vec::new(), seq_scale));
        }
        let current = samples
            .get_mut(sample)
            .ok_or(CsvError::BadRow { line: line_no + 3 })?;
        if layer != current.0.len() {
            return Err(CsvError::BadRow { line: line_no + 3 });
        }
        current.0.push(LayerRecord {
            latency_ns,
            sparsity,
        });
    }
    if samples.is_empty() {
        return Err(CsvError::Empty);
    }
    let samples = samples
        .into_iter()
        .map(|(layers, seq)| SampleTrace::new(layers, seq))
        .collect();
    Ok(ModelTraces::new(spec, samples))
}

fn parse_spec(header: &str) -> Result<SparseModelSpec, CsvError> {
    let body = header.strip_prefix("# ").ok_or(CsvError::MissingHeader)?;
    let parts: Vec<&str> = body.split(',').collect();
    if parts.len() != 4 {
        return Err(CsvError::MissingHeader);
    }
    let model = ModelId::from_str(parts[0]).map_err(|_| CsvError::BadSpec)?;
    let pattern = SparsityPattern::from_str(parts[1]).map_err(|_| CsvError::BadSpec)?;
    let weight_rate: f64 = parts[2].parse().map_err(|_| CsvError::BadSpec)?;
    let profile = parse_profile(parts[3]).ok_or(CsvError::BadSpec)?;
    Ok(SparseModelSpec::new(model, pattern, weight_rate).with_profile(profile))
}

fn parse_profile(s: &str) -> Option<DatasetProfile> {
    Some(match s {
        "ImageNet" => DatasetProfile::ImageNet,
        "ExDark" => DatasetProfile::ExDark,
        "DarkFace" => DatasetProfile::DarkFace,
        "Coco" => DatasetProfile::Coco,
        "VisionMixture" => DatasetProfile::VisionMixture,
        "Squad" => DatasetProfile::Squad,
        "Glue" => DatasetProfile::Glue,
        _ => return None,
    })
}

fn parse_field<T: FromStr>(s: &str, line_no: usize) -> Result<T, CsvError> {
    s.trim()
        .parse()
        .map_err(|_| CsvError::BadRow { line: line_no + 3 })
}

/// Errors from [`from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// File does not start with the spec + column headers.
    MissingHeader,
    /// The spec header could not be parsed.
    BadSpec,
    /// A data row is malformed or out of order.
    BadRow {
        /// 1-based line number.
        line: usize,
    },
    /// No data rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing csv header"),
            CsvError::BadSpec => write!(f, "unparseable spec header"),
            CsvError::BadRow { line } => write!(f, "malformed csv row at line {line}"),
            CsvError::Empty => write!(f, "csv contains no samples"),
        }
    }
}

impl std::error::Error for CsvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGenerator;

    fn traces() -> ModelTraces {
        let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.7);
        TraceGenerator::default().generate(&spec, 3, 1)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = traces();
        let back = from_csv(&to_csv(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn language_roundtrip_keeps_seq_scale() {
        let spec = SparseModelSpec::new(ModelId::Gpt2, SparsityPattern::Dense, 0.0);
        let t = TraceGenerator::default().generate(&spec, 2, 5);
        let back = from_csv(&to_csv(&t)).unwrap();
        assert_eq!(t, back);
        assert!(back.sample(0).seq_scale() > 0.0);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(from_csv(""), Err(CsvError::MissingHeader));
        assert_eq!(from_csv("sample,layer\n"), Err(CsvError::MissingHeader));
    }

    #[test]
    fn bad_spec_rejected() {
        let text = "# alexnet,random,0.5,ImageNet\nsample,layer,latency_ns,sparsity,seq_scale\n0,0,1,0.0,1.0\n";
        assert_eq!(from_csv(text), Err(CsvError::BadSpec));
    }

    #[test]
    fn bad_row_reports_line() {
        let good = to_csv(&traces());
        let corrupted = format!("{good}0,999,nope,0.0,1.0\n");
        assert!(matches!(from_csv(&corrupted), Err(CsvError::BadRow { .. })));
    }

    #[test]
    fn out_of_order_layer_rejected() {
        let text = "# mobilenet,random,0.7,VisionMixture\nsample,layer,latency_ns,sparsity,seq_scale\n0,1,5,0.0,1.0\n";
        assert!(matches!(from_csv(text), Err(CsvError::BadRow { .. })));
    }
}
