//! Phase-1 runtime-information traces.
//!
//! The paper's evaluation methodology (its Figure 7) has two phases. In
//! *Phase 1: Hardware Simulation*, every (model, input) pair is pushed
//! through the target accelerator's simulator once, recording per-layer
//! latency and monitored sparsity; the results are saved as files. In
//! *Phase 2: Scheduling Evaluation*, the scheduler engine replays this
//! runtime information to simulate multi-tenant execution.
//!
//! This crate is Phase 1: [`TraceGenerator`] drives the
//! [`dysta_accel`] performance models over per-sample sparsity draws from
//! [`dysta_sparsity`], producing [`ModelTraces`] (one per sparse-model
//! variant, the in-memory equivalent of the paper's CSV files) with the
//! derived statistics the Dysta LUTs need (average latency, average
//! per-layer sparsity). [`TraceStore`] persists the whole set with serde.
//!
//! # Examples
//!
//! ```
//! use dysta_trace::{SparseModelSpec, TraceGenerator};
//! use dysta_models::ModelId;
//! use dysta_sparsity::SparsityPattern;
//!
//! let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.8);
//! let traces = TraceGenerator::default().generate(&spec, 16, 42);
//! assert_eq!(traces.num_samples(), 16);
//! assert!(traces.avg_latency_ns() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
mod generate;
mod record;
mod store;

pub use generate::TraceGenerator;
pub use record::{LayerRecord, ModelTraces, SampleTrace, SparseModelSpec, SpecKey, VariantId};
pub use store::{TraceStore, TraceStoreError};
