//! Scheduler decision latency: supports the paper's claim that the Dysta
//! scheduler is lightweight enough to run at layer granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dysta::core::{ModelInfoLut, Policy, TaskState};
use dysta::workload::{Scenario, WorkloadBuilder};

/// Builds a realistic scheduling point: `n` in-flight requests with
/// partially executed layers.
fn queue_of(n: usize) -> (Vec<TaskState>, ModelInfoLut) {
    let w = WorkloadBuilder::new(Scenario::MultiAttNn)
        .num_requests(n)
        .samples_per_variant(8)
        .seed(0)
        .build();
    let lut = ModelInfoLut::from_store(w.store());
    let tasks: Vec<TaskState> = w
        .requests()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let trace = w.trace_for(r);
            let progress = (i * 7) % trace.num_layers();
            TaskState {
                id: r.id,
                spec: r.spec,
                arrival_ns: r.arrival_ns,
                slo_ns: r.slo_ns,
                next_layer: progress,
                num_layers: trace.num_layers(),
                executed_ns: trace.layers()[..progress]
                    .iter()
                    .map(|l| l.latency_ns)
                    .sum(),
                monitored: trace.layers()[..progress]
                    .iter()
                    .map(|l| dysta::core::MonitoredLayer {
                        sparsity: l.sparsity,
                        latency_ns: l.latency_ns,
                    })
                    .collect(),
                true_remaining_ns: trace.remaining_ns(progress),
            }
        })
        .collect();
    (tasks, lut)
}

fn bench_pick_next(c: &mut Criterion) {
    let mut group = c.benchmark_group("pick_next");
    for &queue_len in &[4usize, 16, 64] {
        let (tasks, lut) = queue_of(queue_len);
        let queue: Vec<&TaskState> = tasks.iter().collect();
        for policy in [
            Policy::Fcfs,
            Policy::Sjf,
            Policy::Prema,
            Policy::Dysta,
            Policy::Oracle,
        ] {
            let mut sched = policy.build();
            // Register arrivals for stateful schedulers.
            for t in &tasks {
                sched.on_arrival(t, &lut, t.arrival_ns);
            }
            group.bench_with_input(
                BenchmarkId::new(policy.name(), queue_len),
                &queue_len,
                |b, _| b.iter(|| sched.pick_next(std::hint::black_box(&queue), &lut, 1_000_000)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_pick_next
}
criterion_main!(benches);
