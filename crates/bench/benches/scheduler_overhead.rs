//! Scheduler decision latency: supports the paper's claim that the Dysta
//! scheduler is lightweight enough to run at layer granularity.
//!
//! Queue depths run to 256 so the O(queue) single-pass pick is exercised
//! well past the paper's operating points (deep queues are where the
//! old per-comparison score re-evaluation hurt most).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dysta::core::{Policy, TaskQueue};
use dysta_bench::mid_execution_tasks;

fn bench_pick_next(c: &mut Criterion) {
    let mut group = c.benchmark_group("pick_next");
    for &queue_len in &[4usize, 16, 64, 256] {
        let (tasks, lut) = mid_execution_tasks(queue_len);
        for policy in [
            Policy::Fcfs,
            Policy::Sjf,
            Policy::Prema,
            Policy::Dysta,
            Policy::Oracle,
        ] {
            let mut sched = policy.build();
            // Register arrivals for stateful schedulers.
            for t in &tasks {
                sched.on_arrival(t, &lut, t.arrival_ns);
            }
            group.bench_with_input(
                BenchmarkId::new(policy.name(), queue_len),
                &queue_len,
                |b, _| {
                    b.iter(|| {
                        sched.pick_next(
                            std::hint::black_box(TaskQueue::dense(&tasks)),
                            &lut,
                            1_000_000,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_pick_next
}
criterion_main!(benches);
