//! Sparse latency predictor throughput per coefficient strategy,
//! including the FP16 hardware datapath.
//!
//! Covers a mid-execution task and a long-monitored-history task (the
//! case that exposed the old O(executed-layers) per-call re-scan — the
//! incremental summary must keep `last_one`/`average_all` flat in
//! history length).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dysta::core::{CoeffStrategy, ModelInfoLut, MonitoredLayer, SparseLatencyPredictor, TaskState};
use dysta::hw::{ComputeUnit, F16};
use dysta::models::ModelId;
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator, TraceStore};

/// A task that has executed `executed` of its layers, with the monitored
/// stream and running sparsity summary populated the way the engine
/// maintains them.
fn task_at(executed_frac: f64) -> (TaskState, ModelInfoLut, SparseModelSpec) {
    let spec = SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0);
    let traces = TraceGenerator::default().generate(&spec, 8, 0);
    let mut store = TraceStore::new();
    store.insert(traces.clone());
    let lut = ModelInfoLut::from_store(&store);
    let variant = lut.variant_id(&spec).expect("spec profiled");
    let trace = traces.sample(0);
    let upto = ((trace.num_layers() as f64 * executed_frac) as usize).min(trace.num_layers() - 1);
    let mut task = TaskState {
        next_layer: upto,
        monitored: trace.layers()[..upto]
            .iter()
            .map(|l| MonitoredLayer {
                sparsity: l.sparsity,
                latency_ns: l.latency_ns,
            })
            .collect(),
        true_remaining_ns: trace.remaining_ns(upto),
        ..TaskState::arrived(0, spec, variant, 0, u64::MAX / 2, trace.num_layers())
    };
    task.rebuild_sparsity_summary(lut.info(variant));
    (task, lut, spec)
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor");
    for (case, frac) in [("midway", 0.5), ("long_history", 0.98)] {
        let (task, lut, spec) = task_at(frac);
        let info = lut.expect(&spec);
        for (name, strategy) in [
            ("average_all", CoeffStrategy::AverageAll),
            ("last_3", CoeffStrategy::LastN(3)),
            ("last_one", CoeffStrategy::LastOne),
        ] {
            let p = SparseLatencyPredictor::new(strategy, 1.0);
            group.bench_with_input(
                BenchmarkId::new(format!("remaining_ns_{case}"), name),
                &p,
                |b, p| b.iter(|| p.remaining_ns(std::hint::black_box(&task), info)),
            );
        }
    }
    group.finish();
}

fn bench_fp16_datapath(c: &mut Criterion) {
    c.bench_function("fp16_coefficient_and_score", |b| {
        let mut cu = ComputeUnit::new();
        b.iter(|| {
            let gamma = cu.coefficient(std::hint::black_box(256), 1024, F16::from_f64(1.0 / 0.25));
            cu.score(
                gamma,
                F16::from_f64(30.0),
                F16::from_f64(400.0),
                F16::ZERO,
                F16::from_f64(12.0),
                F16::from_f64(0.25),
                F16::from_f64(0.03),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_strategies, bench_fp16_datapath
}
criterion_main!(benches);
