//! Discrete-event engine throughput: layer events simulated per second.
//!
//! Keeps the full-scale experiments (1000 requests × ~100 layers × 5
//! seeds × dozens of configurations) tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dysta::core::Policy;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for (name, scenario) in [
        ("multi_attnn", Scenario::MultiAttNn),
        ("multi_cnn", Scenario::MultiCnn),
    ] {
        let workload = WorkloadBuilder::new(scenario)
            .num_requests(100)
            .samples_per_variant(16)
            .seed(0)
            .build();
        let total_layers: u64 = workload
            .requests()
            .iter()
            .map(|r| workload.trace_for(r).num_layers() as u64)
            .sum();
        group.throughput(Throughput::Elements(total_layers));
        for policy in [Policy::Fcfs, Policy::Dysta] {
            group.bench_with_input(BenchmarkId::new(name, policy.name()), &workload, |b, w| {
                b.iter(|| {
                    simulate(
                        std::hint::black_box(w),
                        policy.build().as_mut(),
                        &EngineConfig::default(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_engine
}
criterion_main!(benches);
