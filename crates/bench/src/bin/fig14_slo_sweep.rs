//! Figure 14: robustness across latency SLO multipliers (10x–150x), at
//! two arrival rates per workload family, including the Oracle — plus
//! the cluster-level extension: deadline-aware (EDF) dispatch vs
//! jsq/affinity across *tight* SLO multipliers on a
//! capacity-heterogeneous pool.

use dysta::cluster::{
    balanced_mixed_serving_mix, simulate_cluster, ClusterBuilder, DispatchPolicy,
};
use dysta::core::{DystaConfig, Policy};
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{banner, compare_policies, Scale};

const POLICIES: [Policy; 7] = [
    Policy::Fcfs,
    Policy::Sjf,
    Policy::Prema,
    Policy::Planaria,
    Policy::Sdrm3,
    Policy::Oracle,
    Policy::Dysta,
];

fn main() {
    banner(
        "Figure 14",
        "violation rate and ANTT across latency SLO multipliers",
    );
    let scale = Scale::from_env();
    let multipliers = [10.0, 25.0, 50.0, 100.0, 150.0];
    for (title, scenario, rates) in [
        ("Multi-AttNNs", Scenario::MultiAttNn, [30.0, 40.0]),
        ("Multi-CNNs", Scenario::MultiCnn, [3.0, 4.0]),
    ] {
        for rate in rates {
            println!("--- {title} @ {rate} samples/s ---");
            println!("SLO violation rate [%]:");
            print!("{:<14}", "policy");
            for m in multipliers {
                print!("{:>9}", format!("x{m:.0}"));
            }
            println!();
            let mut all_rows = Vec::new();
            for m in multipliers {
                all_rows.push(compare_policies(
                    scenario,
                    rate,
                    m,
                    scale,
                    &POLICIES,
                    DystaConfig::default(),
                ));
            }
            for (i, policy) in POLICIES.iter().enumerate() {
                print!("{:<14}", policy.name());
                for row in &all_rows {
                    print!("{:>8.1}%", row[i].metrics.violation_rate * 100.0);
                }
                println!();
            }
            println!("ANTT:");
            print!("{:<14}", "policy");
            for m in multipliers {
                print!("{:>9}", format!("x{m:.0}"));
            }
            println!();
            for (i, policy) in POLICIES.iter().enumerate() {
                print!("{:<14}", policy.name());
                for row in &all_rows {
                    print!("{:>9.2}", row[i].metrics.antt);
                }
                println!();
            }
            println!();
        }
    }
    println!("shape to preserve: both metrics fall as the SLO relaxes; Dysta");
    println!("tracks the Oracle and stays lowest across the whole sweep");
    println!();
    cluster_edf_sweep(scale);
}

/// The cluster-level slice of the SLO sweep: the deadline-aware `edf`
/// dispatcher against `jsq` and `affinity` on a heterogeneous 2+2 pool
/// where one node of each family runs at 0.5 capacity, under tight SLO
/// multipliers. `edf` charges each node's capacity and mismatch penalty
/// against the inbound request, so it dodges the slow nodes exactly
/// when the deadline cannot absorb them.
fn cluster_edf_sweep(scale: Scale) {
    banner(
        "Figure 14 (cluster)",
        "EDF vs jsq/affinity across tight SLO multipliers, capacity-heterogeneous pool",
    );
    const DISPATCHERS: [DispatchPolicy; 3] = [
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::SparsityAffinity,
        DispatchPolicy::EarliestDeadlineFirst,
    ];
    let multipliers = [3.0, 5.0, 10.0];
    println!("mixed CNN+AttNN traffic at 30 samples/s, 2x Eyeriss + 2x Sanger,");
    println!("one node per family at 0.5 capacity\n");
    // One pass over the grid; both tables print from the stored cells.
    let cells: Vec<Vec<(f64, f64)>> = DISPATCHERS
        .iter()
        .map(|dispatch| {
            multipliers
                .iter()
                .map(|&m| {
                    let mut antt = 0.0;
                    let mut viol = 0.0;
                    for seed in 0..scale.seeds {
                        let w = WorkloadBuilder::from_mix(balanced_mixed_serving_mix())
                            .arrival_rate(30.0)
                            .slo_multiplier(m)
                            .num_requests(scale.requests)
                            .samples_per_variant(scale.samples_per_variant)
                            .seed(seed * 7919 + 13)
                            .build();
                        let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
                            .node_capacity(1, 0.5)
                            .node_capacity(3, 0.5)
                            .build();
                        let r = simulate_cluster(&w, dispatch.build().as_mut(), &pool);
                        antt += r.antt();
                        viol += r.violation_rate();
                    }
                    let n = scale.seeds as f64;
                    (antt / n, viol / n)
                })
                .collect()
        })
        .collect();
    for metric in ["SLO violation rate [%]", "ANTT"] {
        println!("{metric}:");
        print!("{:<14}", "dispatch");
        for m in multipliers {
            print!("{:>9}", format!("x{m:.0}"));
        }
        println!();
        for (dispatch, row) in DISPATCHERS.iter().zip(&cells) {
            print!("{:<14}", dispatch.name());
            for (antt, viol) in row {
                if metric.starts_with("SLO") {
                    print!("{:>8.1}%", viol * 100.0);
                } else {
                    print!("{:>9.2}", antt);
                }
            }
            println!();
        }
        println!();
    }
    println!("shape to preserve: at the tightest multiplier edf beats affinity on");
    println!("violations AND ANTT (both far below jsq); at looser multipliers the two");
    println!("coincide to within noise — edf routes exactly like affinity whenever no");
    println!("deadline is at risk, and only spills under pressure");
}
