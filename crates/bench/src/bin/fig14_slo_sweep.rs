//! Figure 14: robustness across latency SLO multipliers (10x–150x), at
//! two arrival rates per workload family, including the Oracle.

use dysta::core::{DystaConfig, Policy};
use dysta::workload::Scenario;
use dysta_bench::{banner, compare_policies, Scale};

const POLICIES: [Policy; 7] = [
    Policy::Fcfs,
    Policy::Sjf,
    Policy::Prema,
    Policy::Planaria,
    Policy::Sdrm3,
    Policy::Oracle,
    Policy::Dysta,
];

fn main() {
    banner(
        "Figure 14",
        "violation rate and ANTT across latency SLO multipliers",
    );
    let scale = Scale::from_env();
    let multipliers = [10.0, 25.0, 50.0, 100.0, 150.0];
    for (title, scenario, rates) in [
        ("Multi-AttNNs", Scenario::MultiAttNn, [30.0, 40.0]),
        ("Multi-CNNs", Scenario::MultiCnn, [3.0, 4.0]),
    ] {
        for rate in rates {
            println!("--- {title} @ {rate} samples/s ---");
            println!("SLO violation rate [%]:");
            print!("{:<14}", "policy");
            for m in multipliers {
                print!("{:>9}", format!("x{m:.0}"));
            }
            println!();
            let mut all_rows = Vec::new();
            for m in multipliers {
                all_rows.push(compare_policies(
                    scenario,
                    rate,
                    m,
                    scale,
                    &POLICIES,
                    DystaConfig::default(),
                ));
            }
            for (i, policy) in POLICIES.iter().enumerate() {
                print!("{:<14}", policy.name());
                for row in &all_rows {
                    print!("{:>8.1}%", row[i].metrics.violation_rate * 100.0);
                }
                println!();
            }
            println!("ANTT:");
            print!("{:<14}", "policy");
            for m in multipliers {
                print!("{:>9}", format!("x{m:.0}"));
            }
            println!();
            for (i, policy) in POLICIES.iter().enumerate() {
                print!("{:<14}", policy.name());
                for row in &all_rows {
                    print!("{:>9.2}", row[i].metrics.antt);
                }
                println!();
            }
            println!();
        }
    }
    println!("shape to preserve: both metrics fall as the SLO relaxes; Dysta");
    println!("tracks the Oracle and stays lowest across the whole sweep");
}
