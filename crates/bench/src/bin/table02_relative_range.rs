//! Table 2: relative range of network sparsity across input samples.
//!
//! Network sparsity = average of per-layer activation sparsities;
//! relative range = (max − min) / mean over the dataset.

use dysta::models::{zoo, ModelId};
use dysta::sparsity::stats::relative_range;
use dysta::sparsity::{DatasetProfile, SampleSparsityGenerator};
use dysta_bench::{banner, Scale};

fn main() {
    banner("Table 2", "relative range of network sparsity");
    let scale = Scale::from_env();
    let samples = (scale.samples_per_variant * 16).max(512);
    let paper: [(ModelId, f64); 4] = [
        (ModelId::GoogLeNet, 28.3),
        (ModelId::Vgg16, 21.8),
        (ModelId::InceptionV3, 23.0),
        (ModelId::ResNet50, 15.1),
    ];
    println!("{:<12} {:>16} {:>14}", "model", "measured [%]", "paper [%]");
    for (id, paper_pct) in paper {
        let model = zoo::build(id);
        let generator = SampleSparsityGenerator::new(&model, DatasetProfile::VisionMixture, 0);
        let nets: Vec<f64> = generator
            .samples(samples)
            .iter()
            .map(|s| s.network_sparsity())
            .collect();
        println!(
            "{:<12} {:>16.1} {:>14.1}",
            id.to_string(),
            relative_range(&nets) * 100.0,
            paper_pct
        );
    }
}
