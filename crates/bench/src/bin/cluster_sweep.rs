//! Cluster sweep: node count x dispatch policy x scenario, seed-averaged.
//!
//! The cluster-scale counterpart of the paper's Table 5: every dispatch
//! policy serves identical request streams, per-node arrival rates stay
//! at the paper's single-node operating points (3 samples/s per Eyeriss
//! node, 30 per Sanger node), and each cell averages the configured seed
//! count. Reports cluster ANTT, SLO violation rate, throughput, and load
//! imbalance; `DYSTA_QUICK=1` drops to smoke-test scale.
//!
//! A serving-front-end section sweeps work stealing and request
//! migration on the pool shape affinity routing stresses most
//! (CNN-only traffic on a heterogeneous installation), an
//! admission-control section compares admit-all against the
//! reject/degrade policies on the capacity-heterogeneous pool at tight
//! SLOs, and a fault-injection section crashes a node mid-stream to
//! compare salvage-and-redispatch recovery against letting the work
//! die with the node.

use dysta::cluster::{
    balanced_mixed_serving_mix, simulate_cluster, simulate_cluster_with, AcceleratorKind,
    AdmissionPolicy, AdmitAll, ClusterBuilder, ClusterConfig, ClusterPolicy, DispatchPolicy,
    FaultConfig, FaultSchedule, FrontendConfig, InfeasibleEverywhere, MigrationConfig,
    RecoveryConfig, SlackLoadShedding, StealConfig, TransferCostConfig,
};
use dysta::core::Policy;
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{banner, Scale};

struct Cell {
    antt: f64,
    violation: f64,
    throughput: f64,
    imbalance: f64,
}

/// One pool shape of the sweep.
enum Pool {
    Homogeneous(AcceleratorKind),
    /// Half Eyeriss-V2, half Sanger (odd remainders go to Sanger).
    Mixed,
}

fn pool_config(pool: &Pool, nodes: usize) -> ClusterConfig {
    match pool {
        Pool::Homogeneous(kind) => ClusterConfig::homogeneous(nodes, *kind, Policy::Dysta),
        Pool::Mixed => ClusterConfig::heterogeneous(nodes / 2, nodes - nodes / 2, Policy::Dysta),
    }
}

fn workload_builder(scenario: &SweepScenario, rate: f64) -> WorkloadBuilder {
    match scenario {
        SweepScenario::Preset(s) => WorkloadBuilder::new(*s).arrival_rate(rate),
        SweepScenario::MixedTraffic => {
            WorkloadBuilder::from_mix(balanced_mixed_serving_mix()).arrival_rate(rate)
        }
    }
}

enum SweepScenario {
    Preset(Scenario),
    /// CNN + AttNN traffic blended onto one pool.
    MixedTraffic,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "cluster_sweep",
        "node count x dispatch policy x scenario (seed-averaged)",
    );

    let sweeps: [(&str, SweepScenario, Pool, f64); 3] = [
        (
            "multi-cnn / eyeriss pool",
            SweepScenario::Preset(Scenario::MultiCnn),
            Pool::Homogeneous(AcceleratorKind::EyerissV2),
            3.0,
        ),
        (
            "multi-attnn / sanger pool",
            SweepScenario::Preset(Scenario::MultiAttNn),
            Pool::Homogeneous(AcceleratorKind::Sanger),
            30.0,
        ),
        (
            "mixed traffic / eyeriss+sanger pool",
            SweepScenario::MixedTraffic,
            Pool::Mixed,
            10.0,
        ),
    ];

    for (title, scenario, pool, per_node_rate) in &sweeps {
        println!("\n=== {title} (rate {per_node_rate}/s per node) ===");
        println!(
            "{:<6} {:<14} {:>8} {:>9} {:>12} {:>10}",
            "nodes", "dispatch", "ANTT", "viol %", "thr inf/s", "imbalance"
        );
        for nodes in [2usize, 4, 8] {
            let mut rows: Vec<(DispatchPolicy, Cell)> = Vec::new();
            for dispatch in DispatchPolicy::ALL {
                let mut cell = Cell {
                    antt: 0.0,
                    violation: 0.0,
                    throughput: 0.0,
                    imbalance: 0.0,
                };
                for seed in 0..scale.seeds {
                    let workload = workload_builder(scenario, per_node_rate * nodes as f64)
                        .num_requests(scale.requests)
                        .samples_per_variant(scale.samples_per_variant)
                        .seed(seed * 7919 + 13)
                        .build();
                    let config = pool_config(pool, nodes);
                    let report = simulate_cluster(&workload, dispatch.build().as_mut(), &config);
                    cell.antt += report.antt();
                    cell.violation += report.violation_rate();
                    cell.throughput += report.throughput_inf_s();
                    cell.imbalance += report.load_imbalance();
                }
                let n = scale.seeds as f64;
                cell.antt /= n;
                cell.violation /= n;
                cell.throughput /= n;
                cell.imbalance /= n;
                rows.push((dispatch, cell));
            }
            for (dispatch, cell) in &rows {
                println!(
                    "{:<6} {:<14} {:>8.3} {:>8.1}% {:>12.1} {:>10.2}",
                    nodes,
                    dispatch.name(),
                    cell.antt,
                    cell.violation * 100.0,
                    cell.throughput,
                    cell.imbalance,
                );
            }
            let rr = rows
                .iter()
                .find(|(d, _)| *d == DispatchPolicy::RoundRobin)
                .expect("round-robin is in ALL");
            for informed in [
                DispatchPolicy::JoinShortestQueue,
                DispatchPolicy::SparsityAffinity,
            ] {
                let row = rows
                    .iter()
                    .find(|(d, _)| *d == informed)
                    .expect("policy is in ALL");
                println!(
                    "       -> {} vs round-robin ANTT: {:.3} vs {:.3} ({})",
                    informed.name(),
                    row.1.antt,
                    rr.1.antt,
                    if row.1.antt < rr.1.antt {
                        "better"
                    } else {
                        "worse"
                    },
                );
            }
            println!();
        }
    }

    serving_frontend_sweep(&scale);
    admission_sweep(&scale);
    faults_sweep(&scale);
}

/// The serving front-end on a heterogeneous pool: CNN-only traffic
/// saturates the Eyeriss half while the Sanger half idles unless
/// stealing/migration put it to work. The last two rows are the
/// `ClusterPolicy` clients: the default *costed* transfer model under
/// the re-tuned thresholds (every move pays a weight/activation
/// re-fetch on the receiving node), and deadline-aware `edf` dispatch
/// on top of it — both covered by the CI smoke run.
fn serving_frontend_sweep(scale: &Scale) {
    println!("\n=== serving front-end / CNN traffic on eyeriss+sanger pool ===");
    println!(
        "{:<22} {:>8} {:>9} {:>10} {:>10} {:>7} {:>9} {:>9}",
        "front-end", "ANTT", "viol %", "p99 ms", "imbalance", "steals", "migrated", "fetch ms"
    );
    let free = TransferCostConfig::FREE;
    let costed = TransferCostConfig::default_costed();
    let rows: [(&str, FrontendConfig, TransferCostConfig, DispatchPolicy); 5] = [
        (
            "immediate",
            FrontendConfig::default(),
            free,
            DispatchPolicy::SparsityAffinity,
        ),
        (
            "steal",
            FrontendConfig {
                steal: Some(StealConfig::default()),
                ..FrontendConfig::default()
            },
            free,
            DispatchPolicy::SparsityAffinity,
        ),
        (
            "steal+migrate",
            FrontendConfig {
                steal: Some(StealConfig::default()),
                migration: Some(MigrationConfig::default()),
                ..FrontendConfig::default()
            },
            free,
            DispatchPolicy::SparsityAffinity,
        ),
        (
            "steal+migrate costed",
            FrontendConfig::serving_costed(),
            costed,
            DispatchPolicy::SparsityAffinity,
        ),
        (
            "edf costed",
            FrontendConfig::serving_costed(),
            costed,
            DispatchPolicy::EarliestDeadlineFirst,
        ),
    ];
    for (name, frontend, transfer_cost, dispatch) in rows {
        let mut antt = 0.0;
        let mut viol = 0.0;
        let mut p99 = 0.0;
        let mut imbalance = 0.0;
        let mut steals = 0u64;
        let mut migrations = 0u64;
        let mut fetch_ms = 0.0;
        for seed in 0..scale.seeds {
            let workload = WorkloadBuilder::new(Scenario::MultiCnn)
                .arrival_rate(12.0)
                .num_requests(scale.requests)
                .samples_per_variant(scale.samples_per_variant)
                .seed(seed * 7919 + 13)
                .build();
            let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
                .frontend(frontend)
                .transfer_cost(transfer_cost)
                .build();
            let report = simulate_cluster(&workload, dispatch.build().as_mut(), &pool);
            antt += report.antt();
            viol += report.violation_rate();
            p99 += report.turnaround_percentile_ns(99.0) as f64 / 1e6;
            imbalance += report.load_imbalance();
            steals += report.serving().steals;
            migrations += report.serving().migrations;
            fetch_ms += report.serving().transfer_cost_ns as f64 / 1e6;
        }
        // Counters are seed-averaged like every other column, so a row
        // reads as "one run at this operating point".
        let n = scale.seeds as f64;
        println!(
            "{:<22} {:>8.3} {:>8.1}% {:>10.1} {:>10.2} {:>7.1} {:>9.1} {:>9.1}",
            name,
            antt / n,
            viol / n * 100.0,
            p99 / n,
            imbalance / n,
            steals as f64 / n,
            migrations as f64 / n,
            fetch_ms / n,
        );
    }
}

/// Fault injection on the `fig_faults` schedule: a transient crash of
/// node 0 mid-stream plus a brown-out window on node 2, served by the
/// mixed-traffic workload on the capacity-heterogeneous pool. The
/// recovery rows are the golden cells: salvage-and-redispatch with
/// queue-time reneging must strictly beat letting crashed work die
/// with the node on both goodput and violation rate. Covered by the
/// CI smoke run.
fn faults_sweep(scale: &Scale) {
    println!(
        "\n=== fault injection / transient crash + brownout on capacity-het 2+2 pool (slo x2) ==="
    );
    println!(
        "{:<10} {:<16} {:>8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>11}",
        "dispatch",
        "recovery",
        "ANTT",
        "viol %",
        "goodput",
        "failed",
        "reneged",
        "salvaged",
        "retries",
        "lost ms"
    );
    let schedule = FaultSchedule::new()
        .transient_crash(0, 1_500_000_000, 2_500_000_000)
        .brownout(2, 800_000_000, 2_000_000_000, 0.5);
    let recoveries: [(&str, RecoveryConfig); 2] = [
        (
            "salvage+renege",
            RecoveryConfig {
                salvage: true,
                max_retries: 2,
                reneging: true,
            },
        ),
        (
            "none",
            RecoveryConfig {
                salvage: false,
                max_retries: 0,
                reneging: false,
            },
        ),
    ];
    for dispatch in [
        DispatchPolicy::SparsityAffinity,
        DispatchPolicy::EarliestDeadlineFirst,
    ] {
        for (name, recovery) in &recoveries {
            let mut antt = 0.0;
            let mut viol = 0.0;
            let mut goodput = 0usize;
            let mut failed = 0usize;
            let mut reneged = 0usize;
            let mut salvaged = 0u64;
            let mut retries = 0u64;
            let mut lost_ms = 0.0;
            for seed in 0..scale.seeds {
                let workload = WorkloadBuilder::from_mix(balanced_mixed_serving_mix())
                    .arrival_rate(45.0)
                    .slo_multiplier(2.0)
                    .num_requests(scale.requests)
                    .samples_per_variant(scale.samples_per_variant)
                    .seed(seed * 7919 + 13)
                    .build();
                let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Fcfs)
                    .node_capacity(1, 0.5)
                    .node_capacity(3, 0.5)
                    .frontend(FrontendConfig::serving())
                    .faults(FaultConfig {
                        schedule: schedule.clone(),
                        recovery: *recovery,
                    })
                    .build();
                let report = simulate_cluster(&workload, dispatch.build().as_mut(), &pool);
                antt += report.antt();
                viol += report.violation_rate();
                goodput += report.goodput();
                failed += report.failed_total();
                reneged += report.reneged_total();
                salvaged += report.recovery().salvaged;
                retries += report.recovery().retries;
                lost_ms += report.recovery().lost_busy_ns as f64 / 1e6;
            }
            let n = scale.seeds as f64;
            println!(
                "{:<10} {:<16} {:>8.3} {:>8.1}% {:>9.1} {:>8.1} {:>8.1} {:>9.1} {:>9.1} {:>11.1}",
                dispatch.name(),
                name,
                antt / n,
                viol / n * 100.0,
                goodput as f64 / n,
                failed as f64 / n,
                reneged as f64 / n,
                salvaged as f64 / n,
                retries as f64 / n,
                lost_ms / n,
            );
        }
    }
}

/// Admission control on the fig14 capacity-heterogeneous pool at tight
/// SLOs, with FCFS node scheduling — the shape where doomed
/// head-of-queue work genuinely blocks feasible work. The three
/// `AdmissionPolicy` rows per dispatcher are the `fig_admission` golden
/// cells: rejecting infeasible-everywhere requests must cut the
/// violation rate among admitted work without costing goodput, and
/// slack-based load shedding cuts it further by re-classing
/// thin-headroom admissions. Covered by the CI smoke run.
fn admission_sweep(scale: &Scale) {
    println!(
        "\n=== admission control / mixed traffic on capacity-het 2+2 pool (fcfs nodes, slo x2) ==="
    );
    println!(
        "{:<10} {:<22} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "dispatch", "admission", "ANTT", "viol %", "goodput", "rejected", "degraded", "good %"
    );
    type AdmissionBuilder = fn() -> Box<dyn AdmissionPolicy>;
    let builders: [(&str, AdmissionBuilder); 3] = [
        ("admit-all", || Box::new(AdmitAll::new())),
        ("infeasible-everywhere", || {
            Box::new(InfeasibleEverywhere::new())
        }),
        ("slack-load-shed", || Box::new(SlackLoadShedding::new())),
    ];
    for dispatch in [
        DispatchPolicy::SparsityAffinity,
        DispatchPolicy::EarliestDeadlineFirst,
    ] {
        for (name, admission) in &builders {
            let mut antt = 0.0;
            let mut viol = 0.0;
            let mut goodput = 0usize;
            let mut rejected = 0usize;
            let mut degraded = 0usize;
            let mut good_rate = 0.0;
            for seed in 0..scale.seeds {
                let workload = WorkloadBuilder::from_mix(balanced_mixed_serving_mix())
                    .arrival_rate(45.0)
                    .slo_multiplier(2.0)
                    .num_requests(scale.requests)
                    .samples_per_variant(scale.samples_per_variant)
                    .seed(seed * 7919 + 13)
                    .build();
                let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Fcfs)
                    .node_capacity(1, 0.5)
                    .node_capacity(3, 0.5)
                    .build();
                let mut policy = ClusterPolicy::from_dispatch(dispatch).with_admission(admission());
                let report = simulate_cluster_with(&workload, &mut policy, &pool);
                antt += report.antt();
                viol += report.violation_rate();
                goodput += report.goodput();
                rejected += report.rejected_total();
                degraded += report.degraded_total();
                good_rate += report.goodput_rate();
            }
            let n = scale.seeds as f64;
            println!(
                "{:<10} {:<22} {:>8.3} {:>8.1}% {:>9.1} {:>9.1} {:>9.1} {:>8.1}%",
                dispatch.name(),
                name,
                antt / n,
                viol / n * 100.0,
                goodput as f64 / n,
                rejected as f64 / n,
                degraded as f64 / n,
                good_rate / n * 100.0,
            );
        }
    }
}
