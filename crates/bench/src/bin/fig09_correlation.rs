//! Figure 9: Pearson correlation of per-layer attention sparsity in BERT
//! and GPT-2 — the observation motivating the linear latency predictor.

use dysta::models::{zoo, ModelGraph};
use dysta::sparsity::stats::correlation_matrix;
use dysta::sparsity::{DatasetProfile, SampleSparsityGenerator};
use dysta_bench::{banner, Scale};

fn correlation(model: &ModelGraph, profile: DatasetProfile, samples: u64) {
    println!("--- {} ({:?}) ---", model.id(), profile);
    let generator = SampleSparsityGenerator::new(model, profile, 0);
    let draws = generator.samples(samples);
    // One observation column per transformer block: the block's
    // attention-score layer sparsity.
    let score_layers: Vec<usize> = model
        .iter()
        .filter(|(_, l)| {
            matches!(l.kind(), dysta::models::LayerKind::AttentionScore(_))
                && !l.name().contains("_x_")
        })
        .map(|(i, _)| i)
        .collect();
    let rows: Vec<Vec<f64>> = draws
        .iter()
        .map(|s| score_layers.iter().map(|&i| s.layer(i)).collect())
        .collect();
    let matrix = correlation_matrix(&rows);
    print!("     ");
    for j in 0..matrix.len() {
        print!("{j:>5}");
    }
    println!();
    let mut min_off = 1.0f64;
    for (i, row) in matrix.iter().enumerate() {
        print!("{i:>4} ");
        for (j, v) in row.iter().enumerate() {
            print!("{v:>5.2}");
            if i != j {
                min_off = min_off.min(*v);
            }
        }
        println!();
    }
    println!("minimum off-diagonal correlation: {min_off:.2}\n");
}

fn main() {
    banner("Figure 9", "per-layer sparsity correlation (BERT / GPT-2)");
    let scale = Scale::from_env();
    let samples = (scale.samples_per_variant * 8).max(256);
    correlation(&zoo::bert(384), DatasetProfile::Squad, samples);
    correlation(&zoo::gpt2(128), DatasetProfile::Glue, samples);
    println!("paper reports: layer sparsities are highly linearly correlated,");
    println!("justifying the linear (last-one) sparse latency predictor");
}
