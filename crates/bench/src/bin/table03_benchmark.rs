//! Table 3: the sparse multi-DNN benchmark summary — models, deployment
//! scenarios, and their profiled characteristics on the target hardware.

use dysta::models::{zoo, ModelFamily, ModelId};
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator};
use dysta_bench::banner;

fn scenario_of(model: ModelId) -> (&'static str, &'static str) {
    match model {
        ModelId::Ssd => ("Data Center / AR-VR", "Object & Hand Detection"),
        ModelId::Vgg16 | ModelId::ResNet50 => ("Data Center", "Image Classification"),
        ModelId::MobileNet => ("AR/VR Wearables", "Gesture Recognition"),
        ModelId::GoogLeNet | ModelId::InceptionV3 => ("Profiling only", "Table 2 sparsity study"),
        ModelId::Bart | ModelId::Gpt2 => ("Mobile Phone", "Machine Translation"),
        ModelId::Bert => ("Mobile Phone", "Question & Answering"),
    }
}

fn main() {
    banner("Table 3", "benchmark models and scenarios");
    println!(
        "{:<12} {:<6} {:>7} {:>10} {:>10} {:>12} {:<22}",
        "model", "family", "layers", "GMACs", "Mparams", "isolated", "scenario"
    );
    let generator = TraceGenerator::default();
    for id in ModelId::ALL {
        let graph = zoo::build(id);
        let spec = SparseModelSpec::new(
            id,
            if id.family() == ModelFamily::Cnn {
                SparsityPattern::RandomPointwise
            } else {
                SparsityPattern::Dense
            },
            if id.family() == ModelFamily::Cnn {
                0.8
            } else {
                0.0
            },
        );
        let traces = generator.generate(&spec, 16, 0);
        let (scenario, task) = scenario_of(id);
        println!(
            "{:<12} {:<6} {:>7} {:>10.2} {:>10.1} {:>9.1} ms {:<22}",
            id.to_string(),
            graph.family().to_string(),
            graph.num_layers(),
            graph.total_macs() as f64 / 1e9,
            graph.total_params() as f64 / 1e6,
            traces.avg_latency_ns() / 1e6,
            format!("{scenario}: {task}"),
        );
    }
    println!();
    println!("isolated = profiled average on the family's target accelerator");
    println!("(Eyeriss-V2 for CNNs at 80% random weight sparsity, Sanger for");
    println!("AttNNs under dynamic attention sparsity)");
}
