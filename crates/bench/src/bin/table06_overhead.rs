//! Table 6: resource overhead of the Dysta hardware scheduler relative
//! to the Eyeriss-V2 accelerator (FIFO depth 64, Opt_FP16).

use dysta::hw::resources::{eyeriss_v2_baseline, overhead_percent, DesignPoint};
use dysta_bench::banner;

fn main() {
    banner("Table 6", "resource overhead of the Dysta scheduler");
    let eyeriss = eyeriss_v2_baseline();
    let sched = DesignPoint::opt_fp16(64).usage();
    let combined = eyeriss.plus(sched);
    println!(
        "{:<18} {:>8} {:>6} {:>14}",
        "module", "LUTs", "DSPs", "On-chip RAM"
    );
    for (name, u) in [
        ("Eyeriss-V2", eyeriss),
        ("Scheduler", sched),
        ("Dysta-Eyeriss-V2", combined),
    ] {
        println!(
            "{:<18} {:>8} {:>6} {:>11.2} KB",
            name, u.luts, u.dsps, u.ram_kb
        );
    }
    let (lut, dsp, ram) = overhead_percent(sched, eyeriss);
    println!(
        "{:<18} {:>7.2}% {:>5.1}% {:>12.2}%",
        "Total Overhead", lut, dsp, ram
    );
    println!();
    println!("paper reports: scheduler 553 LUTs / 3 DSPs / 0.5 KB;");
    println!("overhead 0.55% LUTs, 1.5% DSPs, 0.35% RAM");
}
