//! Fleet-scale sweep: the seed × policy × scenario × SLO grid fanned
//! over the vendored thread pool, with byte-identical JSON at any
//! worker count.
//!
//! `--threads N` (default 1) sets the pool size; `--json <path>`
//! writes the rows as JSON — the CI sweep-smoke step runs the quick
//! grid at 1 and 4 threads and diffs the two files. `DYSTA_QUICK=1`
//! shrinks the grid the same way it shrinks every other experiment
//! binary.

use dysta::cluster::{
    ClusterConfig, DispatchPolicy, SweepGrid, SweepRow, SweepScenario, MAX_THREADS,
};
use dysta::core::Policy;
use dysta::workload::Scenario;
use dysta_bench::{banner, Scale};

/// Parses `--threads N` / `--json <path>` from the command line.
fn args() -> (usize, Option<std::path::PathBuf>) {
    let mut threads = 1usize;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                // Same bound the ClusterBuilder knob validates, so both
                // entry points reject 0 / oversized counts identically.
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| (1..=MAX_THREADS).contains(n))
                    .unwrap_or_else(|| {
                        eprintln!("--threads requires an integer in 1..={MAX_THREADS}");
                        std::process::exit(2);
                    })
            }
            "--json" => {
                json = Some(
                    args.next()
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| {
                            eprintln!("--json requires a path argument");
                            std::process::exit(2);
                        }),
                )
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: fleet_sweep [--threads N] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    (threads, json)
}

/// The sweep grid at the run scale: every dispatcher over both paper
/// scenarios at their operating points, one seed per scale seed.
fn grid(scale: Scale) -> SweepGrid {
    SweepGrid::new(ClusterConfig::heterogeneous(2, 2, Policy::Dysta))
        .seeds((0..scale.seeds).map(|s| s * 7919 + 13).collect())
        .policies(DispatchPolicy::ALL.to_vec())
        .scenarios(vec![
            SweepScenario::new("multi_attnn", Scenario::MultiAttNn, 30.0),
            SweepScenario::new("multi_cnn", Scenario::MultiCnn, 3.0),
        ])
        .slo_multipliers(vec![10.0])
        .requests(scale.requests as u64)
        .samples_per_variant(scale.samples_per_variant)
}

fn main() {
    banner(
        "Fleet sweep",
        "seed x policy x scenario grid over the thread pool",
    );
    let (threads, json_path) = args();
    let scale = Scale::from_env();
    let grid = grid(scale);
    println!(
        "{} cells ({} seeds x {} policies x {} scenarios), {} requests/cell, {} thread(s)\n",
        grid.cell_count(),
        grid.seeds.len(),
        grid.policies.len(),
        grid.scenarios.len(),
        grid.requests,
        threads,
    );

    let t0 = std::time::Instant::now();
    let rows = grid.run(threads);
    let wall = t0.elapsed();

    // Per-policy means across seeds, per scenario — the fleet view.
    println!(
        "{:<14} {:<12} {:>8} {:>10} {:>10}",
        "policy", "scenario", "ANTT", "viol [%]", "thr inf/s"
    );
    for policy in &grid.policies {
        for scenario in &grid.scenarios {
            let cells: Vec<&SweepRow> = rows
                .iter()
                .filter(|r| r.policy == policy.name() && r.scenario == scenario.name)
                .collect();
            let n = cells.len() as f64;
            println!(
                "{:<14} {:<12} {:>8.3} {:>9.1}% {:>10.1}",
                policy.name(),
                scenario.name,
                cells.iter().map(|r| r.antt).sum::<f64>() / n,
                cells.iter().map(|r| r.violation_rate).sum::<f64>() / n * 100.0,
                cells.iter().map(|r| r.throughput_inf_s).sum::<f64>() / n,
            );
        }
    }
    println!(
        "\nwall time: {:.1} ms on {} thread(s) — rows are byte-identical at any count",
        wall.as_secs_f64() * 1e3,
        threads
    );

    if let Some(path) = json_path {
        let json = SweepGrid::rows_to_json(&rows);
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {} rows to {}", rows.len(), path.display());
    }
}
