//! CI smoke check for the tracing layer: runs a small traced serving
//! scenario, validates the event stream, writes the Perfetto export to
//! a file, reads it back, and asserts the JSON parses with well-formed
//! per-request event sequences. Exits non-zero (with a human-readable
//! reason) on any malformation, so a broken exporter fails the build
//! rather than shipping an unopenable trace.
//!
//! Usage: `trace_check [output.json]` (default `target/trace_check.json`).

use dysta::cluster::{
    simulate_cluster_traced, ClusterBuilder, ClusterPolicy, DispatchPolicy, FrontendConfig,
    TransferCostConfig,
};
use dysta::core::Policy;
use dysta::obs::RingTracer;
use dysta::workload::{Scenario, WorkloadBuilder};

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace_check.json".to_string());

    // Small but eventful: a heterogeneous pool with the full serving
    // front-end (batching, stealing, migration, costed transfers), so
    // the trace exercises every event kind the exporters handle.
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(9.0)
        .slo_multiplier(10.0)
        .num_requests(60)
        .samples_per_variant(8)
        .seed(7)
        .build();
    let pool = ClusterBuilder::heterogeneous(1, 1, Policy::Dysta)
        .frontend(FrontendConfig::serving_costed())
        .transfer_cost(TransferCostConfig::default_costed())
        .build();
    let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::SparsityAffinity);
    let tracer = RingTracer::new(1 << 16);
    let report = simulate_cluster_traced(&workload, &mut policy, &pool, &tracer);

    if tracer.dropped() > 0 {
        fail("ring overflowed on the smoke scenario; grow the capacity");
    }
    if let Err(e) = tracer.validate() {
        fail(&format!("event stream malformed: {e}"));
    }

    // Per-request timelines must be consistent with the report.
    let timelines = tracer.timelines();
    if timelines.len() != workload.requests().len() {
        fail(&format!(
            "expected {} request timelines, got {}",
            workload.requests().len(),
            timelines.len()
        ));
    }
    let completed = timelines
        .iter()
        .filter(|t| t.completion_ns.is_some())
        .count();
    if completed != report.completed_total() {
        fail(&format!(
            "trace shows {completed} completions, report says {}",
            report.completed_total()
        ));
    }

    // Export must round-trip through a JSON parser.
    let json = tracer.perfetto_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    let raw =
        std::fs::read_to_string(&out).unwrap_or_else(|e| fail(&format!("cannot re-read: {e}")));
    let parsed: serde::Value = serde_json::from_str(&raw)
        .unwrap_or_else(|e| fail(&format!("export is not valid JSON: {e}")));
    let events = match parsed
        .field("traceEvents")
        .unwrap_or_else(|e| fail(&format!("export lacks traceEvents: {e}")))
    {
        serde::Value::Array(a) => a,
        _ => fail("traceEvents is not an array"),
    };
    if events.is_empty() {
        fail("export holds no events");
    }
    // Every Chrome-trace record needs a phase and a pid.
    for e in events {
        if e.field("ph").is_err() || e.field("pid").is_err() {
            fail("trace event missing required ph/pid fields");
        }
    }

    println!(
        "trace_check: OK — {} events ({} requests, {} completed) exported to {out} and re-parsed",
        events.len(),
        timelines.len(),
        completed,
    );
}
