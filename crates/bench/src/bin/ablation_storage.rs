//! Ablation: sparse-storage format crossovers per sparsity pattern.
//!
//! Prices the compressed footprint of ResNet-50's weights under each
//! storage format, pattern and rate — the "efficient sparse-storage
//! schemes" dimension of the paper's Section 2.2 substrate.

use dysta::accel::storage::StorageFormat;
use dysta::models::zoo;
use dysta::sparsity::SparsityPattern;
use dysta_bench::banner;

fn main() {
    banner(
        "Ablation",
        "sparse-storage format comparison (ResNet-50 weights)",
    );
    let model = zoo::resnet50();
    let params = model.total_params();
    let formats = [
        StorageFormat::Dense,
        StorageFormat::Bitmap,
        StorageFormat::Csr { index_bits: 16 },
        StorageFormat::RunLength { run_bits: 16 },
    ];
    println!("compressed size [MB] at pattern-typical zero clustering:");
    print!("{:<22}", "pattern @ rate");
    for f in &formats {
        print!("{:>12}", format!("{f:?}").split(['{', ' ']).next().unwrap());
    }
    println!();
    for (pattern, rate) in [
        (SparsityPattern::RandomPointwise, 0.5),
        (SparsityPattern::RandomPointwise, 0.8),
        (SparsityPattern::RandomPointwise, 0.95),
        (SparsityPattern::BlockNm { n: 2, m: 4 }, 0.5),
        (SparsityPattern::ChannelWise, 0.5),
        (SparsityPattern::ChannelWise, 0.8),
    ] {
        let run = StorageFormat::typical_zero_run(pattern, rate, 576);
        print!("{:<22}", format!("{pattern} @ {:.0}%", rate * 100.0));
        for f in &formats {
            print!("{:>12.2}", f.bytes(params, rate, run) / 1e6);
        }
        println!();
    }
    println!();
    println!("preferred format per pattern:");
    for pattern in SparsityPattern::ALL {
        println!(
            "  {:<10} -> {:?}",
            pattern.short_name(),
            StorageFormat::preferred_for(pattern)
        );
    }
    println!();
    println!("expectation: bitmap wins for scattered point-wise zeros at");
    println!("moderate rates, CSR at extreme sparsity, run-length once");
    println!("zeros cluster into whole pruned filters");
}
