//! Figure 3: activation sparsity of the last six weighted layers of
//! ResNet-50 and VGG-16, including low-light (ExDark/DarkFace) inputs.
//!
//! The paper observes per-layer sparsity ratios mostly ranging 10%–45%+
//! with large variance once out-of-distribution images are included.

use dysta::models::zoo;
use dysta::sparsity::stats::{mean, std_dev};
use dysta::sparsity::{DatasetProfile, SampleSparsityGenerator};
use dysta_bench::{banner, Scale};

fn main() {
    banner(
        "Figure 3",
        "sparsity ratios of ResNet-50 and VGG-16 (last six layers)",
    );
    let scale = Scale::from_env();
    let samples = (scale.samples_per_variant * 16).max(512);
    for model in [zoo::resnet50(), zoo::vgg16()] {
        println!(
            "--- {} (VisionMixture: ImageNet + ExDark + DarkFace) ---",
            model.id()
        );
        let generator = SampleSparsityGenerator::new(&model, DatasetProfile::VisionMixture, 0);
        let draws = generator.samples(samples);
        let relu_layers = model.relu_layer_indices();
        let last_six: Vec<usize> = relu_layers.iter().rev().take(6).rev().copied().collect();
        println!(
            "{:<6} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "layer", "mean", "std", "min", "max", "range"
        );
        for (rank, &layer) in last_six.iter().enumerate() {
            let xs: Vec<f64> = draws.iter().map(|s| s.layer(layer)).collect();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "{:<6} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                rank + 1,
                mean(&xs),
                std_dev(&xs),
                min,
                max,
                max - min
            );
        }
        println!();
    }
    println!("paper reports: sparsity of most layers ranges ~10% to ~45%+ with");
    println!("large variance from low-light / less-informative inputs");
}
