//! Table 4: RMSE of the sparse latency predictor under the average-all,
//! last-N (N = 3) and last-one coefficient strategies, on BERT and GPT-2.
//!
//! At every layer boundary of every sampled trace the predictor estimates
//! the remaining latency; RMSE is computed against the trace ground truth
//! in seconds (the paper's reported magnitudes are in the 1e-4 range).

use dysta::core::{CoeffStrategy, ModelInfoLut, MonitoredLayer, SparseLatencyPredictor, TaskState};
use dysta::models::ModelId;
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator, TraceStore};
use dysta_bench::{banner, Scale};

fn rmse_for(model: ModelId, strategy: CoeffStrategy, samples: u64) -> f64 {
    let spec = SparseModelSpec::new(model, SparsityPattern::Dense, 0.0);
    let traces = TraceGenerator::default().generate(&spec, samples, 7);
    let mut store = TraceStore::new();
    store.insert(traces.clone());
    let lut = ModelInfoLut::from_store(&store);
    let info = lut.expect(&spec);
    let predictor = SparseLatencyPredictor::new(strategy, 1.0);

    let variant = lut.variant_id(&spec).expect("spec profiled");
    let mut sq_err = 0.0;
    let mut count = 0u64;
    for idx in 0..traces.num_samples() as u64 {
        let trace = traces.sample(idx);
        let mut task = TaskState {
            true_remaining_ns: trace.isolated_latency_ns(),
            ..TaskState::arrived(idx, spec, variant, 0, u64::MAX / 2, trace.num_layers())
        };
        for (j, layer) in trace.layers().iter().enumerate() {
            task.next_layer = j + 1;
            // Feed the monitor stream the way the engine does, keeping
            // the incremental sparsity summary in lockstep.
            task.record_layer(
                MonitoredLayer {
                    sparsity: layer.sparsity,
                    latency_ns: layer.latency_ns,
                },
                info,
            );
            let predicted_s = predictor.remaining_ns(&task, info) / 1e9;
            let truth_s = trace.remaining_ns(j + 1) as f64 / 1e9;
            sq_err += (predicted_s - truth_s).powi(2);
            count += 1;
        }
    }
    (sq_err / count as f64).sqrt()
}

fn main() {
    banner("Table 4", "RMSE of the sparse latency predictor [seconds]");
    let scale = Scale::from_env();
    let samples = (scale.samples_per_variant * 4).max(128);
    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "model", "average-all", "last-3", "last-one"
    );
    for model in [ModelId::Bert, ModelId::Gpt2] {
        let all = rmse_for(model, CoeffStrategy::AverageAll, samples);
        let last_n = rmse_for(model, CoeffStrategy::LastN(3), samples);
        let last_one = rmse_for(model, CoeffStrategy::LastOne, samples);
        println!(
            "{:<8} {:>14.6} {:>14.6} {:>14.6}",
            model.to_string(),
            all,
            last_n,
            last_one
        );
    }
    println!();
    println!("paper reports (BERT):  avg-all 0.000286, last-3 0.000419, last-one 0.000252");
    println!("paper reports (GPT-2): avg-all 0.000218, last-3 0.000421, last-one 0.000226");
    println!("shape to preserve: last-one ~ average-all, both clearly usable;");
    println!("last-one is chosen for its lower hardware cost");
}
