//! Figure 1: the motivating examples of sparse multi-DNN dynamicity.
//!
//! (b) two CNNs with the *same* sparsity rate but different patterns
//!     deliver different latencies; (c) a simple prompt is shorter and
//!     sparser — hence several times faster — than a complex one.

use dysta::models::ModelId;
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator};
use dysta_bench::banner;

fn main() {
    banner("Figure 1", "sparsity pattern and dynamicity examples");
    let generator = TraceGenerator::default();

    println!("(b) sparsity pattern at identical 83% rate (ResNet-50):");
    for pattern in [
        SparsityPattern::RandomPointwise,
        SparsityPattern::ChannelWise,
    ] {
        let spec = SparseModelSpec::new(ModelId::ResNet50, pattern, 0.83);
        let traces = generator.generate(&spec, 32, 0);
        println!(
            "    {:<10} pattern, rate 83% -> isolated latency {:6.1} ms",
            pattern,
            traces.avg_latency_ns() / 1e6
        );
    }
    println!();

    println!("(c) sparsity dynamicity (GPT-2 under dynamic attention pruning):");
    let spec = SparseModelSpec::new(ModelId::Gpt2, SparsityPattern::Dense, 0.0);
    let traces = generator.generate(&spec, 256, 0);
    let simple = (0..traces.num_samples() as u64)
        .min_by_key(|&i| traces.sample(i).isolated_latency_ns())
        .unwrap();
    let complex = (0..traces.num_samples() as u64)
        .max_by_key(|&i| traces.sample(i).isolated_latency_ns())
        .unwrap();
    for (label, idx) in [("simple prompt", simple), ("complex prompt", complex)] {
        let t = traces.sample(idx);
        println!(
            "    {:<15} latency {:5.1} ms, dynamic sparsity {:4.1}%, rel. length {:.2}",
            label,
            t.isolated_latency_ns() as f64 / 1e6,
            t.mean_dynamic_sparsity() * 100.0,
            t.seq_scale()
        );
    }
    let ratio = traces.sample(complex).isolated_latency_ns() as f64
        / traces.sample(simple).isolated_latency_ns() as f64;
    println!("    complex/simple latency ratio: {ratio:.1}x");
    println!();
    println!("paper's example: simple 1 ms @ 90% sparsity vs complex 4 ms @ 30%");
}
