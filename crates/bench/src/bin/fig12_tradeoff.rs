//! Figure 12: the ANTT / SLO-violation trade-off plane.
//!
//! Multi-AttNN workloads at 30 and 40 samples/s; multi-CNN at 3 and 4.
//! The paper shows Dysta in the lower-left (Pareto) corner of every
//! plane.

use dysta::core::{DystaConfig, Policy};
use dysta::workload::Scenario;
use dysta_bench::{banner, compare_policies, Scale};

fn main() {
    banner("Figure 12", "SLO violation rate vs ANTT trade-off");
    let scale = Scale::from_env();
    for (title, scenario, rates) in [
        ("Multi-AttNNs", Scenario::MultiAttNn, [30.0, 40.0]),
        ("Multi-CNNs", Scenario::MultiCnn, [3.0, 4.0]),
    ] {
        for rate in rates {
            println!("--- {title} @ {rate} samples/s (SLO x10) ---");
            println!("{:<14} {:>10} {:>8}", "policy", "viol [%]", "ANTT");
            let rows = compare_policies(
                scenario,
                rate,
                10.0,
                scale,
                &Policy::TABLE5,
                DystaConfig::default(),
            );
            let dysta = rows
                .iter()
                .find(|r| r.policy == Policy::Dysta)
                .expect("dysta in set")
                .metrics;
            for row in &rows {
                let pareto = row.metrics.violation_rate >= dysta.violation_rate - 1e-9
                    && row.metrics.antt >= dysta.antt - 1e-9;
                println!(
                    "{:<14} {:>9.1}% {:>8.2}{}",
                    row.policy.name(),
                    row.metrics.violation_rate * 100.0,
                    row.metrics.antt,
                    if row.policy == Policy::Dysta {
                        "   <- Dysta"
                    } else if pareto {
                        "   (dominated by Dysta)"
                    } else {
                        ""
                    }
                );
            }
            println!();
        }
    }
    println!("shape to preserve: Dysta sits at the lower-left corner of the");
    println!("violation-rate/ANTT plane at every arrival rate");
}
