//! Ablation: preemption (context-switch) overhead.
//!
//! The paper's penalty term exists to bound preemption frequency. This
//! ablation sweeps the per-switch cost and reports how each scheduler's
//! preemption count and metrics respond.

use dysta::core::Policy;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{banner, Scale};

fn main() {
    banner("Ablation", "context-switch overhead sensitivity");
    let scale = Scale::from_env();
    for (title, scenario, rate) in [
        ("Multi-AttNNs @ 30/s", Scenario::MultiAttNn, 30.0),
        ("Multi-CNNs @ 3/s", Scenario::MultiCnn, 3.0),
    ] {
        println!("--- {title} ---");
        println!(
            "{:<12} {:<10} {:>8} {:>10} {:>12}",
            "overhead", "policy", "ANTT", "viol [%]", "switches"
        );
        for overhead_us in [0u64, 20, 100, 500] {
            let config = EngineConfig {
                preemption_overhead_ns: overhead_us * 1000,
                ..EngineConfig::default()
            };
            for policy in [Policy::Fcfs, Policy::Sjf, Policy::Dysta] {
                let mut antt = 0.0;
                let mut viol = 0.0;
                let mut switches = 0u64;
                for seed in 0..scale.seeds {
                    let w = WorkloadBuilder::new(scenario)
                        .arrival_rate(rate)
                        .slo_multiplier(10.0)
                        .num_requests(scale.requests)
                        .samples_per_variant(scale.samples_per_variant)
                        .seed(seed)
                        .build();
                    let report = simulate(&w, policy.build().as_mut(), &config);
                    let m = report.metrics();
                    antt += m.antt;
                    viol += m.violation_rate;
                    switches += report.preemptions();
                }
                let n = scale.seeds as f64;
                println!(
                    "{:<12} {:<10} {:>8.2} {:>9.1}% {:>12}",
                    format!("{overhead_us} us"),
                    policy.name(),
                    antt / n,
                    viol / n * 100.0,
                    (switches as f64 / n).round() as u64
                );
            }
        }
        println!();
    }
    println!("expectation: Dysta's waiting-time penalty keeps its switch");
    println!("count bounded, so its advantage survives realistic context-");
    println!("switch costs; FCFS never switches mid-task and is immune");
}
