//! CI smoke for the shipped scenario files: every `scenarios/*.json`
//! must parse through the validating loader and actually serve — a
//! bounded streamed prefix is run through a small cluster so a file
//! that validates but generates garbage (or a loader/generator drift)
//! fails the pipeline instead of the first user who tries the example.
//!
//! Usage: `scenario_smoke [scenarios-dir]` (default `scenarios/`).

use dysta::cluster::{simulate_cluster_stream, ClusterConfig, DispatchPolicy};
use dysta::core::Policy;
use dysta::workload::{load_scenario, RequestSource, StreamSpec};

/// Cap on the streamed prefix per file: enough to cross the shipped
/// phase boundaries' first seconds without burning CI minutes on the
/// files' full million-request-scale runs.
const MAX_REQUESTS: u64 = 1_000;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "scenarios".to_string());
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read scenario dir {dir}: {e}"))
        .map(|entry| entry.expect("readable directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no scenario files found under {dir}");

    for path in &files {
        let spec = load_scenario(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Serve a bounded prefix: same phases, mix, and trace
        // resolution, capped request count.
        let capped = StreamSpec {
            num_requests: spec.num_requests.min(MAX_REQUESTS),
            ..spec
        };
        let store = capped.build_store();
        let mut source = capped.source(&store);
        let first_arrival = source.peek_arrival_ns().expect("stream is non-empty");
        let pool = ClusterConfig::heterogeneous(2, 2, Policy::Dysta);
        let report = simulate_cluster_stream(
            source,
            DispatchPolicy::SparsityAffinity.build().as_mut(),
            &pool,
        );
        assert_eq!(
            report.completed_total() as u64,
            capped.num_requests,
            "{}: every streamed request must complete on the open pool",
            path.display()
        );
        println!(
            "ok {:<28} {} phases, {} requests streamed (first arrival {:.3} s), \
             p99 {:.2} ms, peak live {}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            capped.phases.len(),
            capped.num_requests,
            first_arrival as f64 / 1e9,
            report.turnaround_percentile_ns(0.99) as f64 / 1e6,
            report.serving().peak_live_requests,
        );
    }
    println!(
        "{} scenario files parsed, validated, and served",
        files.len()
    );
}
