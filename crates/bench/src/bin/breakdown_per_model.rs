//! Per-tenant breakdown: which models each scheduler sacrifices.
//!
//! FCFS queues short interactive models behind long ones; EDF-style
//! schedulers starve long models near their deadlines; Dysta balances.
//! This view explains the aggregate Table 5 numbers.

use dysta::core::Policy;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{banner, Scale};

fn main() {
    banner("Breakdown", "per-model ANTT / violation rate by scheduler");
    let scale = Scale::from_env();
    for (title, scenario, rate) in [
        ("Multi-AttNNs @ 30/s", Scenario::MultiAttNn, 30.0),
        ("Multi-CNNs @ 3/s", Scenario::MultiCnn, 3.0),
    ] {
        println!("--- {title} (SLO x10, seed 0, {} reqs) ---", scale.requests);
        let workload = WorkloadBuilder::new(scenario)
            .arrival_rate(rate)
            .slo_multiplier(10.0)
            .num_requests(scale.requests)
            .samples_per_variant(scale.samples_per_variant)
            .seed(0)
            .build();
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::Planaria, Policy::Dysta] {
            let report = simulate(&workload, policy.build().as_mut(), &EngineConfig::default());
            println!("{}:", policy.name());
            println!(
                "  {:<12} {:>6} {:>8} {:>10}",
                "model", "reqs", "ANTT", "viol [%]"
            );
            for (model, n, antt, viol) in report.per_model() {
                println!(
                    "  {:<12} {:>6} {:>8.2} {:>9.1}%",
                    model.to_string(),
                    n,
                    antt,
                    viol * 100.0
                );
            }
        }
        println!();
    }
    println!("expectation: FCFS's worst ANTT concentrates on the shortest");
    println!("model (stuck behind long jobs); Dysta keeps every tenant's");
    println!("ANTT and violations low simultaneously");
}
