//! Ablation: scheduling granularity (per-layer vs per-layer-block).
//!
//! The paper's execution model consults the scheduler at every layer or
//! layer-block boundary. Coarser blocks mean fewer scheduling decisions
//! (less scheduler overhead pressure) but slower reaction to arrivals
//! and monitored sparsity.

use dysta::core::Policy;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{banner, Scale};

fn main() {
    banner("Ablation", "scheduling granularity (layers per block)");
    let scale = Scale::from_env();
    for (title, scenario, rate) in [
        ("Multi-AttNNs @ 30/s", Scenario::MultiAttNn, 30.0),
        ("Multi-CNNs @ 3/s", Scenario::MultiCnn, 3.0),
    ] {
        println!("--- {title} (SLO x10, Dysta) ---");
        println!(
            "{:<8} {:>8} {:>10} {:>14}",
            "block", "ANTT", "viol [%]", "decisions/req"
        );
        for block in [1usize, 2, 4, 8, 16, 32] {
            let config = EngineConfig {
                layers_per_block: block,
                ..EngineConfig::default()
            };
            let mut antt = 0.0;
            let mut viol = 0.0;
            let mut decisions = 0u64;
            for seed in 0..scale.seeds {
                let w = WorkloadBuilder::new(scenario)
                    .arrival_rate(rate)
                    .slo_multiplier(10.0)
                    .num_requests(scale.requests)
                    .samples_per_variant(scale.samples_per_variant)
                    .seed(seed)
                    .build();
                let report = simulate(&w, Policy::Dysta.build().as_mut(), &config);
                let m = report.metrics();
                antt += m.antt;
                viol += m.violation_rate;
                decisions += report.scheduler_invocations();
            }
            let n = scale.seeds as f64;
            println!(
                "{:<8} {:>8.2} {:>9.1}% {:>14.1}",
                block,
                antt / n,
                viol / n * 100.0,
                decisions as f64 / n / scale.requests as f64
            );
        }
        println!();
    }
    println!("expectation: quality degrades gracefully with coarser blocks");
    println!("while scheduling decisions per request fall proportionally —");
    println!("the layer-granularity design point is cheap enough (Table 6)");
    println!("that the paper's choice of finest granularity is justified");
}
