//! Ablation: end-to-end effect of the sparse-latency-predictor strategy
//! (extends Table 4's offline RMSE comparison into full scheduling).

use dysta::core::{CoeffStrategy, DystaConfig, DystaScheduler, Policy, SparseLatencyPredictor};
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{banner, Scale};

fn main() {
    banner(
        "Ablation",
        "predictor strategy inside full Dysta scheduling",
    );
    let scale = Scale::from_env();
    let strategies: [(&str, CoeffStrategy); 4] = [
        ("disabled (γ=1)", CoeffStrategy::Disabled),
        ("average-all", CoeffStrategy::AverageAll),
        ("last-3", CoeffStrategy::LastN(3)),
        ("last-one", CoeffStrategy::LastOne),
    ];
    for (title, scenario, rate) in [
        ("Multi-AttNNs @ 30/s", Scenario::MultiAttNn, 30.0),
        ("Multi-CNNs @ 3/s", Scenario::MultiCnn, 3.0),
    ] {
        println!("--- {title} (SLO x10) ---");
        println!("{:<16} {:>8} {:>10}", "strategy", "ANTT", "viol [%]");
        for (name, strategy) in strategies {
            let mut antt = 0.0;
            let mut viol = 0.0;
            for seed in 0..scale.seeds {
                let w = WorkloadBuilder::new(scenario)
                    .arrival_rate(rate)
                    .slo_multiplier(10.0)
                    .num_requests(scale.requests)
                    .samples_per_variant(scale.samples_per_variant)
                    .seed(seed)
                    .build();
                let mut sched = DystaScheduler::new(
                    DystaConfig::default(),
                    SparseLatencyPredictor::new(strategy, 1.0),
                );
                let m = simulate(&w, &mut sched, &EngineConfig::default()).metrics();
                antt += m.antt;
                viol += m.violation_rate;
            }
            let n = scale.seeds as f64;
            println!("{:<16} {:>8.2} {:>9.1}%", name, antt / n, viol / n * 100.0);
        }
        // Oracle reference.
        let mut antt = 0.0;
        let mut viol = 0.0;
        for seed in 0..scale.seeds {
            let w = WorkloadBuilder::new(scenario)
                .arrival_rate(rate)
                .slo_multiplier(10.0)
                .num_requests(scale.requests)
                .samples_per_variant(scale.samples_per_variant)
                .seed(seed)
                .build();
            let m = simulate(
                &w,
                Policy::Oracle.build().as_mut(),
                &EngineConfig::default(),
            )
            .metrics();
            antt += m.antt;
            viol += m.violation_rate;
        }
        let n = scale.seeds as f64;
        println!(
            "{:<16} {:>8.2} {:>9.1}%",
            "oracle (exact)",
            antt / n,
            viol / n * 100.0
        );
        println!();
    }
    println!("expectation: any monitoring strategy beats γ=1; last-one");
    println!("matches average-all (the paper's justification for choosing");
    println!("the cheapest hardware implementation); the oracle bounds all");
}
