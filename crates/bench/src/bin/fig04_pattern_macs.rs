//! Figure 4: impact of the weight-sparsity pattern on valid MAC
//! operations, at identical sparsity ratio and identical inputs.
//!
//! ResNet-50 is pruned to 95% and MobileNet to 80% with random point-wise
//! and channel-wise patterns; the distribution of per-sample valid MACs
//! (normalized by the across-pattern mean) is compared. The paper
//! observes up to ~40% difference between patterns.

use dysta::accel::{EffectiveWork, SparseContext};
use dysta::models::{zoo, ModelGraph};
use dysta::sparsity::stats::{mean, Histogram};
use dysta::sparsity::{DatasetProfile, SampleSparsityGenerator, SparsityPattern};
use dysta_bench::{banner, print_histogram, Scale};

fn valid_macs(
    model: &ModelGraph,
    pattern: SparsityPattern,
    rate: f64,
    sample: &dysta::sparsity::SampleSparsity,
) -> f64 {
    let mut prev = 0.0;
    let mut total = 0.0;
    for (i, layer) in model.iter() {
        let ctx = SparseContext {
            pattern,
            weight_rate: rate,
            input_activation_sparsity: prev,
            layer_sparsity: sample.layer(i),
            seq_scale: 1.0,
        };
        total += EffectiveWork::compute(layer, &ctx).effective_macs;
        prev = if layer.relu() { sample.layer(i) } else { 0.0 };
    }
    total
}

fn main() {
    banner(
        "Figure 4",
        "valid MACs: random vs channel pattern at equal rate",
    );
    let scale = Scale::from_env();
    let samples = (scale.samples_per_variant * 8).max(256);
    for (model, rate) in [(zoo::resnet50(), 0.95), (zoo::mobilenet(), 0.80)] {
        println!("--- {} at {:.0}% sparsity ---", model.id(), rate * 100.0);
        let generator = SampleSparsityGenerator::new(&model, DatasetProfile::VisionMixture, 0);
        let draws = generator.samples(samples);
        let mut per_pattern = Vec::new();
        for pattern in [
            SparsityPattern::RandomPointwise,
            SparsityPattern::ChannelWise,
        ] {
            let macs: Vec<f64> = draws
                .iter()
                .map(|s| valid_macs(&model, pattern, rate, s))
                .collect();
            per_pattern.push((pattern, macs));
        }
        // Normalize both by the grand mean so the pattern gap is visible.
        let grand: f64 = mean(
            &per_pattern
                .iter()
                .flat_map(|(_, m)| m.iter().copied())
                .collect::<Vec<_>>(),
        );
        for (pattern, macs) in &per_pattern {
            let normalized: Vec<f64> = macs.iter().map(|m| m / grand).collect();
            let mut hist = Histogram::new(0.7, 1.3, 12);
            hist.extend(normalized.iter().copied());
            print_histogram(
                &format!("{pattern} (mean {:.3})", mean(&normalized)),
                &hist.centers(),
                &hist.density(),
            );
        }
        let m_random = mean(&per_pattern[0].1);
        let m_channel = mean(&per_pattern[1].1);
        println!(
            "pattern gap: channel/random = {:.3} ({:+.1}% valid MACs)\n",
            m_channel / m_random,
            (m_channel / m_random - 1.0) * 100.0
        );
    }
    println!("paper reports: up to ~40% difference in normalized valid MACs");
}
