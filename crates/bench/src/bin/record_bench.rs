//! Records the repository's performance trajectory to `BENCH_engine.json`.
//!
//! Wall-clock measurements of the three hot paths the scheduling engine
//! is judged by — simulator throughput (layer events/sec), scheduler
//! decision cost (ns per `pick_next`), and the cluster sweep — tagged
//! with a label so successive PRs can diff perf against the recorded
//! history instead of re-deriving a baseline in a different environment.
//!
//! Usage: `record_bench <label> [path-to-BENCH_engine.json]`
//! Re-recording an existing label replaces that record in place.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use dysta::cluster::{
    simulate_cluster, AcceleratorKind, ClusterBuilder, ClusterConfig, DispatchPolicy,
    FrontendConfig, MigrationConfig, StealConfig, TransferCostConfig,
};
use dysta::core::{ModelInfoLut, Policy, QueuePositions, TaskQueue, TaskState};
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, Workload, WorkloadBuilder};
use dysta_bench::mid_execution_tasks;

/// One simulator-throughput measurement cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineRow {
    scenario: String,
    policy: String,
    events_per_sec: f64,
    sim_ms: f64,
}

/// One scheduler-decision-cost measurement cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PickRow {
    policy: String,
    queue_len: usize,
    ns_per_pick: f64,
}

/// One labelled recording session (all cells measured back-to-back in
/// the same environment, so ratios within a record are meaningful).
#[derive(Debug, Clone, Serialize)]
struct BenchRecord {
    label: String,
    engine: Vec<EngineRow>,
    picks: Vec<PickRow>,
    cluster_sweep_ms: f64,
    /// Wall time of the serving-front-end sweep (batching + stealing +
    /// migration). `None` in records from before the front-end existed —
    /// hand-written `Deserialize` below keeps the old history parseable.
    cluster_serving_ms: Option<f64>,
    /// Wall time of a deadline-aware serving run: EDF dispatch with
    /// costed transfers on a capacity-heterogeneous pool. `None` in
    /// records from before the `ClusterPolicy` redesign.
    cluster_edf_ms: Option<f64>,
    /// Wall time of an admission-controlled serving run: load-shedding
    /// admission (per-request pool-wide slack projections at every
    /// batch dispatch) over EDF routing on the capacity-heterogeneous
    /// pool. `None` in records from before admission control existed.
    cluster_admission_ms: Option<f64>,
    /// Wall time of a fault-injected serving run: a transient crash and
    /// a brown-out window on the admission-cell pool with salvage,
    /// retry, and reneging all armed — the recovery machinery's full
    /// hot path. `None` in records from before fault injection existed.
    cluster_faults_ms: Option<f64>,
    /// Tracing overhead on the fastest engine path (the worst case for
    /// relative cost): the same run untraced, under a `NullTracer`
    /// (must compile away), and under a recording `RingTracer`. `None`
    /// in records from before the observability layer existed.
    trace_overhead: Option<TraceOverheadCell>,
    /// Wall time of 20 000 indexed (hooked-queue) Dysta picks at
    /// q=256 — the sub-linear pick path the schedulers take when
    /// served by a node engine that maintains position hooks. The
    /// dense fold equivalent is the `picks` cell (dysta, queue_len
    /// 256): `ns_per_pick * 20_000 / 1e6` ms against this number is
    /// the recorded speedup. `None` in records from before the
    /// indexed pick structures existed.
    pick_indexed_ms: Option<f64>,
    /// Wall time of the serving cell's workload (200 requests,
    /// batching + steal + migration armed) on a 1000-node pool where
    /// ~99% of nodes never see work — the event-queue core's
    /// idle-nodes-cost-nothing claim, measured. `None` in records
    /// from before the event-driven cluster loop existed.
    cluster_eventq_ms: Option<f64>,
    /// The open-loop workload generator's hot paths: streaming a
    /// million-request arrival process, and serving a streamed slice
    /// on a busy 64-node pool with the front-end holding only live
    /// state. `None` in records from before streaming generation
    /// existed.
    workload_stream: Option<WorkloadStreamCell>,
    /// Wall time of the fleet sweep grid (seed × policy × scenario,
    /// 40 cells) run sequentially (1 thread). `None` in records from
    /// before the parallel execution stack existed.
    fleet_sweep_seq_ms: Option<f64>,
    /// The same grid fanned over an 8-worker pool. The
    /// `fleet_sweep_seq_ms / fleet_sweep_ms` ratio is the recorded
    /// sweep speedup — ≥3× on a machine with ≥8 cores; on a
    /// single-core container the two are within noise (see
    /// EXPERIMENTS.md's scaling table for the caveat).
    fleet_sweep_ms: Option<f64>,
    /// Wall time of one busy serving run (16-node pool, overdriven
    /// traffic, steal+migrate armed) with the sequential advance loop.
    cluster_par_seq_ms: Option<f64>,
    /// The same run with the sharded advance on 8 worker threads
    /// (bit-exact reports; only the wall clock may differ).
    cluster_par_ms: Option<f64>,
}

/// The streaming-workload measurement cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadStreamCell {
    /// Wall time to stream-generate 1 000 000 requests (two-phase
    /// steady -> flash-crowd profile; the trace store is built outside
    /// the timed region, so this is pure request generation).
    generate_1m_ms: f64,
    /// Requests generated per second in that run.
    generate_per_sec: f64,
    /// Wall time of a 10 000-request streamed serving slice on a busy
    /// 64-node pool (~80% of aggregate capacity, EDF dispatch).
    serve_64node_ms: f64,
    /// The front-end's in-flight high-water mark during that slice —
    /// the O(pool-backlog)-not-O(trace) memory claim, recorded.
    serve_peak_live: usize,
}

/// The tracing-overhead measurement cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TraceOverheadCell {
    scenario: String,
    policy: String,
    base_ms: f64,
    null_tracer_ms: f64,
    ring_tracer_ms: f64,
    /// `(null − base) / base`, percent — statistical noise around 0.
    null_overhead_pct: f64,
    /// `(ring − base) / base`, percent — the number the < 2% target
    /// in EXPERIMENTS.md is judged on.
    ring_overhead_pct: f64,
}

impl serde::Deserialize for BenchRecord {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        // Optional fields absent from older records deserialize to
        // `None` so the recorded history stays parseable forever.
        let optional = |name: &str| -> Result<Option<f64>, serde::DeError> {
            match value.field(name) {
                Ok(v) => serde::Deserialize::from_value(v),
                Err(_) => Ok(None),
            }
        };
        Ok(BenchRecord {
            label: serde::Deserialize::from_value(value.field("label")?)?,
            engine: serde::Deserialize::from_value(value.field("engine")?)?,
            picks: serde::Deserialize::from_value(value.field("picks")?)?,
            cluster_sweep_ms: serde::Deserialize::from_value(value.field("cluster_sweep_ms")?)?,
            cluster_serving_ms: optional("cluster_serving_ms")?,
            cluster_edf_ms: optional("cluster_edf_ms")?,
            cluster_admission_ms: optional("cluster_admission_ms")?,
            cluster_faults_ms: optional("cluster_faults_ms")?,
            trace_overhead: match value.field("trace_overhead") {
                Ok(v) => serde::Deserialize::from_value(v)?,
                Err(_) => None,
            },
            pick_indexed_ms: optional("pick_indexed_ms")?,
            cluster_eventq_ms: optional("cluster_eventq_ms")?,
            workload_stream: match value.field("workload_stream") {
                Ok(v) => serde::Deserialize::from_value(v)?,
                Err(_) => None,
            },
            fleet_sweep_seq_ms: optional("fleet_sweep_seq_ms")?,
            fleet_sweep_ms: optional("fleet_sweep_ms")?,
            cluster_par_seq_ms: optional("cluster_par_seq_ms")?,
            cluster_par_ms: optional("cluster_par_ms")?,
        })
    }
}

/// The whole perf-trajectory file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchFile {
    records: Vec<BenchRecord>,
}

/// Median wall time of `runs` executions of `f`, in seconds.
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (page in traces, heat caches)
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn engine_workload(scenario: Scenario) -> Workload {
    WorkloadBuilder::new(scenario)
        .num_requests(200)
        .samples_per_variant(16)
        .seed(0)
        .build()
}

fn measure_engine(records: &mut Vec<EngineRow>) {
    for (name, scenario) in [
        ("multi_attnn", Scenario::MultiAttNn),
        ("multi_cnn", Scenario::MultiCnn),
    ] {
        let workload = engine_workload(scenario);
        let total_layers: u64 = workload
            .requests()
            .iter()
            .map(|r| workload.trace_for(r).num_layers() as u64)
            .sum();
        for policy in Policy::ALL {
            let secs = median_secs(7, || {
                std::hint::black_box(simulate(
                    std::hint::black_box(&workload),
                    policy.build().as_mut(),
                    &EngineConfig::default(),
                ));
            });
            records.push(EngineRow {
                scenario: name.to_string(),
                policy: policy.name().to_string(),
                events_per_sec: total_layers as f64 / secs,
                sim_ms: secs * 1e3,
            });
            println!(
                "engine {name:<12} {:<13} {:>10.0} events/s ({:.2} ms)",
                policy.name(),
                total_layers as f64 / secs,
                secs * 1e3
            );
        }
    }
}

fn measure_picks(records: &mut Vec<PickRow>) {
    for &queue_len in &[16usize, 64, 256] {
        let (tasks, lut) = mid_execution_tasks(queue_len);
        for policy in [
            Policy::Fcfs,
            Policy::Sjf,
            Policy::Prema,
            Policy::Planaria,
            Policy::Sdrm3,
            Policy::Dysta,
            Policy::Oracle,
        ] {
            let ns = time_picks(policy, &tasks, &lut);
            records.push(PickRow {
                policy: policy.name().to_string(),
                queue_len,
                ns_per_pick: ns,
            });
            println!(
                "pick   q={queue_len:<4} {:<13} {ns:>10.1} ns",
                policy.name()
            );
        }
    }
}

/// Mean ns per `pick_next` over an adaptively sized timed loop.
fn time_picks(policy: Policy, tasks: &[TaskState], lut: &ModelInfoLut) -> f64 {
    let mut sched = policy.build();
    for t in tasks {
        sched.on_arrival(t, lut, t.arrival_ns);
    }
    for _ in 0..1_000 {
        std::hint::black_box(sched.pick_next(
            std::hint::black_box(TaskQueue::dense(tasks)),
            lut,
            1_000_000,
        ));
    }
    let mut iters = 1_000u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(sched.pick_next(
                std::hint::black_box(TaskQueue::dense(tasks)),
                lut,
                1_000_000,
            ));
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 50 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 4;
    }
}

/// Mean ns per indexed (hooked-queue) `pick_next`, plus the recorded
/// wall-ms cell for 20 000 such picks. The hooked view is what a node
/// engine that maintains `QueuePositions` in lockstep serves — the
/// schedulers' sub-linear heap paths activate only on it, so this is
/// the indexed counterpart of `time_picks`'s dense-fold number.
fn measure_picks_indexed() -> f64 {
    let queue_len = 256usize;
    let (tasks, lut) = mid_execution_tasks(queue_len);
    let active: Vec<usize> = (0..tasks.len()).collect();
    let mut positions = QueuePositions::default();
    for (pos, t) in tasks.iter().enumerate() {
        positions.insert(t.id, pos);
    }
    // Pick at a clock past every arrival: the engine's clock is
    // monotone across hooks, and the clock-dependent index structures
    // (feasibility lapse migration) rely on that — picking at a
    // regressed clock would measure their rebuild-on-regression
    // fallback instead of the steady-state path. The dense `picks`
    // cell's cost is clock-independent, so the two stay comparable.
    let now_ns = tasks
        .iter()
        .map(|t| t.arrival_ns)
        .max()
        .unwrap_or(0)
        .max(1_000_000);
    let mut dysta_ns = 0.0;
    for policy in [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Prema,
        Policy::Planaria,
        Policy::Sdrm3,
        Policy::Dysta,
        Policy::Oracle,
    ] {
        let mut sched = policy.build();
        for t in &tasks {
            sched.on_arrival(t, &lut, t.arrival_ns);
        }
        for _ in 0..1_000 {
            std::hint::black_box(sched.pick_next(
                std::hint::black_box(TaskQueue::hooked(&tasks, &active, &positions)),
                &lut,
                now_ns,
            ));
        }
        let mut iters = 1_000u64;
        let ns = loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(sched.pick_next(
                    std::hint::black_box(TaskQueue::hooked(&tasks, &active, &positions)),
                    &lut,
                    now_ns,
                ));
            }
            let elapsed = t.elapsed();
            if elapsed.as_millis() >= 50 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 4;
        };
        if policy == Policy::Dysta {
            dysta_ns = ns;
        }
        println!(
            "pick-indexed q={queue_len:<4} {:<13} {ns:>10.1} ns",
            policy.name()
        );
    }
    dysta_ns * 20_000.0 / 1e6
}

fn measure_cluster_eventq() -> f64 {
    // The serving cell's traffic on a 1000-node pool: 200 requests
    // land on a handful of nodes while the rest stay idle forever.
    // Under the old per-tick scan loop every steal/migration tick
    // walked all 1000 nodes; the event-queue core with its live-set
    // only visits nodes that actually hold work, so this cell tracks
    // the idle-nodes-cost-nothing claim directly.
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .num_requests(200)
        .samples_per_variant(16)
        .seed(13)
        .build();
    let frontend = FrontendConfig {
        admit_batch: 4,
        admit_interval_ns: 20_000_000,
        steal: Some(StealConfig::default()),
        migration: Some(MigrationConfig::default()),
        ..FrontendConfig::default()
    };
    let secs = median_secs(3, || {
        let pool = ClusterBuilder::heterogeneous(500, 500, Policy::Dysta)
            .frontend(frontend)
            .build();
        std::hint::black_box(simulate_cluster(
            &workload,
            DispatchPolicy::SparsityAffinity.build().as_mut(),
            &pool,
        ));
    });
    println!(
        "cluster_eventq (1000 nodes mostly idle, batch+steal+migrate, 200 reqs): {:.1} ms",
        secs * 1e3
    );
    secs * 1e3
}

fn measure_cluster_sweep() -> f64 {
    // Workload/trace generation happens outside the timed region — the
    // recorded number tracks cluster *simulation* cost only. Sweeps the
    // original four dispatchers (`CLASSIC`) so the cell stays
    // like-for-like with the recorded history; EDF is timed separately
    // in `measure_cluster_edf`.
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .num_requests(200)
        .samples_per_variant(16)
        .seed(13)
        .build();
    let secs = median_secs(3, || {
        for dispatch in DispatchPolicy::CLASSIC {
            let config = ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta);
            std::hint::black_box(simulate_cluster(
                &workload,
                dispatch.build().as_mut(),
                &config,
            ));
        }
    });
    println!(
        "cluster_sweep (4 nodes x 4 dispatchers x 200 reqs): {:.1} ms",
        secs * 1e3
    );
    secs * 1e3
}

fn measure_cluster_serving() -> f64 {
    // The serving front-end's hot path: admission batching plus steal
    // and migration passes on the pool shape that triggers them most
    // (CNN traffic + affinity on a heterogeneous pool).
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .num_requests(200)
        .samples_per_variant(16)
        .seed(13)
        .build();
    let frontend = FrontendConfig {
        admit_batch: 4,
        admit_interval_ns: 20_000_000,
        steal: Some(StealConfig::default()),
        migration: Some(MigrationConfig::default()),
        ..FrontendConfig::default()
    };
    let secs = median_secs(3, || {
        let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .frontend(frontend)
            .build();
        std::hint::black_box(simulate_cluster(
            &workload,
            DispatchPolicy::SparsityAffinity.build().as_mut(),
            &pool,
        ));
    });
    println!(
        "cluster_serving (2+2 nodes, batch+steal+migrate, 200 reqs): {:.1} ms",
        secs * 1e3
    );
    secs * 1e3
}

fn measure_cluster_edf() -> f64 {
    // The ClusterPolicy redesign's hot path: deadline-aware dispatch
    // (per-node slack projections on every routing decision) plus
    // costed steal/migration passes on a capacity-heterogeneous pool.
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .slo_multiplier(5.0)
        .num_requests(200)
        .samples_per_variant(16)
        .seed(13)
        .build();
    let secs = median_secs(3, || {
        let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .node_capacity(1, 0.5)
            .node_capacity(3, 0.5)
            .frontend(FrontendConfig::serving_costed())
            .transfer_cost(TransferCostConfig::default_costed())
            .build();
        std::hint::black_box(simulate_cluster(
            &workload,
            DispatchPolicy::EarliestDeadlineFirst.build().as_mut(),
            &pool,
        ));
    });
    println!(
        "cluster_edf (2+2 nodes, capacity-het, costed serving, 200 reqs): {:.1} ms",
        secs * 1e3
    );
    secs * 1e3
}

fn measure_cluster_admission() -> f64 {
    // Admission control's hot path: every batch dispatch projects the
    // request's slack on every node (feasibility for the reject side,
    // best headroom for the degrade side) before routing — measured
    // over the same capacity-heterogeneous pool as the EDF cell so the
    // two wall times are directly comparable.
    use dysta::cluster::{simulate_cluster_with, ClusterPolicy, SlackLoadShedding};
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .slo_multiplier(5.0)
        .num_requests(200)
        .samples_per_variant(16)
        .seed(13)
        .build();
    let secs = median_secs(3, || {
        let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .node_capacity(1, 0.5)
            .node_capacity(3, 0.5)
            .frontend(FrontendConfig::serving_costed())
            .transfer_cost(TransferCostConfig::default_costed())
            .build();
        let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::EarliestDeadlineFirst)
            .with_admission(Box::new(SlackLoadShedding::new()));
        std::hint::black_box(simulate_cluster_with(&workload, &mut policy, &pool));
    });
    println!(
        "cluster_admission (2+2 nodes, capacity-het, slack-load-shed + edf, 200 reqs): {:.1} ms",
        secs * 1e3
    );
    secs * 1e3
}

fn measure_cluster_faults() -> f64 {
    // The recovery machinery's hot path: a transient crash (salvage +
    // redispatch of everything queued on the dead node, then the
    // rejoin) plus a brown-out window, with queue-time reneging armed
    // so the migration pass re-projects slack every tick — on the same
    // capacity-heterogeneous pool and workload as the admission cell
    // so the wall times are directly comparable.
    use dysta::cluster::{FaultConfig, FaultSchedule, RecoveryConfig};
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .slo_multiplier(5.0)
        .num_requests(200)
        .samples_per_variant(16)
        .seed(13)
        .build();
    let faults = FaultConfig {
        schedule: FaultSchedule::new()
            .transient_crash(0, 1_500_000_000, 2_500_000_000)
            .brownout(2, 800_000_000, 2_000_000_000, 0.5),
        recovery: RecoveryConfig {
            salvage: true,
            max_retries: 2,
            reneging: true,
        },
    };
    let secs = median_secs(3, || {
        let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .node_capacity(1, 0.5)
            .node_capacity(3, 0.5)
            .frontend(FrontendConfig::serving_costed())
            .transfer_cost(TransferCostConfig::default_costed())
            .faults(faults.clone())
            .build();
        std::hint::black_box(simulate_cluster(
            &workload,
            DispatchPolicy::EarliestDeadlineFirst.build().as_mut(),
            &pool,
        ));
    });
    println!(
        "cluster_faults (2+2 nodes, crash+brownout, salvage+renege, 200 reqs): {:.1} ms",
        secs * 1e3
    );
    secs * 1e3
}

fn measure_fleet_sweep() -> (f64, f64) {
    // The fleet sweep grid at the quick experiment scale: 2 seeds x 5
    // dispatchers x 2 scenarios = 20 cells of 100 requests each, the
    // same grid `fleet_sweep` runs under DYSTA_QUICK=1. Timed once
    // sequentially and once fanned over 8 workers — the ratio is the
    // recorded sweep speedup. Rows are byte-identical either way, so
    // only the wall clock distinguishes the two cells.
    use dysta::cluster::{SweepGrid, SweepScenario};
    let grid = SweepGrid::new(ClusterConfig::heterogeneous(2, 2, Policy::Dysta))
        .seeds((0..2).map(|s| s * 7919 + 13).collect())
        .policies(DispatchPolicy::ALL.to_vec())
        .scenarios(vec![
            SweepScenario::new("multi_attnn", Scenario::MultiAttNn, 30.0),
            SweepScenario::new("multi_cnn", Scenario::MultiCnn, 3.0),
        ])
        .slo_multipliers(vec![10.0])
        .requests(100)
        .samples_per_variant(16);
    let seq = median_secs(3, || {
        std::hint::black_box(grid.run(1));
    });
    let par = median_secs(3, || {
        std::hint::black_box(grid.run(8));
    });
    println!(
        "fleet_sweep (20 cells x 100 reqs): seq {:.1} ms, 8 threads {:.1} ms ({:.2}x)",
        seq * 1e3,
        par * 1e3,
        seq / par,
    );
    (seq * 1e3, par * 1e3)
}

fn measure_cluster_par() -> (f64, f64) {
    // The sharded advance loop on one busy serving run: the
    // `cluster_serving` cell's traffic on a 16-node pool (8+8
    // heterogeneous, batch + steal + migrate) so several nodes hold
    // work between front-end events and the parallel advance has
    // something to shard. Reports are bit-exact at any thread count;
    // the seq/par pair records what the sharding costs or buys on this
    // machine.
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(24.0)
        .num_requests(400)
        .samples_per_variant(16)
        .seed(13)
        .build();
    let frontend = FrontendConfig {
        admit_batch: 4,
        admit_interval_ns: 20_000_000,
        steal: Some(StealConfig::default()),
        migration: Some(MigrationConfig::default()),
        ..FrontendConfig::default()
    };
    let run = |threads: usize| {
        median_secs(3, || {
            let pool = ClusterBuilder::heterogeneous(8, 8, Policy::Dysta)
                .frontend(frontend)
                .threads(threads)
                .build();
            std::hint::black_box(simulate_cluster(
                &workload,
                DispatchPolicy::SparsityAffinity.build().as_mut(),
                &pool,
            ));
        })
    };
    let seq = run(1);
    let par = run(8);
    println!(
        "cluster_par (8+8 nodes, batch+steal+migrate, 400 reqs): seq {:.1} ms, 8 threads {:.1} ms ({:.2}x)",
        seq * 1e3,
        par * 1e3,
        seq / par,
    );
    (seq * 1e3, par * 1e3)
}

fn measure_workload_stream() -> WorkloadStreamCell {
    use dysta::cluster::simulate_cluster_stream;
    use dysta::workload::{ArrivalProcess, PhaseSpec, Popularity, SloModel, StreamSpec};

    // Generation: a million requests through a two-phase profile
    // (steady, then a flash crowd with Zipfian popularity) — every
    // process and popularity branch of the per-request hot loop. The
    // trace store is built once outside the timed region; the timed
    // closure is pure streaming generation.
    let spec = StreamSpec {
        phases: vec![
            PhaseSpec::steady(0, 2_000.0, Scenario::MultiCnn.mix(), SloModel::Fixed(10.0)),
            PhaseSpec {
                start_ns: 100_000_000_000,
                process: ArrivalProcess::FlashCrowd {
                    base_rate: 2_000.0,
                    peak_rate: 20_000.0,
                    start_s: 10.0,
                    duration_s: 20.0,
                },
                mix: Scenario::MultiCnn.mix(),
                popularity: Popularity::Zipfian { exponent: 1.0 },
                slo: SloModel::Fixed(10.0),
            },
        ],
        num_requests: 1_000_000,
        samples_per_variant: 16,
        seed: 13,
    };
    let store = spec.build_store();
    let secs = median_secs(3, || {
        let mut count = 0u64;
        for request in spec.source(&store) {
            std::hint::black_box(&request);
            count += 1;
        }
        assert_eq!(count, 1_000_000);
    });
    let generate_1m_ms = secs * 1e3;
    let generate_per_sec = 1_000_000.0 / secs;
    println!("workload_stream generate (1M requests, 2 phases): {generate_1m_ms:.1} ms ({generate_per_sec:.0} req/s)");

    // Serving: a 10k-request streamed slice on a busy 64-node pool at
    // ~80% of aggregate capacity, so every node works the whole run
    // while the backlog stays bounded. The recorded peak-live cell is
    // the memory claim: in-flight state tracks the pool's backlog
    // (hundreds), not the trace length (tens of thousands).
    let serve_spec = StreamSpec::steady_poisson(Scenario::MultiCnn, 150.0, 10.0)
        .num_requests(10_000)
        .samples_per_variant(16)
        .seed(13);
    let serve_store = serve_spec.build_store();
    let pool = ClusterConfig::homogeneous(64, AcceleratorKind::EyerissV2, Policy::Dysta);
    let mut peak_live = 0usize;
    let secs = median_secs(3, || {
        let report = simulate_cluster_stream(
            serve_spec.source(&serve_store),
            DispatchPolicy::EarliestDeadlineFirst.build().as_mut(),
            &pool,
        );
        assert_eq!(report.completed_total(), 10_000);
        peak_live = report.serving().peak_live_requests;
    });
    assert!(
        peak_live < 2_500,
        "front-end live state must stay O(pool backlog), not O(trace): \
         peak {peak_live} on a 10k-request stream"
    );
    let serve_64node_ms = secs * 1e3;
    println!(
        "workload_stream serve (64 nodes, 10k streamed reqs): {serve_64node_ms:.1} ms \
         (peak live {peak_live})"
    );
    WorkloadStreamCell {
        generate_1m_ms,
        generate_per_sec,
        serve_64node_ms,
        serve_peak_live: peak_live,
    }
}

fn measure_trace_overhead() -> TraceOverheadCell {
    use dysta::obs::{NullTracer, RingTracer};
    use dysta::sim::simulate_traced;
    // FCFS on the attention mix is the fastest engine configuration
    // (highest events/sec), so per-event tracing cost is most visible
    // there — the honest worst case for the relative overhead claim.
    // 5x the standard engine workload: the machine's run-to-run noise
    // floor is tens of microseconds, so a longer run keeps it well
    // under the percent-level signal being measured.
    let workload = WorkloadBuilder::new(Scenario::MultiAttNn)
        .num_requests(1000)
        .samples_per_variant(16)
        .seed(0)
        .build();
    let policy = Policy::Fcfs;
    let run_base = || {
        std::hint::black_box(simulate(
            std::hint::black_box(&workload),
            policy.build().as_mut(),
            &EngineConfig::default(),
        ));
    };
    let run_null = || {
        std::hint::black_box(simulate_traced(
            std::hint::black_box(&workload),
            policy.build().as_mut(),
            &EngineConfig::default(),
            NullTracer,
        ));
    };
    let tracer = RingTracer::new(1 << 20);
    let run_ring = || {
        tracer.clear();
        std::hint::black_box(simulate_traced(
            std::hint::black_box(&workload),
            policy.build().as_mut(),
            &EngineConfig::default(),
            &tracer,
        ));
    };
    // The per-event cost being measured is a few percent of the run
    // time, under this machine's drift (frequency states, co-tenancy)
    // across a whole measurement. Defense: run the three variants
    // back-to-back within each round and keep the per-round *ratios* —
    // drift slower than one round hits all three equally and divides
    // out — then take the median ratio across rounds.
    run_base();
    run_null();
    run_ring();
    let rounds = 60;
    let mut base_samples = Vec::with_capacity(rounds);
    let mut null_ratios = Vec::with_capacity(rounds);
    let mut ring_ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        run_base();
        let b = t.elapsed().as_secs_f64();
        let t = Instant::now();
        run_null();
        let n = t.elapsed().as_secs_f64();
        let t = Instant::now();
        run_ring();
        let r = t.elapsed().as_secs_f64();
        base_samples.push(b);
        null_ratios.push(n / b);
        ring_ratios.push(r / b);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let base = median(&mut base_samples);
    let null = base * median(&mut null_ratios);
    let ring = base * median(&mut ring_ratios);
    let cell = TraceOverheadCell {
        scenario: "multi_attnn".to_string(),
        policy: policy.name().to_string(),
        base_ms: base * 1e3,
        null_tracer_ms: null * 1e3,
        ring_tracer_ms: ring * 1e3,
        null_overhead_pct: (null - base) / base * 100.0,
        ring_overhead_pct: (ring - base) / base * 100.0,
    };
    println!(
        "trace_overhead ({} {}): base {:.3} ms, null {:.3} ms ({:+.2}%), ring {:.3} ms ({:+.2}%)",
        cell.scenario,
        cell.policy,
        cell.base_ms,
        cell.null_tracer_ms,
        cell.null_overhead_pct,
        cell.ring_tracer_ms,
        cell.ring_overhead_pct,
    );
    cell
}

fn main() {
    let mut args = std::env::args().skip(1);
    let label = args.next().unwrap_or_else(|| "unlabelled".to_string());
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let mut engine = Vec::new();
    let mut picks = Vec::new();
    measure_engine(&mut engine);
    measure_picks(&mut picks);
    let pick_indexed_ms = measure_picks_indexed();
    let cluster_sweep_ms = measure_cluster_sweep();
    let cluster_serving_ms = measure_cluster_serving();
    let cluster_edf_ms = measure_cluster_edf();
    let cluster_admission_ms = measure_cluster_admission();
    let cluster_faults_ms = measure_cluster_faults();
    let cluster_eventq_ms = measure_cluster_eventq();
    let workload_stream = measure_workload_stream();
    let trace_overhead = measure_trace_overhead();
    let (fleet_sweep_seq_ms, fleet_sweep_ms) = measure_fleet_sweep();
    let (cluster_par_seq_ms, cluster_par_ms) = measure_cluster_par();

    let record = BenchRecord {
        label: label.clone(),
        engine,
        picks,
        cluster_sweep_ms,
        cluster_serving_ms: Some(cluster_serving_ms),
        cluster_edf_ms: Some(cluster_edf_ms),
        cluster_admission_ms: Some(cluster_admission_ms),
        cluster_faults_ms: Some(cluster_faults_ms),
        trace_overhead: Some(trace_overhead),
        pick_indexed_ms: Some(pick_indexed_ms),
        cluster_eventq_ms: Some(cluster_eventq_ms),
        workload_stream: Some(workload_stream),
        fleet_sweep_seq_ms: Some(fleet_sweep_seq_ms),
        fleet_sweep_ms: Some(fleet_sweep_ms),
        cluster_par_seq_ms: Some(cluster_par_seq_ms),
        cluster_par_ms: Some(cluster_par_ms),
    };

    // A malformed history file must abort, not be silently replaced —
    // overwriting would erase the recorded perf trajectory.
    let mut file: BenchFile = match std::fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text).unwrap_or_else(|e| {
            panic!("refusing to overwrite unparseable {path}: {e}");
        }),
        Err(_) => BenchFile {
            records: Vec::new(),
        },
    };
    file.records.retain(|r| r.label != label);
    file.records.push(record);
    let json = serde_json::to_string(&file).expect("bench record serializes");
    std::fs::write(&path, json + "\n").expect("bench file writes");
    println!("recorded `{label}` -> {path}");
}
