//! Ablation: hardware FIFO depth — scheduling quality vs resource cost.
//!
//! The FIFO depth bounds how many outstanding requests the hardware
//! scheduler can see. This ablation connects Figure 16's resource axis to
//! the scheduling-quality axis the paper leaves implicit.

use dysta::core::DystaConfig;
use dysta::hw::resources::DesignPoint;
use dysta::hw::HardwareDystaScheduler;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{banner, Scale};

fn main() {
    banner("Ablation", "hardware FIFO depth: quality vs cost");
    let scale = Scale::from_env();
    println!(
        "{:<8} {:>8} {:>10} {:>8} {:>10}",
        "depth", "ANTT", "viol [%]", "LUTs", "RAM [KB]"
    );
    for depth in [2usize, 4, 8, 16, 64, 512] {
        let mut antt = 0.0;
        let mut viol = 0.0;
        for seed in 0..scale.seeds {
            let w = WorkloadBuilder::new(Scenario::MultiAttNn)
                .arrival_rate(30.0)
                .slo_multiplier(10.0)
                .num_requests(scale.requests)
                .samples_per_variant(scale.samples_per_variant)
                .seed(seed)
                .build();
            let mut sched = HardwareDystaScheduler::new(DystaConfig::default(), depth);
            let m = simulate(&w, &mut sched, &EngineConfig::default()).metrics();
            antt += m.antt;
            viol += m.violation_rate;
        }
        let n = scale.seeds as f64;
        let usage = DesignPoint::opt_fp16(depth as u32).usage();
        println!(
            "{:<8} {:>8.2} {:>9.1}% {:>8} {:>10.2}",
            depth,
            antt / n,
            viol / n * 100.0,
            usage.luts,
            usage.ram_kb
        );
    }
    println!();
    println!("expectation: quality saturates once the FIFO covers the queue");
    println!("the operating point actually builds (depth ~16-64 here); the");
    println!("paper's depth-64 deployment reaches full software-Dysta quality");
    println!("at 0.44 KB of FIFO RAM, and depth 512 buys nothing more");
}
