//! Figure 2: impact of dynamic sparsity on language-model layer latency.
//!
//! Profiles sparse BERT over the SQuAD profile on Sanger and plots the
//! distribution of the last and second-last layers' latency, normalized
//! by their averages. The paper observes normalized latency spanning
//! roughly 0.6–1.8.

use dysta::models::ModelId;
use dysta::sparsity::stats::{mean, Histogram};
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator};
use dysta_bench::{banner, print_histogram, Scale};

fn main() {
    banner(
        "Figure 2",
        "normalized latency distribution of BERT's last layers",
    );
    let scale = Scale::from_env();
    let samples = (scale.samples_per_variant * 16).max(512);
    let spec = SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0);
    let traces = TraceGenerator::default().generate(&spec, samples, 0);

    let n = traces.num_layers();
    for (label, layer) in [("second-last layer", n - 2), ("last layer", n - 1)] {
        let lats: Vec<f64> = traces
            .samples()
            .iter()
            .map(|s| s.layers()[layer].latency_ns as f64)
            .collect();
        let avg = mean(&lats);
        let normalized: Vec<f64> = lats.iter().map(|l| l / avg).collect();
        let min = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = normalized.iter().cloned().fold(0.0f64, f64::max);
        let mut hist = Histogram::new(0.4, 2.0, 16);
        hist.extend(normalized.iter().copied());
        print_histogram(
            &format!("{label}: normalized latency (min {min:.2}, max {max:.2})"),
            &hist.centers(),
            &hist.density(),
        );
    }
    println!();
    println!("paper reports: normalized latency varies from ~0.6 to ~1.8");
}
