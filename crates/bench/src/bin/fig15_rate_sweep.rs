//! Figure 15: robustness across arrival rates (violation rate, system
//! throughput and ANTT), at SLO multiplier 10.

use dysta::core::{DystaConfig, Policy};
use dysta::workload::Scenario;
use dysta_bench::{banner, compare_policies, Scale};

const POLICIES: [Policy; 7] = [
    Policy::Fcfs,
    Policy::Sjf,
    Policy::Prema,
    Policy::Planaria,
    Policy::Sdrm3,
    Policy::Oracle,
    Policy::Dysta,
];

fn sweep(title: &str, scenario: Scenario, rates: &[f64], scale: Scale) {
    println!("--- {title} (SLO x10) ---");
    let mut results = Vec::new();
    for &rate in rates {
        results.push(compare_policies(
            scenario,
            rate,
            10.0,
            scale,
            &POLICIES,
            DystaConfig::default(),
        ));
    }
    for (metric, get) in [
        ("SLO violation rate [%]", 0usize),
        ("throughput [inf/s]", 1),
        ("ANTT", 2),
    ] {
        println!("{metric}:");
        print!("{:<14}", "policy");
        for &rate in rates {
            print!("{rate:>8}");
        }
        println!();
        for (i, policy) in POLICIES.iter().enumerate() {
            print!("{:<14}", policy.name());
            for row in &results {
                let m = row[i].metrics;
                let v = match get {
                    0 => m.violation_rate * 100.0,
                    1 => m.throughput_inf_s,
                    _ => m.antt,
                };
                print!("{v:>8.2}");
            }
            println!();
        }
    }
    println!();
}

fn main() {
    banner(
        "Figure 15",
        "violation rate, throughput and ANTT across arrival rates",
    );
    let scale = Scale::from_env();
    sweep(
        "Multi-AttNNs",
        Scenario::MultiAttNn,
        &[10.0, 20.0, 30.0, 35.0, 40.0],
        scale,
    );
    sweep(
        "Multi-CNNs",
        Scenario::MultiCnn,
        &[2.0, 3.0, 4.0, 5.0, 6.0],
        scale,
    );
    println!("shape to preserve: all metrics rise with the arrival rate;");
    println!("throughput is scheduler-independent (capacity-bound); Dysta");
    println!("stays lowest on violations and ANTT, tracking the Oracle, with");
    println!("gains growing under heavier traffic");
}
