//! Figure 13: optimization breakdown — PREMA (state of the art) vs
//! Dysta-w/o-sparse (static level only) vs full Dysta.
//!
//! The static score already improves on PREMA; adding the dynamic
//! sparsity-aware level mainly improves ANTT (violations are governed by
//! the SLO looseness, as the paper notes).

use dysta::core::{DystaConfig, Policy};
use dysta::workload::Scenario;
use dysta_bench::{banner, compare_policies, Scale};

fn main() {
    banner(
        "Figure 13",
        "optimization breakdown (PREMA -> +static -> +dynamic)",
    );
    let scale = Scale::from_env();
    let set = [Policy::Prema, Policy::DystaStatic, Policy::Dysta];
    for (title, scenario, rate) in [
        ("Multi-AttNNs @ 30 samples/s", Scenario::MultiAttNn, 30.0),
        ("Multi-CNNs @ 3 samples/s", Scenario::MultiCnn, 3.0),
    ] {
        println!("--- {title} (SLO x10) ---");
        println!("{:<14} {:>10} {:>8}", "variant", "viol [%]", "ANTT");
        let rows = compare_policies(scenario, rate, 10.0, scale, &set, DystaConfig::default());
        for row in &rows {
            println!(
                "{:<14} {:>9.1}% {:>8.2}",
                row.policy.name(),
                row.metrics.violation_rate * 100.0,
                row.metrics.antt
            );
        }
        let prema = rows[0].metrics;
        let full = rows[2].metrics;
        println!(
            "total gain vs PREMA: viol {:+.1} pp, ANTT {:.2}x\n",
            (full.violation_rate - prema.violation_rate) * 100.0,
            prema.antt / full.antt
        );
    }
    println!("shape to preserve: static level improves over PREMA; the dynamic");
    println!("sparsity-aware level adds a further ANTT drop");
}
