//! Load–latency curves under open-loop traffic: offered load is swept
//! as a multiple of the pool's steady operating point (45 req/s of the
//! balanced mixed serving mix on the 2+2 capacity-heterogeneous pool,
//! SLO x2 — the `fig_admission` configuration) under two stream
//! shapes, and each cell is served twice — admit-all vs slack load
//! shedding — so the curves show what admission control buys when the
//! offered load exceeds capacity:
//!
//! * **flash-crowd**: steady 45 req/s with a mid-run crowd spike to
//!   `L x 45` req/s (the [`ArrivalProcess::FlashCrowd`] profile);
//! * **phase-change**: a steady first phase that switches to
//!   `L x 45` req/s with Zipfian popularity at the phase boundary.
//!
//! Shape to preserve: goodput degrades *gracefully* under overload —
//! by `L = 3` the shedding front-end rejects or degrades work and its
//! goodput stays at or above admit-all's, while admit-all's p99
//! turnaround blows up with the queue.

use dysta::cluster::{
    balanced_mixed_serving_mix, ClusterBuilder, ClusterPolicy, DispatchPolicy, SlackLoadShedding,
    MAX_THREADS,
};
use dysta::cluster::{simulate_cluster_stream_with, ClusterConfig, ClusterReport};
use dysta::core::Policy;
use dysta::workload::{ArrivalProcess, PhaseSpec, Popularity, SloModel, StreamSpec};
use dysta_bench::{banner, Scale};

/// The steady operating point: the `fig_admission` arrival rate.
const BASE_RATE: f64 = 45.0;
/// Offered-load multipliers applied to the stream's hot section.
const LOAD_FACTORS: [f64; 4] = [1.0, 2.0, 3.0, 4.0];
/// Tight serving SLO (the admission experiments' multiplier).
const SLO_MULTIPLIER: f64 = 2.0;

/// One stream shape at offered-load factor `load`: `num_requests` and
/// trace resolution come from the run scale, everything else from the
/// shape. Both shapes start at the steady operating point and spend
/// their second half at `load x` the base rate, so a factor above the
/// pool's capacity overloads the tail of the run.
fn stream_spec(shape: &str, load: f64, scale: Scale, seed: u64) -> StreamSpec {
    let mix = balanced_mixed_serving_mix();
    let phases = match shape {
        // Steady base rate with a crowd spike to `load x base` opening
        // half a second in (~22 requests at the base rate) and long
        // enough to cover the rest of the run at any factor.
        "flash-crowd" => vec![PhaseSpec {
            start_ns: 0,
            process: ArrivalProcess::FlashCrowd {
                base_rate: BASE_RATE,
                peak_rate: BASE_RATE * load,
                start_s: 0.5,
                duration_s: 60.0,
            },
            mix,
            popularity: Popularity::Weighted,
            slo: SloModel::Fixed(SLO_MULTIPLIER),
        }],
        // Steady first phase, then the rate jumps to `load x base` and
        // popularity skews Zipfian (a hot-model shift riding the surge).
        "phase-change" => vec![
            PhaseSpec::steady(0, BASE_RATE, mix.clone(), SloModel::Fixed(SLO_MULTIPLIER)),
            PhaseSpec {
                start_ns: 500_000_000,
                process: ArrivalProcess::Poisson {
                    rate: BASE_RATE * load,
                },
                mix,
                popularity: Popularity::Zipfian { exponent: 1.0 },
                slo: SloModel::Fixed(SLO_MULTIPLIER),
            },
        ],
        other => unreachable!("unknown stream shape {other}"),
    };
    StreamSpec {
        phases,
        num_requests: scale.requests as u64,
        samples_per_variant: scale.samples_per_variant,
        seed,
    }
}

/// The `fig_admission` pool: 2+2 heterogeneous, FCFS node scheduling,
/// one node per family at half capacity. `threads` drives the sharded
/// advance loop (bit-exact at any count).
fn pool(threads: usize) -> ClusterConfig {
    ClusterBuilder::heterogeneous(2, 2, Policy::Fcfs)
        .node_capacity(1, 0.5)
        .node_capacity(3, 0.5)
        .threads(threads)
        .build()
}

/// Parses `--threads N` from the command line (1 when absent),
/// rejecting counts outside the `ClusterBuilder` knob's bound.
fn threads_arg() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| (1..=MAX_THREADS).contains(n))
                .unwrap_or_else(|| {
                    eprintln!("--threads requires an integer in 1..={MAX_THREADS}");
                    std::process::exit(2);
                });
        }
    }
    1
}

struct Cell {
    goodput_rate: f64,
    p99_ms: f64,
    rejected: usize,
    degraded: usize,
    peak_live: usize,
}

fn run_cell(shape: &str, load: f64, shed: bool, scale: Scale, threads: usize) -> Cell {
    let mut goodput_rate = 0.0;
    let mut p99_ns = 0u64;
    let mut rejected = 0usize;
    let mut degraded = 0usize;
    let mut peak_live = 0usize;
    for seed in 0..scale.seeds {
        let spec = stream_spec(shape, load, scale, seed * 7919 + 13);
        let store = spec.build_store();
        let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::EarliestDeadlineFirst);
        if shed {
            policy = policy.with_admission(Box::new(SlackLoadShedding::new()));
        }
        let report: ClusterReport =
            simulate_cluster_stream_with(spec.source(&store), &mut policy, &pool(threads));
        goodput_rate += report.goodput_rate();
        p99_ns += report.turnaround_percentile_ns(0.99);
        rejected += report.rejected_total();
        degraded += report.degraded_total();
        peak_live = peak_live.max(report.serving().peak_live_requests);
    }
    let n = scale.seeds as f64;
    Cell {
        goodput_rate: goodput_rate / n,
        p99_ms: p99_ns as f64 / n / 1e6,
        rejected,
        degraded,
        peak_live,
    }
}

fn main() {
    banner(
        "Load curve",
        "goodput and p99 turnaround vs offered load, admit-all vs load shedding",
    );
    let scale = Scale::from_env();
    let threads = threads_arg();
    if threads > 1 {
        println!("sharded advance on {threads} worker threads (bit-exact with 1)\n");
    }
    for shape in ["flash-crowd", "phase-change"] {
        println!("--- {shape} (EDF dispatch, SLO x{SLO_MULTIPLIER}) ---");
        println!(
            "{:>6} {:>10} {:>12} {:>10} {:>12} {:>9} {:>9} {:>9}",
            "load", "goodput", "p99 [ms]", "goodput", "p99 [ms]", "rejected", "degraded", "peak"
        );
        println!(
            "{:>6} {:>10} {:>12} {:>10} {:>12} {:>9} {:>9} {:>9}",
            "", "admit-all", "admit-all", "shed", "shed", "shed", "shed", "live"
        );
        for load in LOAD_FACTORS {
            let all = run_cell(shape, load, false, scale, threads);
            let shed = run_cell(shape, load, true, scale, threads);
            println!(
                "{:>5}x {:>10.3} {:>12.2} {:>10.3} {:>12.2} {:>9} {:>9} {:>9}",
                load,
                all.goodput_rate,
                all.p99_ms,
                shed.goodput_rate,
                shed.p99_ms,
                shed.rejected,
                shed.degraded,
                shed.peak_live.max(all.peak_live),
            );
        }
        println!();
    }
    println!("shape to preserve: past ~2x the operating point the shedding");
    println!("front-end engages (rejected + degraded > 0) and holds goodput at");
    println!("or above admit-all while admit-all's p99 grows with the backlog");
}
