//! Figure 16: normalized resource usage of the hardware scheduler under
//! the two optimizations (reconfigurable shared compute unit, FP16), at
//! request FIFO depths 512 and 64.

use dysta::hw::resources::DesignPoint;
use dysta_bench::banner;

fn main() {
    banner("Figure 16", "resource usage with different optimizations");
    for depth in [512u32, 64] {
        println!("--- request depth {depth} (normalized to Non_Opt_FP32) ---");
        let base = DesignPoint::non_opt_fp32(depth).usage();
        println!(
            "{:<14} {:>8} {:>8} {:>8} | {:>7} {:>7} {:>7} {:>9}",
            "design", "LUT", "FF", "DSP", "LUTs", "FFs", "DSPs", "RAM [KB]"
        );
        for design in [
            DesignPoint::non_opt_fp32(depth),
            DesignPoint::opt_fp32(depth),
            DesignPoint::opt_fp16(depth),
        ] {
            let u = design.usage();
            let (l, f, d) = u.normalized_to(base);
            println!(
                "{:<14} {:>8.2} {:>8.2} {:>8.2} | {:>7} {:>7} {:>7} {:>9.2}",
                design.label(),
                l,
                f,
                d,
                u.luts,
                u.ffs,
                u.dsps,
                u.ram_kb
            );
        }
        println!();
    }
    println!("shape to preserve: the shared reconfigurable unit cuts LUT/FF/DSP");
    println!("significantly; FP16 cuts all three again; consistent at both depths");
}
