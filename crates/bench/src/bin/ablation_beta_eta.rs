//! Ablation: the `β`/`η` hyperparameter trade-off curves.
//!
//! The paper parameterises both scoring levels so the operator can tune
//! the balance between ANTT and SLO violations (Section 4.2). `η` is
//! swept at the paper's operating points. For `β` a structural fact
//! surfaces first: with one *uniform* SLO multiplier, the static score
//! `Lat + β(SLO − Lat) = Lat(1 + β(M−1))` is a monotone transform of the
//! profiled latency, so β cannot change the ordering. The β sweep is
//! therefore run with heterogeneous per-request SLO multipliers
//! (interactive vs batch tenants), where slack genuinely differentiates
//! requests.

use dysta::core::{DystaConfig, DystaStaticScheduler, Policy};
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{banner, compare_policies, Scale};

fn main() {
    banner("Ablation", "beta / eta trade-off curves");
    let scale = Scale::from_env();
    for (title, scenario, rate) in [
        ("Multi-AttNNs @ 30/s", Scenario::MultiAttNn, 30.0),
        ("Multi-CNNs @ 3/s", Scenario::MultiCnn, 3.0),
    ] {
        println!("--- {title}: dynamic-level eta (full Dysta, uniform SLO x10) ---");
        println!("{:<8} {:>8} {:>10}", "eta", "ANTT", "viol [%]");
        for eta in [0.0, 0.01, 0.03, 0.1, 0.3, 1.0] {
            let cfg = DystaConfig { beta: 0.5, eta };
            let rows = compare_policies(scenario, rate, 10.0, scale, &[Policy::Dysta], cfg);
            println!(
                "{:<8} {:>8.2} {:>9.1}%",
                eta,
                rows[0].metrics.antt,
                rows[0].metrics.violation_rate * 100.0
            );
        }
        println!("--- {title}: static-level beta (Dysta-w/o-sparse, SLO x5..x50) ---");
        println!("{:<8} {:>8} {:>10}", "beta", "ANTT", "viol [%]");
        for beta in [0.0, 0.1, 0.25, 0.5, 1.0] {
            let mut antt = 0.0;
            let mut viol = 0.0;
            for seed in 0..scale.seeds {
                let w = WorkloadBuilder::new(scenario)
                    .arrival_rate(rate)
                    .slo_multiplier_range(5.0, 50.0)
                    .num_requests(scale.requests)
                    .samples_per_variant(scale.samples_per_variant)
                    .seed(seed)
                    .build();
                let mut sched = DystaStaticScheduler::new(DystaConfig { beta, eta: 0.03 });
                let m = simulate(&w, &mut sched, &EngineConfig::default()).metrics();
                antt += m.antt;
                viol += m.violation_rate;
            }
            let n = scale.seeds as f64;
            println!("{:<8} {:>8.2} {:>9.1}%", beta, antt / n, viol / n * 100.0);
        }
        println!();
    }
    println!("expectation: eta trades ANTT for violations (the knee is the");
    println!("deployed configuration); under heterogeneous SLOs, moderate");
    println!("beta lowers violations versus the beta=0 latency-only order");
}
