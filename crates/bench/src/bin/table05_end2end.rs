//! Table 5: end-to-end ANTT and SLO violation rate of all scheduling
//! approaches on the multi-AttNN (30 samples/s) and multi-CNN
//! (3 samples/s) workloads at SLO multiplier 10.

use dysta::core::{DystaConfig, Policy};
use dysta::workload::Scenario;
use dysta_bench::{banner, compare_policies, Scale};

fn main() {
    banner("Table 5", "comparison of scheduling approaches");
    let scale = Scale::from_env();
    // Paper reference rows (ANTT, violation %) for orientation.
    let paper_attnn = [
        ("fcfs", 18.9, 55.1),
        ("sjf", 5.0, 15.2),
        ("sdrm3", 18.9, 63.3),
        ("prema", 5.4, 15.3),
        ("planaria", 16.0, 6.8),
        ("dysta", 4.7, 5.1),
    ];
    let paper_cnn = [
        ("fcfs", 11.4, 23.1),
        ("sjf", 2.6, 3.4),
        ("sdrm3", 9.3, 33.7),
        ("prema", 3.0, 3.2),
        ("planaria", 4.2, 2.1),
        ("dysta", 2.5, 2.0),
    ];
    for (title, scenario, rate, paper) in [
        (
            "Multi-AttNNs @ 30 samples/s",
            Scenario::MultiAttNn,
            30.0,
            &paper_attnn,
        ),
        (
            "Multi-CNNs @ 3 samples/s",
            Scenario::MultiCnn,
            3.0,
            &paper_cnn,
        ),
    ] {
        println!(
            "--- {title} (SLO x10, {} reqs, {} seeds) ---",
            scale.requests, scale.seeds
        );
        println!(
            "{:<14} {:>8} {:>10} | {:>10} {:>12}",
            "policy", "ANTT", "viol [%]", "paper ANTT", "paper viol"
        );
        let rows = compare_policies(
            scenario,
            rate,
            10.0,
            scale,
            &Policy::TABLE5,
            DystaConfig::default(),
        );
        for row in rows {
            let reference = paper.iter().find(|(name, _, _)| *name == row.policy.name());
            let (pa, pv) = reference
                .map(|&(_, a, v)| (a, v))
                .unwrap_or((f64::NAN, f64::NAN));
            println!(
                "{:<14} {:>8.2} {:>9.1}% | {:>10.1} {:>11.1}%",
                row.policy.name(),
                row.metrics.antt,
                row.metrics.violation_rate * 100.0,
                pa,
                pv
            );
        }
        println!();
    }
    println!("shape to preserve: Dysta best (or tied best) on BOTH metrics;");
    println!("FCFS/SDRM3 far worse on both; SJF/PREMA ANTT-leaning; Planaria");
    println!("violation-leaning with weak ANTT");
}
