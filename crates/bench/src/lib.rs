//! Shared experiment-harness support for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for the
//! recorded outcomes). The helpers here keep the binaries small: seeded
//! multi-replication runs that reuse each workload across all policies
//! (so policies are compared on identical request streams, as in the
//! paper), and fixed-width table printing.

use dysta::core::{DystaConfig, ModelInfoLut, MonitoredLayer, Policy, TaskState};
use dysta::sim::{simulate, EngineConfig, Metrics};
use dysta::workload::{Scenario, WorkloadBuilder};

/// Builds a realistic scheduling point for decision-cost measurements:
/// `n` in-flight requests with partially executed layers and populated
/// monitored-sparsity streams (shared by the criterion benches and the
/// `record_bench` perf recorder).
pub fn mid_execution_tasks(n: usize) -> (Vec<TaskState>, ModelInfoLut) {
    let w = WorkloadBuilder::new(Scenario::MultiAttNn)
        .num_requests(n)
        .samples_per_variant(8)
        .seed(0)
        .build();
    let lut = ModelInfoLut::from_store(w.store());
    let tasks: Vec<TaskState> = w
        .requests()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let trace = w.trace_for(r);
            let progress = (i * 7) % trace.num_layers();
            let variant = lut.variant_id(&r.spec).expect("workload variant profiled");
            let mut task = TaskState {
                next_layer: progress,
                executed_ns: trace.layers()[..progress]
                    .iter()
                    .map(|l| l.latency_ns)
                    .sum(),
                monitored: trace.layers()[..progress]
                    .iter()
                    .map(|l| MonitoredLayer {
                        sparsity: l.sparsity,
                        latency_ns: l.latency_ns,
                    })
                    .collect(),
                true_remaining_ns: trace.remaining_ns(progress),
                ..TaskState::arrived(
                    r.id,
                    r.spec,
                    variant,
                    r.arrival_ns,
                    r.slo_ns,
                    trace.num_layers(),
                )
            };
            task.rebuild_sparsity_summary(lut.info(variant));
            task
        })
        .collect();
    (tasks, lut)
}

/// Experiment scale: the paper uses 1000 requests and 5 seeds. The
/// environment variable `DYSTA_QUICK=1` drops to a fast smoke-test scale
/// so the whole suite can run in CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Requests per workload.
    pub requests: usize,
    /// Random seeds averaged per configuration.
    pub seeds: u64,
    /// Phase-1 samples traced per sparse-model variant.
    pub samples_per_variant: u64,
}

impl Scale {
    /// The paper's evaluation scale (1000 requests, 5 seeds).
    pub fn paper() -> Self {
        Scale {
            requests: 1000,
            seeds: 5,
            samples_per_variant: 64,
        }
    }

    /// Reduced scale for smoke testing.
    pub fn quick() -> Self {
        Scale {
            requests: 100,
            seeds: 2,
            samples_per_variant: 16,
        }
    }

    /// Picks the scale from the `DYSTA_QUICK` environment variable.
    pub fn from_env() -> Self {
        if std::env::var("DYSTA_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Scale::quick()
        } else {
            Scale::paper()
        }
    }
}

/// One experiment cell: a policy's averaged metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyMetrics {
    /// The scheduling policy.
    pub policy: Policy,
    /// Seed-averaged metrics.
    pub metrics: Metrics,
}

/// Runs `policies` over `seeds` replications of one workload
/// configuration, reusing each generated workload across all policies.
pub fn compare_policies(
    scenario: Scenario,
    arrival_rate: f64,
    slo_multiplier: f64,
    scale: Scale,
    policies: &[Policy],
    config: DystaConfig,
) -> Vec<PolicyMetrics> {
    let mut acc = vec![
        Metrics {
            antt: 0.0,
            violation_rate: 0.0,
            throughput_inf_s: 0.0
        };
        policies.len()
    ];
    for seed in 0..scale.seeds {
        let workload = WorkloadBuilder::new(scenario)
            .arrival_rate(arrival_rate)
            .slo_multiplier(slo_multiplier)
            .num_requests(scale.requests)
            .samples_per_variant(scale.samples_per_variant)
            .seed(seed)
            .build();
        for (i, policy) in policies.iter().enumerate() {
            let mut sched = policy.build_with(config);
            let m = simulate(&workload, sched.as_mut(), &EngineConfig::default()).metrics();
            acc[i].antt += m.antt;
            acc[i].violation_rate += m.violation_rate;
            acc[i].throughput_inf_s += m.throughput_inf_s;
        }
    }
    let n = scale.seeds as f64;
    policies
        .iter()
        .zip(acc)
        .map(|(&policy, m)| PolicyMetrics {
            policy,
            metrics: Metrics {
                antt: m.antt / n,
                violation_rate: m.violation_rate / n,
                throughput_inf_s: m.throughput_inf_s / n,
            },
        })
        .collect()
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Formats a probability-density histogram as an ASCII row series.
pub fn print_histogram(label: &str, centers: &[f64], density: &[f64]) {
    println!("--- {label} ---");
    let max = density.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    for (c, d) in centers.iter().zip(density) {
        let bar = "#".repeat((d / max * 50.0).round() as usize);
        println!("{c:>8.3} | {d:>8.4} {bar}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(q.requests < p.requests && q.seeds < p.seeds);
    }

    #[test]
    fn compare_policies_returns_one_row_per_policy() {
        let rows = compare_policies(
            Scenario::MultiCnn,
            3.0,
            10.0,
            Scale {
                requests: 20,
                seeds: 1,
                samples_per_variant: 4,
            },
            &[Policy::Fcfs, Policy::Dysta],
            DystaConfig::default(),
        );
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.metrics.antt >= 1.0));
    }
}
