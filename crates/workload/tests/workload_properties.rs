//! Property-based tests on workload generation.

use proptest::prelude::*;

use dysta_workload::{Scenario, WorkloadBuilder};

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    prop::sample::select(vec![
        Scenario::MultiAttNn,
        Scenario::MultiCnn,
        Scenario::DataCenter,
        Scenario::ArVrWearable,
        Scenario::MobileAssistant,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn workload_invariants(
        scenario in scenario_strategy(),
        seed in 0u64..500,
        rate in 0.5f64..50.0,
        slo in 1.0f64..100.0,
        n in 5usize..40,
    ) {
        let w = WorkloadBuilder::new(scenario)
            .arrival_rate(rate)
            .slo_multiplier(slo)
            .num_requests(n)
            .samples_per_variant(4)
            .seed(seed)
            .build();
        let reqs = w.requests();
        prop_assert_eq!(reqs.len(), n);
        // Ids are dense and arrivals sorted.
        for (i, r) in reqs.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64);
            if i > 0 {
                prop_assert!(reqs[i - 1].arrival_ns <= r.arrival_ns);
            }
            // SLO formula: profiled average x multiplier.
            let profiled = w.traces_for(r).avg_latency_ns();
            prop_assert_eq!(r.slo_ns, (profiled * slo).round() as u64);
            // The trace library covers the request.
            prop_assert!(w.trace_for(r).isolated_latency_ns() > 0);
        }
    }

    #[test]
    fn doubling_rate_roughly_halves_the_span(
        seed in 0u64..200,
    ) {
        let span = |rate: f64| {
            let w = WorkloadBuilder::new(Scenario::MultiCnn)
                .arrival_rate(rate)
                .num_requests(60)
                .samples_per_variant(4)
                .seed(seed)
                .build();
            let reqs = w.requests();
            (reqs.last().unwrap().arrival_ns - reqs[0].arrival_ns) as f64
        };
        let slow = span(2.0);
        let fast = span(8.0);
        // 4x the rate: span shrinks to ~1/4; allow generous slack for the
        // exponential variance at 60 samples.
        prop_assert!(fast < slow * 0.65, "fast {fast} slow {slow}");
    }

    #[test]
    fn offered_load_scales_with_rate(seed in 0u64..200) {
        let load = |rate: f64| {
            WorkloadBuilder::new(Scenario::MultiAttNn)
                .arrival_rate(rate)
                .num_requests(80)
                .samples_per_variant(4)
                .seed(seed)
                .build()
                .offered_load()
        };
        prop_assert!(load(10.0) < load(40.0));
    }
}
