//! The streaming request-source abstraction the cluster engine consumes.
//!
//! A [`RequestSource`] is a peekable, forward-only stream of
//! [`Request`]s backed by a Phase-1 trace library. The historical
//! fully-materialized [`Workload`] adapts to it via [`WorkloadSource`]
//! (a cursor over the request slice); the open-loop generator
//! ([`crate::ArrivalSource`]) implements it natively, producing
//! requests lazily so a 10M-request run holds only live state.

use dysta_trace::{SampleTrace, TraceStore};

use crate::{Request, Workload};

/// A forward-only stream of inference requests plus the trace library
/// backing them.
///
/// # Contract
///
/// Implementations must yield requests in non-decreasing `arrival_ns`
/// order with unique ids (the stream — not its consumer — owns id
/// minting), and every yielded request's `spec` must resolve in
/// [`RequestSource::store`]. [`RequestSource::peek_arrival_ns`] must
/// agree with the next [`RequestSource::next_request`] without
/// consuming it.
///
/// The lifetime `'w` is the trace library's: returned trace references
/// outlive the source value itself, which lets a cluster engine hold
/// `&'w SampleTrace` on its nodes while the source keeps streaming.
pub trait RequestSource<'w> {
    /// Arrival instant of the next request, `None` when the stream is
    /// exhausted. Idempotent until the next [`RequestSource::next_request`].
    fn peek_arrival_ns(&mut self) -> Option<u64>;

    /// Produces the next request, advancing the stream.
    fn next_request(&mut self) -> Option<Request>;

    /// The input-sample trace `request` carries.
    ///
    /// # Panics
    ///
    /// May panic if `request` did not come from this source.
    fn trace_for(&self, request: &Request) -> &'w SampleTrace;

    /// The Phase-1 trace library every yielded request resolves in.
    fn store(&self) -> &'w TraceStore;

    /// Total number of requests the stream will yield, when known up
    /// front (both shipped sources know it). Used only for capacity
    /// hints — a lower bound is safe.
    fn len_hint(&self) -> usize;
}

/// A [`RequestSource`] over a fully-materialized [`Workload`]: a
/// cursor walking the request slice. This is the adapter behind the
/// historical `simulate_cluster*` entry points, and the reference the
/// streaming generator is pinned bit-exact against.
#[derive(Debug, Clone)]
pub struct WorkloadSource<'w> {
    workload: &'w Workload,
    cursor: usize,
}

impl<'w> WorkloadSource<'w> {
    /// Starts a cursor at the beginning of `workload`'s request stream.
    pub fn new(workload: &'w Workload) -> Self {
        WorkloadSource {
            workload,
            cursor: 0,
        }
    }
}

impl<'w> RequestSource<'w> for WorkloadSource<'w> {
    fn peek_arrival_ns(&mut self) -> Option<u64> {
        self.workload
            .requests()
            .get(self.cursor)
            .map(|r| r.arrival_ns)
    }

    fn next_request(&mut self) -> Option<Request> {
        let r = self.workload.requests().get(self.cursor).copied();
        if r.is_some() {
            self.cursor += 1;
        }
        r
    }

    fn trace_for(&self, request: &Request) -> &'w SampleTrace {
        self.workload.trace_for(request)
    }

    fn store(&self) -> &'w TraceStore {
        self.workload.store()
    }

    fn len_hint(&self) -> usize {
        self.workload.requests().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scenario, WorkloadBuilder};

    #[test]
    fn workload_source_replays_the_slice_in_order() {
        let w = WorkloadBuilder::new(Scenario::MultiCnn)
            .num_requests(25)
            .samples_per_variant(4)
            .seed(2)
            .build();
        let mut source = WorkloadSource::new(&w);
        assert_eq!(source.len_hint(), 25);
        for expected in w.requests() {
            assert_eq!(source.peek_arrival_ns(), Some(expected.arrival_ns));
            // Peek must be idempotent.
            assert_eq!(source.peek_arrival_ns(), Some(expected.arrival_ns));
            let got = source.next_request().expect("request available");
            assert_eq!(&got, expected);
            assert_eq!(
                source.trace_for(&got).isolated_latency_ns(),
                w.trace_for(expected).isolated_latency_ns()
            );
        }
        assert_eq!(source.peek_arrival_ns(), None);
        assert_eq!(source.next_request(), None);
    }
}
