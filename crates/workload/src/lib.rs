//! Multi-DNN request workload generation (the paper's Section 6.1–6.2).
//!
//! A workload is a stream of inference requests: each request names a
//! sparse-model variant, an input sample (selecting one Phase-1 trace), an
//! arrival time drawn from a Poisson process (per the MLPerf standard the
//! paper follows), and a latency SLO equal to the sample's isolated
//! execution time multiplied by the SLO multiplier `M_slo` (the PREMA
//! convention the paper adopts).
//!
//! [`Scenario`] provides the Table 3 deployment presets: the multi-AttNN
//! personal-assistant mix (BERT + GPT-2 + BART on Sanger) and the
//! multi-CNN visual-perception + hand-tracking mix (SSD + ResNet-50 +
//! VGG-16 + MobileNet on Eyeriss-V2), plus the mobile/AR-VR/datacenter
//! scenario mixes used by the examples.
//!
//! # Examples
//!
//! ```
//! use dysta_workload::{Scenario, WorkloadBuilder};
//!
//! let workload = WorkloadBuilder::new(Scenario::MultiCnn)
//!     .arrival_rate(3.0)
//!     .slo_multiplier(10.0)
//!     .num_requests(50)
//!     .seed(1)
//!     .build();
//! assert_eq!(workload.requests().len(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod request;
mod scenario;
mod scenario_file;
mod source;
mod stream;

pub use builder::{Workload, WorkloadBuilder};
pub use request::Request;
pub use scenario::Scenario;
pub use scenario_file::{load_scenario, parse_scenario, ScenarioError};
pub use source::{RequestSource, WorkloadSource};
pub use stream::{ArrivalProcess, ArrivalSource, PhaseSpec, Popularity, SloModel, StreamSpec};
