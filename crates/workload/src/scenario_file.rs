//! The scenario file format: JSON descriptions of open-loop streams.
//!
//! A scenario file compiles to a [`StreamSpec`] — phases × mix × rate ×
//! popularity × SLO — through a validating loader whose errors name
//! the offending phase, field, and value, so a typo fails with an
//! actionable message instead of a panic deep in generation.
//!
//! ```json
//! {
//!   "seed": 7,
//!   "num_requests": 10000,
//!   "samples_per_variant": 16,
//!   "phases": [
//!     {
//!       "start_s": 0.0,
//!       "mix": "multi-cnn",
//!       "process": {"model": "poisson", "rate": 12.0},
//!       "popularity": {"model": "weighted"},
//!       "slo_multiplier": 10.0
//!     },
//!     {
//!       "start_s": 30.0,
//!       "mix": [{"model": "bert", "pattern": "dense", "weight": 2.0}],
//!       "process": {"model": "flash-crowd", "base_rate": 12.0,
//!                    "peak_rate": 60.0, "start_s": 5.0, "duration_s": 10.0},
//!       "popularity": {"model": "zipfian", "exponent": 1.0},
//!       "slo_multiplier": {"lo": 5.0, "hi": 50.0}
//!     }
//!   ]
//! }
//! ```
//!
//! `mix` is either a [`Scenario`] preset name (`"multi-attnn"`,
//! `"multi-cnn"`, `"datacenter"`, `"ar-vr-wearable"`,
//! `"mobile-assistant"`) or an explicit entry list (`model`, `pattern`,
//! optional `sparsity` rate, `weight`). `process` models: `"poisson"`,
//! `"on-off"`, `"diurnal"`, `"flash-crowd"`. `popularity` (optional,
//! default `"weighted"`): `"weighted"`, `"uniform"`, `"zipfian"`.
//! `slo_multiplier` is a number (fixed) or `{lo, hi}` (per-request
//! uniform). `samples_per_variant` defaults to 64 and `seed` to 0;
//! `num_requests` and `phases` are required.

use std::fmt;
use std::path::Path;
use std::str::FromStr;

use dysta_models::ModelId;
use dysta_sparsity::SparsityPattern;
use dysta_trace::SparseModelSpec;
use serde::Value;

use crate::stream::{ArrivalProcess, PhaseSpec, Popularity, SloModel, StreamSpec};
use crate::Scenario;

/// Why a scenario file (or a hand-built [`StreamSpec`]) is invalid.
/// Every variant renders to one actionable sentence naming the phase
/// and field at fault.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The file could not be read.
    Io(String),
    /// The text is not valid JSON, or a field has the wrong type.
    Malformed(String),
    /// A required field is absent.
    MissingField {
        /// Where the field was expected (e.g. `phase 2 process`).
        context: String,
        /// The missing key.
        field: &'static str,
    },
    /// The phase list is empty.
    EmptyPhases,
    /// `num_requests` is zero.
    ZeroRequests,
    /// `samples_per_variant` is zero.
    ZeroSamples,
    /// The first phase does not start at 0.
    FirstPhaseStart {
        /// The offending start, in seconds.
        start_s: f64,
    },
    /// Phase starts are not strictly increasing (overlap or reorder).
    PhaseOrder {
        /// The offending phase index.
        phase: usize,
        /// Its start, in seconds.
        start_s: f64,
        /// The previous phase's start, in seconds.
        prev_start_s: f64,
    },
    /// A phase's mix has no entries.
    EmptyMix {
        /// The offending phase index.
        phase: usize,
    },
    /// A mix preset name matched no [`Scenario`].
    UnknownMix {
        /// The offending phase index.
        phase: usize,
        /// The unmatched name.
        name: String,
    },
    /// A mix entry's model name matched no [`ModelId`].
    UnknownModel {
        /// The offending phase index.
        phase: usize,
        /// The unmatched name.
        name: String,
    },
    /// A mix entry's pattern name matched no [`SparsityPattern`].
    UnknownPattern {
        /// The offending phase index.
        phase: usize,
        /// The unmatched name.
        name: String,
    },
    /// A process `model` name matched no [`ArrivalProcess`].
    UnknownProcess {
        /// The offending phase index.
        phase: usize,
        /// The unmatched name.
        name: String,
    },
    /// A popularity `model` name matched no [`Popularity`].
    UnknownPopularity {
        /// The offending phase index.
        phase: usize,
        /// The unmatched name.
        name: String,
    },
    /// A rate that must be positive and finite is not.
    NonPositiveRate {
        /// The offending phase index.
        phase: usize,
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A mix weight that must be positive and finite is not.
    NonPositiveWeight {
        /// The offending phase index.
        phase: usize,
        /// The mix entry's model, for the message.
        model: String,
        /// The rejected value.
        value: f64,
    },
    /// An SLO multiplier constraint is violated.
    InvalidSlo {
        /// The offending phase index.
        phase: usize,
        /// What exactly is wrong.
        detail: String,
    },
    /// Any other per-field range violation.
    InvalidField {
        /// The offending phase index, when the field is per-phase.
        phase: Option<usize>,
        /// The offending field.
        field: &'static str,
        /// What exactly is wrong.
        detail: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io(e) => write!(f, "cannot read scenario file: {e}"),
            ScenarioError::Malformed(e) => write!(f, "malformed scenario: {e}"),
            ScenarioError::MissingField { context, field } => {
                write!(f, "{context}: missing required field `{field}`")
            }
            ScenarioError::EmptyPhases => {
                write!(f, "scenario has no phases: at least one phase is required")
            }
            ScenarioError::ZeroRequests => {
                write!(f, "`num_requests` must be at least 1")
            }
            ScenarioError::ZeroSamples => {
                write!(f, "`samples_per_variant` must be at least 1")
            }
            ScenarioError::FirstPhaseStart { start_s } => write!(
                f,
                "phase 0 must start at 0 s (sim-time origin), got start_s = {start_s}"
            ),
            ScenarioError::PhaseOrder {
                phase,
                start_s,
                prev_start_s,
            } => write!(
                f,
                "phase {phase} starts at {start_s} s, which does not follow phase {} \
                 (starts at {prev_start_s} s): phase starts must be strictly increasing \
                 — phases may not overlap",
                phase - 1
            ),
            ScenarioError::EmptyMix { phase } => {
                write!(f, "phase {phase}: mix has no entries")
            }
            ScenarioError::UnknownMix { phase, name } => write!(
                f,
                "phase {phase}: unknown mix preset `{name}` (expected one of multi-attnn, \
                 multi-cnn, datacenter, ar-vr-wearable, mobile-assistant, or an explicit \
                 entry list)"
            ),
            ScenarioError::UnknownModel { phase, name } => {
                write!(f, "phase {phase}: unknown model `{name}` (expected one of ")?;
                for (i, m) in ModelId::ALL.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", m.as_str())?;
                }
                write!(f, ")")
            }
            ScenarioError::UnknownPattern { phase, name } => write!(
                f,
                "phase {phase}: unknown sparsity pattern `{name}` (expected dense, random, \
                 channel, or an n:m block like 2:4)"
            ),
            ScenarioError::UnknownProcess { phase, name } => write!(
                f,
                "phase {phase}: unknown arrival process `{name}` (expected poisson, on-off, \
                 diurnal, or flash-crowd)"
            ),
            ScenarioError::UnknownPopularity { phase, name } => write!(
                f,
                "phase {phase}: unknown popularity model `{name}` (expected weighted, \
                 uniform, or zipfian)"
            ),
            ScenarioError::NonPositiveRate {
                phase,
                field,
                value,
            } => write!(
                f,
                "phase {phase}: `{field}` must be positive and finite, got {value}"
            ),
            ScenarioError::NonPositiveWeight {
                phase,
                model,
                value,
            } => write!(
                f,
                "phase {phase}: mix weight for `{model}` must be positive and finite, \
                 got {value}"
            ),
            ScenarioError::InvalidSlo { phase, detail } => {
                write!(f, "phase {phase}: invalid slo_multiplier: {detail}")
            }
            ScenarioError::InvalidField {
                phase,
                field,
                detail,
            } => match phase {
                Some(p) => write!(f, "phase {p}: invalid `{field}`: {detail}"),
                None => write!(f, "invalid `{field}`: {detail}"),
            },
        }
    }
}

impl std::error::Error for ScenarioError {}

impl StreamSpec {
    /// Checks every semantic invariant the generator relies on; the
    /// loader calls this after parsing, and [`StreamSpec::source`]
    /// re-checks it on hand-built specs.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: empty phase list, zero
    /// request/sample budgets, non-increasing phase starts, empty
    /// mixes, non-positive rates or weights, out-of-range process
    /// parameters, and SLO multipliers below 1 (or inverted ranges).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.phases.is_empty() {
            return Err(ScenarioError::EmptyPhases);
        }
        if self.num_requests == 0 {
            return Err(ScenarioError::ZeroRequests);
        }
        if self.samples_per_variant == 0 {
            return Err(ScenarioError::ZeroSamples);
        }
        if self.phases[0].start_ns != 0 {
            return Err(ScenarioError::FirstPhaseStart {
                start_s: self.phases[0].start_ns as f64 / 1e9,
            });
        }
        for (i, phase) in self.phases.iter().enumerate() {
            if i > 0 && phase.start_ns <= self.phases[i - 1].start_ns {
                return Err(ScenarioError::PhaseOrder {
                    phase: i,
                    start_s: phase.start_ns as f64 / 1e9,
                    prev_start_s: self.phases[i - 1].start_ns as f64 / 1e9,
                });
            }
            if phase.mix.is_empty() {
                return Err(ScenarioError::EmptyMix { phase: i });
            }
            for &(spec, w) in &phase.mix {
                if !(w > 0.0 && w.is_finite()) {
                    return Err(ScenarioError::NonPositiveWeight {
                        phase: i,
                        model: spec.model.as_str().to_owned(),
                        value: w,
                    });
                }
            }
            validate_process(i, &phase.process)?;
            validate_popularity(i, &phase.popularity)?;
            validate_slo(i, &phase.slo)?;
        }
        Ok(())
    }
}

fn positive_rate(phase: usize, field: &'static str, value: f64) -> Result<(), ScenarioError> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(ScenarioError::NonPositiveRate {
            phase,
            field,
            value,
        })
    }
}

fn bounded(
    phase: usize,
    field: &'static str,
    value: f64,
    ok: bool,
    expect: &str,
) -> Result<(), ScenarioError> {
    if ok && value.is_finite() {
        Ok(())
    } else {
        Err(ScenarioError::InvalidField {
            phase: Some(phase),
            field,
            detail: format!("must be {expect}, got {value}"),
        })
    }
}

fn validate_process(phase: usize, process: &ArrivalProcess) -> Result<(), ScenarioError> {
    match *process {
        ArrivalProcess::Poisson { rate } => positive_rate(phase, "rate", rate),
        ArrivalProcess::OnOff {
            on_rate,
            off_rate,
            on_s,
            off_s,
        } => {
            positive_rate(phase, "on_rate", on_rate)?;
            bounded(phase, "off_rate", off_rate, off_rate >= 0.0, ">= 0")?;
            positive_rate(phase, "on_s", on_s)?;
            bounded(phase, "off_s", off_s, off_s >= 0.0, ">= 0")
        }
        ArrivalProcess::Diurnal {
            base_rate,
            amplitude,
            period_s,
        } => {
            positive_rate(phase, "base_rate", base_rate)?;
            bounded(
                phase,
                "amplitude",
                amplitude,
                (0.0..=1.0).contains(&amplitude),
                "within [0, 1]",
            )?;
            positive_rate(phase, "period_s", period_s)
        }
        ArrivalProcess::FlashCrowd {
            base_rate,
            peak_rate,
            start_s,
            duration_s,
        } => {
            positive_rate(phase, "base_rate", base_rate)?;
            positive_rate(phase, "peak_rate", peak_rate)?;
            bounded(phase, "start_s", start_s, start_s >= 0.0, ">= 0")?;
            positive_rate(phase, "duration_s", duration_s)
        }
    }
}

fn validate_popularity(phase: usize, popularity: &Popularity) -> Result<(), ScenarioError> {
    match *popularity {
        Popularity::Weighted | Popularity::Uniform => Ok(()),
        Popularity::Zipfian { exponent } => {
            bounded(phase, "exponent", exponent, exponent >= 0.0, ">= 0")
        }
    }
}

fn validate_slo(phase: usize, slo: &SloModel) -> Result<(), ScenarioError> {
    match *slo {
        SloModel::Fixed(m) => {
            if m >= 1.0 && m.is_finite() {
                Ok(())
            } else {
                Err(ScenarioError::InvalidSlo {
                    phase,
                    detail: format!("multiplier must be finite and >= 1, got {m}"),
                })
            }
        }
        SloModel::Range { lo, hi } => {
            if lo >= 1.0 && hi >= lo && hi.is_finite() {
                Ok(())
            } else {
                Err(ScenarioError::InvalidSlo {
                    phase,
                    detail: format!("need 1 <= lo <= hi, got lo = {lo}, hi = {hi}"),
                })
            }
        }
    }
}

/// Reads and parses a scenario file into a validated [`StreamSpec`].
///
/// # Errors
///
/// [`ScenarioError::Io`] on read failure, otherwise as
/// [`parse_scenario`].
pub fn load_scenario(path: impl AsRef<Path>) -> Result<StreamSpec, ScenarioError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
    parse_scenario(&text)
}

/// Parses scenario JSON into a validated [`StreamSpec`].
///
/// # Errors
///
/// Every parse error names the phase/field at fault; semantic
/// violations are reported via [`StreamSpec::validate`].
pub fn parse_scenario(text: &str) -> Result<StreamSpec, ScenarioError> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| ScenarioError::Malformed(e.to_string()))?;
    let spec = parse_spec(&value)?;
    spec.validate()?;
    Ok(spec)
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::UInt(u) => Some(u as f64),
        Value::Int(i) => Some(i as f64),
        Value::Float(x) => Some(x),
        _ => None,
    }
}

/// A required numeric field of `obj`, with `context` naming the spot
/// for the error message.
fn req_f64(obj: &Value, field: &'static str, context: &str) -> Result<f64, ScenarioError> {
    let v = obj.field(field).map_err(|_| ScenarioError::MissingField {
        context: context.to_owned(),
        field,
    })?;
    as_f64(v).ok_or_else(|| {
        ScenarioError::Malformed(format!(
            "{context}: `{field}` must be a number, found {}",
            v.kind()
        ))
    })
}

fn opt_str<'v>(obj: &'v Value, field: &str) -> Option<&'v str> {
    match obj.field(field) {
        Ok(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn parse_spec(value: &Value) -> Result<StreamSpec, ScenarioError> {
    let phases_value = value
        .field("phases")
        .map_err(|_| ScenarioError::MissingField {
            context: "scenario".to_owned(),
            field: "phases",
        })?;
    let Value::Array(phase_values) = phases_value else {
        return Err(ScenarioError::Malformed(format!(
            "`phases` must be an array, found {}",
            phases_value.kind()
        )));
    };
    let num_requests = req_f64(value, "num_requests", "scenario")?;
    if !(num_requests >= 0.0 && num_requests.fract() == 0.0) {
        return Err(ScenarioError::InvalidField {
            phase: None,
            field: "num_requests",
            detail: format!("must be a non-negative integer, got {num_requests}"),
        });
    }
    let samples_per_variant = match value.field("samples_per_variant") {
        Ok(v) => as_f64(v)
            .filter(|s| *s >= 0.0 && s.fract() == 0.0)
            .ok_or_else(|| ScenarioError::InvalidField {
                phase: None,
                field: "samples_per_variant",
                detail: format!("must be a non-negative integer, found {}", v.kind()),
            })? as u64,
        Err(_) => 64,
    };
    let seed = match value.field("seed") {
        Ok(v) => as_f64(v)
            .filter(|s| *s >= 0.0 && s.fract() == 0.0)
            .ok_or_else(|| ScenarioError::InvalidField {
                phase: None,
                field: "seed",
                detail: format!("must be a non-negative integer, found {}", v.kind()),
            })? as u64,
        Err(_) => 0,
    };
    let phases = phase_values
        .iter()
        .enumerate()
        .map(|(i, p)| parse_phase(i, p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StreamSpec {
        phases,
        num_requests: num_requests as u64,
        samples_per_variant,
        seed,
    })
}

fn parse_phase(i: usize, value: &Value) -> Result<PhaseSpec, ScenarioError> {
    let context = format!("phase {i}");
    let start_s = req_f64(value, "start_s", &context)?;
    if !(start_s >= 0.0 && start_s.is_finite()) {
        return Err(ScenarioError::InvalidField {
            phase: Some(i),
            field: "start_s",
            detail: format!("must be >= 0 and finite, got {start_s}"),
        });
    }
    let mix = parse_mix(
        i,
        value
            .field("mix")
            .map_err(|_| ScenarioError::MissingField {
                context: context.clone(),
                field: "mix",
            })?,
    )?;
    let process = parse_process(
        i,
        value
            .field("process")
            .map_err(|_| ScenarioError::MissingField {
                context: context.clone(),
                field: "process",
            })?,
    )?;
    let popularity = match value.field("popularity") {
        Ok(v) => parse_popularity(i, v)?,
        Err(_) => Popularity::Weighted,
    };
    let slo = parse_slo(
        i,
        value
            .field("slo_multiplier")
            .map_err(|_| ScenarioError::MissingField {
                context,
                field: "slo_multiplier",
            })?,
    )?;
    Ok(PhaseSpec {
        start_ns: (start_s * 1e9).round() as u64,
        process,
        mix,
        popularity,
        slo,
    })
}

fn parse_mix(i: usize, value: &Value) -> Result<Vec<(SparseModelSpec, f64)>, ScenarioError> {
    match value {
        Value::Str(name) => match name.to_ascii_lowercase().as_str() {
            "multi-attnn" | "multi_attnn" | "multiattnn" => Ok(Scenario::MultiAttNn.mix()),
            "multi-cnn" | "multi_cnn" | "multicnn" => Ok(Scenario::MultiCnn.mix()),
            "datacenter" | "data-center" => Ok(Scenario::DataCenter.mix()),
            "ar-vr-wearable" | "ar_vr_wearable" | "arvr" => Ok(Scenario::ArVrWearable.mix()),
            "mobile-assistant" | "mobile_assistant" => Ok(Scenario::MobileAssistant.mix()),
            _ => Err(ScenarioError::UnknownMix {
                phase: i,
                name: name.clone(),
            }),
        },
        Value::Array(entries) => entries
            .iter()
            .map(|entry| {
                let context = format!("phase {i} mix entry");
                let model_name = opt_str(entry, "model").ok_or(ScenarioError::MissingField {
                    context: context.clone(),
                    field: "model",
                })?;
                let model =
                    ModelId::from_str(model_name).map_err(|_| ScenarioError::UnknownModel {
                        phase: i,
                        name: model_name.to_owned(),
                    })?;
                let pattern = match opt_str(entry, "pattern") {
                    None | Some("") => SparsityPattern::Dense,
                    Some(name) => SparsityPattern::from_str(name).map_err(|_| {
                        ScenarioError::UnknownPattern {
                            phase: i,
                            name: name.to_owned(),
                        }
                    })?,
                };
                let sparsity = match entry.field("sparsity") {
                    Ok(v) => as_f64(v).ok_or_else(|| {
                        ScenarioError::Malformed(format!(
                            "{context}: `sparsity` must be a number, found {}",
                            v.kind()
                        ))
                    })?,
                    Err(_) => 0.0,
                };
                let weight = req_f64(entry, "weight", &context)?;
                Ok((SparseModelSpec::new(model, pattern, sparsity), weight))
            })
            .collect(),
        other => Err(ScenarioError::Malformed(format!(
            "phase {i}: `mix` must be a preset name or an entry array, found {}",
            other.kind()
        ))),
    }
}

fn parse_process(i: usize, value: &Value) -> Result<ArrivalProcess, ScenarioError> {
    let context = format!("phase {i} process");
    let name = opt_str(value, "model").ok_or(ScenarioError::MissingField {
        context: context.clone(),
        field: "model",
    })?;
    match name.to_ascii_lowercase().as_str() {
        "poisson" => Ok(ArrivalProcess::Poisson {
            rate: req_f64(value, "rate", &context)?,
        }),
        "on-off" | "on_off" | "onoff" => Ok(ArrivalProcess::OnOff {
            on_rate: req_f64(value, "on_rate", &context)?,
            off_rate: req_f64(value, "off_rate", &context)?,
            on_s: req_f64(value, "on_s", &context)?,
            off_s: req_f64(value, "off_s", &context)?,
        }),
        "diurnal" => Ok(ArrivalProcess::Diurnal {
            base_rate: req_f64(value, "base_rate", &context)?,
            amplitude: req_f64(value, "amplitude", &context)?,
            period_s: req_f64(value, "period_s", &context)?,
        }),
        "flash-crowd" | "flash_crowd" | "flashcrowd" => Ok(ArrivalProcess::FlashCrowd {
            base_rate: req_f64(value, "base_rate", &context)?,
            peak_rate: req_f64(value, "peak_rate", &context)?,
            start_s: req_f64(value, "start_s", &context)?,
            duration_s: req_f64(value, "duration_s", &context)?,
        }),
        _ => Err(ScenarioError::UnknownProcess {
            phase: i,
            name: name.to_owned(),
        }),
    }
}

fn parse_popularity(i: usize, value: &Value) -> Result<Popularity, ScenarioError> {
    let context = format!("phase {i} popularity");
    let name = opt_str(value, "model").ok_or(ScenarioError::MissingField {
        context: context.clone(),
        field: "model",
    })?;
    match name.to_ascii_lowercase().as_str() {
        "weighted" => Ok(Popularity::Weighted),
        "uniform" => Ok(Popularity::Uniform),
        "zipfian" | "zipf" => Ok(Popularity::Zipfian {
            exponent: req_f64(value, "exponent", &context)?,
        }),
        _ => Err(ScenarioError::UnknownPopularity {
            phase: i,
            name: name.to_owned(),
        }),
    }
}

fn parse_slo(i: usize, value: &Value) -> Result<SloModel, ScenarioError> {
    if let Some(m) = as_f64(value) {
        return Ok(SloModel::Fixed(m));
    }
    if let Value::Object(_) = value {
        let context = format!("phase {i} slo_multiplier");
        return Ok(SloModel::Range {
            lo: req_f64(value, "lo", &context)?,
            hi: req_f64(value, "hi", &context)?,
        });
    }
    Err(ScenarioError::Malformed(format!(
        "phase {i}: `slo_multiplier` must be a number or {{lo, hi}}, found {}",
        value.kind()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "seed": 7,
        "num_requests": 50,
        "samples_per_variant": 4,
        "phases": [
            {"start_s": 0.0, "mix": "multi-cnn",
             "process": {"model": "poisson", "rate": 12.0},
             "slo_multiplier": 10.0},
            {"start_s": 3.0,
             "mix": [{"model": "bert", "pattern": "dense", "weight": 2.0},
                      {"model": "gpt2", "weight": 1.0}],
             "process": {"model": "flash-crowd", "base_rate": 12.0,
                          "peak_rate": 60.0, "start_s": 0.5, "duration_s": 1.0},
             "popularity": {"model": "zipfian", "exponent": 1.0},
             "slo_multiplier": {"lo": 5.0, "hi": 50.0}}
        ]
    }"#;

    #[test]
    fn parses_a_full_two_phase_scenario() {
        let spec = parse_scenario(GOOD).expect("valid scenario");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.num_requests, 50);
        assert_eq!(spec.samples_per_variant, 4);
        assert_eq!(spec.phases.len(), 2);
        assert_eq!(spec.phases[0].mix, Scenario::MultiCnn.mix());
        assert_eq!(spec.phases[0].popularity, Popularity::Weighted);
        assert_eq!(spec.phases[1].start_ns, 3_000_000_000);
        assert_eq!(spec.phases[1].mix.len(), 2);
        assert_eq!(spec.phases[1].mix[0].0.model, ModelId::Bert);
        assert_eq!(spec.phases[1].slo, SloModel::Range { lo: 5.0, hi: 50.0 });
        // The parsed spec must actually generate.
        let w = spec.materialize();
        assert_eq!(w.requests().len(), 50);
    }

    #[test]
    fn defaults_samples_and_seed() {
        let spec = parse_scenario(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 0, "mix": "multi-cnn",
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": 10.0}]}"#,
        )
        .expect("valid");
        assert_eq!(spec.samples_per_variant, 64);
        assert_eq!(spec.seed, 0);
    }

    fn err_of(text: &str) -> ScenarioError {
        parse_scenario(text).expect_err("scenario must be rejected")
    }

    #[test]
    fn rejects_empty_phases() {
        let err = err_of(r#"{"num_requests": 5, "phases": []}"#);
        assert_eq!(err, ScenarioError::EmptyPhases);
        assert!(err.to_string().contains("at least one phase"));
    }

    #[test]
    fn rejects_zero_requests() {
        let err = err_of(
            r#"{"num_requests": 0, "phases": [
                {"start_s": 0, "mix": "multi-cnn",
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": 10.0}]}"#,
        );
        assert_eq!(err, ScenarioError::ZeroRequests);
    }

    #[test]
    fn rejects_non_positive_rate() {
        let err = err_of(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 0, "mix": "multi-cnn",
                 "process": {"model": "poisson", "rate": -2.0},
                 "slo_multiplier": 10.0}]}"#,
        );
        assert_eq!(
            err,
            ScenarioError::NonPositiveRate {
                phase: 0,
                field: "rate",
                value: -2.0
            }
        );
        assert!(err.to_string().contains("must be positive and finite"));
    }

    #[test]
    fn rejects_non_positive_weight() {
        let err = err_of(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 0,
                 "mix": [{"model": "bert", "weight": 0.0}],
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": 10.0}]}"#,
        );
        assert!(matches!(
            err,
            ScenarioError::NonPositiveWeight { phase: 0, value, .. } if value == 0.0
        ));
        assert!(err.to_string().contains("mix weight for `bert`"));
    }

    #[test]
    fn rejects_overlapping_phase_boundaries() {
        let err = err_of(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 0, "mix": "multi-cnn",
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": 10.0},
                {"start_s": 2.0, "mix": "multi-cnn",
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": 10.0},
                {"start_s": 1.0, "mix": "multi-cnn",
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": 10.0}]}"#,
        );
        assert_eq!(
            err,
            ScenarioError::PhaseOrder {
                phase: 2,
                start_s: 1.0,
                prev_start_s: 2.0
            }
        );
        assert!(err.to_string().contains("strictly increasing"));
    }

    #[test]
    fn rejects_first_phase_not_at_origin() {
        let err = err_of(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 1.5, "mix": "multi-cnn",
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": 10.0}]}"#,
        );
        assert_eq!(err, ScenarioError::FirstPhaseStart { start_s: 1.5 });
    }

    #[test]
    fn rejects_unknown_model_name() {
        let err = err_of(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 0,
                 "mix": [{"model": "alexnet", "weight": 1.0}],
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": 10.0}]}"#,
        );
        assert_eq!(
            err,
            ScenarioError::UnknownModel {
                phase: 0,
                name: "alexnet".to_owned()
            }
        );
        assert!(err.to_string().contains("expected one of ssd"));
    }

    #[test]
    fn rejects_unknown_mix_preset_process_and_popularity() {
        let base = |mix: &str, process: &str, popularity: &str| {
            format!(
                r#"{{"num_requests": 5, "phases": [
                    {{"start_s": 0, "mix": {mix},
                     "process": {process},
                     "popularity": {popularity},
                     "slo_multiplier": 10.0}}]}}"#
            )
        };
        let err = err_of(&base(
            "\"cnn-zoo\"",
            r#"{"model": "poisson", "rate": 3.0}"#,
            r#"{"model": "weighted"}"#,
        ));
        assert!(
            matches!(err, ScenarioError::UnknownMix { phase: 0, ref name } if name == "cnn-zoo")
        );
        let err = err_of(&base(
            "\"multi-cnn\"",
            r#"{"model": "pareto", "rate": 3.0}"#,
            r#"{"model": "weighted"}"#,
        ));
        assert!(
            matches!(err, ScenarioError::UnknownProcess { phase: 0, ref name } if name == "pareto")
        );
        let err = err_of(&base(
            "\"multi-cnn\"",
            r#"{"model": "poisson", "rate": 3.0}"#,
            r#"{"model": "pareto"}"#,
        ));
        assert!(
            matches!(err, ScenarioError::UnknownPopularity { phase: 0, ref name } if name == "pareto")
        );
    }

    #[test]
    fn rejects_inverted_slo_range_and_sub_one_multiplier() {
        let err = err_of(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 0, "mix": "multi-cnn",
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": {"lo": 50.0, "hi": 5.0}}]}"#,
        );
        assert!(matches!(err, ScenarioError::InvalidSlo { phase: 0, .. }));
        let err = err_of(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 0, "mix": "multi-cnn",
                 "process": {"model": "poisson", "rate": 3.0},
                 "slo_multiplier": 0.5}]}"#,
        );
        assert!(matches!(err, ScenarioError::InvalidSlo { phase: 0, .. }));
    }

    #[test]
    fn rejects_missing_required_fields_and_bad_json() {
        let err = err_of(r#"{"phases": []}"#);
        assert!(matches!(
            err,
            ScenarioError::MissingField {
                field: "num_requests",
                ..
            }
        ));
        let err = err_of(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 0, "mix": "multi-cnn",
                 "slo_multiplier": 10.0}]}"#,
        );
        assert!(matches!(
            err,
            ScenarioError::MissingField {
                field: "process",
                ..
            }
        ));
        let err = err_of("not json at all");
        assert!(matches!(err, ScenarioError::Malformed(_)));
    }

    #[test]
    fn rejects_out_of_range_diurnal_amplitude() {
        let err = err_of(
            r#"{"num_requests": 5, "phases": [
                {"start_s": 0, "mix": "multi-cnn",
                 "process": {"model": "diurnal", "base_rate": 3.0,
                              "amplitude": 1.5, "period_s": 10.0},
                 "slo_multiplier": 10.0}]}"#,
        );
        assert!(matches!(
            err,
            ScenarioError::InvalidField {
                phase: Some(0),
                field: "amplitude",
                ..
            }
        ));
    }
}
