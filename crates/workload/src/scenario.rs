//! Deployment scenario presets (the paper's Table 3).

use dysta_models::ModelId;
use dysta_sparsity::SparsityPattern;
use dysta_trace::SparseModelSpec;

/// A deployment scenario defining the model mix of a workload.
///
/// `MultiAttNn` and `MultiCnn` are the two mixes evaluated throughout the
/// paper's Section 6; the remaining three are the Table 3 deployment
/// settings used by the examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Personal assistant on a mobile phone: machine translation
    /// (BART, GPT-2) + question answering (BERT), on Sanger.
    MultiAttNn,
    /// Visual perception + hand tracking: SSD, ResNet-50, VGG-16,
    /// MobileNet with mixed weight-sparsity patterns, on Eyeriss-V2.
    MultiCnn,
    /// Data center visual perception: object detection (SSD) + image
    /// classification (VGG-16, ResNet-50).
    DataCenter,
    /// AR/VR wearable: hand detection (SSD) + gesture recognition
    /// (MobileNet), latency-critical.
    ArVrWearable,
    /// Mobile-phone personal assistant (alias of the multi-AttNN mix).
    MobileAssistant,
}

impl Scenario {
    /// The sparse-model variants this scenario samples from, with their
    /// mixing weights.
    ///
    /// CNN variants carry the Section 3.2 sparsification recipes (random
    /// point-wise, 2:4 block-wise, channel-wise at representative rates);
    /// AttNN variants rely on dynamic attention sparsity, so their weights
    /// stay dense.
    pub fn mix(self) -> Vec<(SparseModelSpec, f64)> {
        match self {
            Scenario::MultiAttNn | Scenario::MobileAssistant => vec![
                (spec(ModelId::Bert, SparsityPattern::Dense, 0.0), 1.0),
                (spec(ModelId::Gpt2, SparsityPattern::Dense, 0.0), 1.0),
                (spec(ModelId::Bart, SparsityPattern::Dense, 0.0), 1.0),
            ],
            Scenario::MultiCnn => vec![
                (
                    spec(ModelId::Ssd, SparsityPattern::RandomPointwise, 0.8),
                    1.0,
                ),
                (
                    spec(ModelId::ResNet50, SparsityPattern::RandomPointwise, 0.8),
                    0.5,
                ),
                (
                    spec(
                        ModelId::ResNet50,
                        SparsityPattern::BlockNm { n: 2, m: 4 },
                        0.5,
                    ),
                    0.5,
                ),
                (spec(ModelId::Vgg16, SparsityPattern::ChannelWise, 0.6), 0.5),
                (
                    spec(ModelId::Vgg16, SparsityPattern::RandomPointwise, 0.8),
                    0.5,
                ),
                (
                    spec(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.7),
                    1.0,
                ),
            ],
            Scenario::DataCenter => vec![
                (
                    spec(ModelId::Ssd, SparsityPattern::RandomPointwise, 0.8),
                    1.0,
                ),
                (spec(ModelId::Vgg16, SparsityPattern::ChannelWise, 0.6), 1.0),
                (
                    spec(
                        ModelId::ResNet50,
                        SparsityPattern::BlockNm { n: 2, m: 4 },
                        0.5,
                    ),
                    1.0,
                ),
            ],
            Scenario::ArVrWearable => vec![
                (
                    spec(ModelId::Ssd, SparsityPattern::RandomPointwise, 0.8),
                    1.0,
                ),
                (
                    spec(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.7),
                    1.0,
                ),
            ],
        }
    }

    /// The arrival rate (samples/s) the paper uses as this scenario's
    /// default operating point.
    pub fn default_arrival_rate(self) -> f64 {
        match self {
            Scenario::MultiAttNn | Scenario::MobileAssistant => 30.0,
            Scenario::MultiCnn | Scenario::DataCenter | Scenario::ArVrWearable => 3.0,
        }
    }
}

fn spec(model: ModelId, pattern: SparsityPattern, rate: f64) -> SparseModelSpec {
    SparseModelSpec::new(model, pattern, rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelFamily;

    #[test]
    fn attnn_mix_is_all_attention_models() {
        for (s, _) in Scenario::MultiAttNn.mix() {
            assert_eq!(s.model.family(), ModelFamily::AttNn);
            assert_eq!(s.pattern, SparsityPattern::Dense);
        }
    }

    #[test]
    fn cnn_mix_is_all_cnns_with_varied_patterns() {
        let mix = Scenario::MultiCnn.mix();
        assert!(mix
            .iter()
            .all(|(s, _)| s.model.family() == ModelFamily::Cnn));
        let patterns: std::collections::HashSet<String> =
            mix.iter().map(|(s, _)| s.pattern.short_name()).collect();
        assert!(patterns.len() >= 3, "need pattern diversity for Dysta");
    }

    #[test]
    fn weights_are_positive() {
        for sc in [
            Scenario::MultiAttNn,
            Scenario::MultiCnn,
            Scenario::DataCenter,
            Scenario::ArVrWearable,
            Scenario::MobileAssistant,
        ] {
            assert!(!sc.mix().is_empty());
            assert!(sc.mix().iter().all(|&(_, w)| w > 0.0));
            assert!(sc.default_arrival_rate() > 0.0);
        }
    }
}
