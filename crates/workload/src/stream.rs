//! Open-loop streaming workload generation (berserker-style).
//!
//! [`StreamSpec`] describes a request stream as a sequence of
//! [`PhaseSpec`]s — each phase owns an [`ArrivalProcess`] (steady
//! Poisson, bursty on/off, diurnal curve, flash crowd), a weighted
//! model mix reshaped by a [`Popularity`] model (Uniform / Zipfian),
//! and an [`SloModel`] — switching mix, rate, and SLO class at
//! sim-time boundaries. [`ArrivalSource`] streams the requests lazily
//! with a deterministic per-phase RNG, so a 10M-request run holds only
//! the live lookahead, never the materialized trace.
//!
//! **Bit-exactness contract:** a single steady-Poisson phase with
//! [`Popularity::Weighted`] draws its RNG in exactly the order
//! [`crate::WorkloadBuilder::build`] does (gap → spec walk → sample →
//! multiplier, seeded identically), so [`StreamSpec::materialize`]
//! reproduces the builder's requests byte-identically — that
//! equivalence is the golden-fixture regression gate for the whole
//! streaming path (property-pinned in `tests/stream_equivalence.rs`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dysta_sparsity::distributions::exponential;
use dysta_trace::{SampleTrace, SparseModelSpec, TraceGenerator, TraceStore};

use crate::source::RequestSource;
use crate::{Request, Scenario, Workload};

/// How arrival instants are drawn within one phase. All rates are in
/// requests per second; all process clocks are relative to the phase's
/// start, so a phase switch restarts the profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Steady Poisson arrivals (exponential gaps) — the builder's
    /// historical process, bit-exact with it.
    Poisson {
        /// Mean arrival rate (req/s).
        rate: f64,
    },
    /// Bursty on/off traffic: `on_s` seconds at `on_rate`, then
    /// `off_s` seconds at `off_rate`, repeating. A Poisson process
    /// with a periodic piecewise-constant rate (sampled exactly via
    /// unit-rate hazard integration, not per-segment thinning).
    OnOff {
        /// Rate inside a burst (req/s); must be positive.
        on_rate: f64,
        /// Rate between bursts (req/s); zero silences the off window.
        off_rate: f64,
        /// Burst length in seconds.
        on_s: f64,
        /// Quiet length in seconds.
        off_s: f64,
    },
    /// A sinusoidal day/night load curve:
    /// `rate(t) = base_rate × (1 + amplitude × sin(2πt / period_s))`,
    /// sampled by thinning against the curve's peak rate.
    Diurnal {
        /// Mean rate around which the curve oscillates (req/s).
        base_rate: f64,
        /// Relative swing in `[0, 1]` (1 silences the trough).
        amplitude: f64,
        /// Oscillation period in seconds.
        period_s: f64,
    },
    /// Steady traffic at `base_rate` with one burst window at
    /// `peak_rate` covering `[start_s, start_s + duration_s)` of the
    /// phase — the flash-crowd shape the load-curve figures sweep.
    FlashCrowd {
        /// Rate outside the crowd window (req/s).
        base_rate: f64,
        /// Rate inside the crowd window (req/s).
        peak_rate: f64,
        /// Window start, seconds after the phase begins.
        start_s: f64,
        /// Window length in seconds.
        duration_s: f64,
    },
}

impl ArrivalProcess {
    /// The next candidate arrival instant after `now_ns`, drawing from
    /// `rng`. Process profiles are anchored at `phase_start_ns`.
    /// Non-decreasing in `now_ns` (gaps can round to zero).
    fn next_arrival_ns(&self, rng: &mut StdRng, now_ns: u64, phase_start_ns: u64) -> u64 {
        match *self {
            // Bit-exact with `WorkloadBuilder::build`: one exponential
            // draw, the gap rounded to nanoseconds.
            ArrivalProcess::Poisson { rate } => {
                let gap_s = exponential(rng, rate);
                now_ns + (gap_s * 1e9).round() as u64
            }
            ArrivalProcess::OnOff {
                on_rate,
                off_rate,
                on_s,
                off_s,
            } => {
                let period = on_s + off_s;
                let rel_s = (now_ns - phase_start_ns) as f64 / 1e9;
                let t_s = piecewise_next(rng, rel_s, |t| {
                    let pos = t % period;
                    if pos < on_s {
                        (on_rate, t + (on_s - pos))
                    } else {
                        (off_rate, t + (period - pos))
                    }
                });
                phase_start_ns + (t_s * 1e9).round() as u64
            }
            ArrivalProcess::Diurnal {
                base_rate,
                amplitude,
                period_s,
            } => {
                let rate_max = base_rate * (1.0 + amplitude);
                let mut t_s = (now_ns - phase_start_ns) as f64 / 1e9;
                loop {
                    t_s += exponential(rng, rate_max);
                    let rate = base_rate
                        * (1.0 + amplitude * (std::f64::consts::TAU * t_s / period_s).sin());
                    if rng.gen::<f64>() * rate_max <= rate {
                        break;
                    }
                }
                phase_start_ns + (t_s * 1e9).round() as u64
            }
            ArrivalProcess::FlashCrowd {
                base_rate,
                peak_rate,
                start_s,
                duration_s,
            } => {
                let end_s = start_s + duration_s;
                let rel_s = (now_ns - phase_start_ns) as f64 / 1e9;
                let t_s = piecewise_next(rng, rel_s, |t| {
                    if t < start_s {
                        (base_rate, start_s)
                    } else if t < end_s {
                        (peak_rate, end_s)
                    } else {
                        (base_rate, f64::INFINITY)
                    }
                });
                phase_start_ns + (t_s * 1e9).round() as u64
            }
        }
    }
}

/// Exact next-event sampling for a piecewise-constant rate profile:
/// draw one unit-rate exponential and integrate the hazard
/// `rate(t) dt` forward from `start_s` until it is spent. `segment(t)`
/// returns the rate covering `t` and the instant that segment ends
/// (`f64::INFINITY` for an unbounded tail). Zero-rate segments are
/// skipped without consuming hazard.
fn piecewise_next(rng: &mut StdRng, start_s: f64, segment: impl Fn(f64) -> (f64, f64)) -> f64 {
    let mut need = exponential(rng, 1.0);
    let mut t_s = start_s;
    loop {
        let (rate, seg_end) = segment(t_s);
        if rate <= 0.0 {
            t_s = seg_end;
            continue;
        }
        let hazard = rate * (seg_end - t_s);
        if need <= hazard {
            return t_s + need / rate;
        }
        need -= hazard;
        t_s = seg_end;
    }
}

/// How request popularity distributes over a phase's model mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Use the mix's own weights verbatim (the builder's behavior).
    Weighted,
    /// Every variant equally likely, ignoring mix weights.
    Uniform,
    /// Zipfian by mix position: the `i`-th variant (0-based) gets
    /// weight `1 / (i + 1)^exponent` — first entries dominate, the
    /// tail thins. Exponent 0 degenerates to uniform.
    Zipfian {
        /// The Zipf exponent `s ≥ 0` (1.0 is the classic curve).
        exponent: f64,
    },
}

impl Popularity {
    /// The effective sampling weight of each mix entry, in mix order.
    pub fn effective_weights(&self, mix: &[(SparseModelSpec, f64)]) -> Vec<f64> {
        match *self {
            Popularity::Weighted => mix.iter().map(|&(_, w)| w).collect(),
            Popularity::Uniform => vec![1.0; mix.len()],
            Popularity::Zipfian { exponent } => (0..mix.len())
                .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
                .collect(),
        }
    }
}

/// How a phase assigns SLOs, as a multiplier on the variant's profiled
/// isolated latency (`SLO = T_isol × M_slo`, the PREMA convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloModel {
    /// One multiplier for every request (no RNG draw — bit-exact with
    /// the builder's fixed-multiplier path).
    Fixed(f64),
    /// Per-request multiplier drawn uniformly from `[lo, hi]`
    /// (bit-exact with [`crate::WorkloadBuilder::slo_multiplier_range`]).
    Range {
        /// Lower multiplier bound (≥ 1).
        lo: f64,
        /// Upper multiplier bound (≥ `lo`).
        hi: f64,
    },
}

/// One phase of an open-loop stream: from `start_ns` until the next
/// phase begins (or the request budget runs out), arrivals follow
/// `process` over `mix` reshaped by `popularity`, with SLOs from `slo`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase start in nanoseconds of sim-time. The first phase must
    /// start at 0; starts must be strictly increasing.
    pub start_ns: u64,
    /// The arrival process active during this phase.
    pub process: ArrivalProcess,
    /// The weighted model mix requests sample from.
    pub mix: Vec<(SparseModelSpec, f64)>,
    /// How popularity reshapes the mix weights.
    pub popularity: Popularity,
    /// How SLOs are assigned.
    pub slo: SloModel,
}

impl PhaseSpec {
    /// A steady-Poisson phase over a mix at its native weights — the
    /// shape equivalent to one [`crate::WorkloadBuilder`] configuration.
    pub fn steady(
        start_ns: u64,
        rate: f64,
        mix: Vec<(SparseModelSpec, f64)>,
        slo: SloModel,
    ) -> Self {
        PhaseSpec {
            start_ns,
            process: ArrivalProcess::Poisson { rate },
            mix,
            popularity: Popularity::Weighted,
            slo,
        }
    }
}

/// A complete open-loop stream description: phases plus the global
/// request budget, trace fidelity, and seed. Validated by
/// [`StreamSpec::validate`] (in the scenario-file module); consumed by
/// [`StreamSpec::source`] / [`StreamSpec::materialize`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// The phase sequence, by ascending `start_ns`.
    pub phases: Vec<PhaseSpec>,
    /// Total number of requests the stream yields.
    pub num_requests: u64,
    /// Phase-1 input samples traced per variant.
    pub samples_per_variant: u64,
    /// Seed for arrivals, popularity, and SLO draws. Traces use
    /// `seed ^ 0xD15A` exactly like the builder, so changing the
    /// arrival pattern keeps the trace library fixed.
    pub seed: u64,
}

/// Per-phase RNG seed: phase 0 uses the stream seed verbatim (the
/// bit-exactness anchor with [`crate::WorkloadBuilder`]); later phases
/// decorrelate via a golden-ratio hash of their index.
fn phase_seed(seed: u64, phase: usize) -> u64 {
    seed ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl StreamSpec {
    /// A single steady-Poisson phase over a scenario preset — the
    /// streaming equivalent of `WorkloadBuilder::new(scenario)` with
    /// the same defaults (1000 requests, 64 samples, seed 0).
    pub fn steady_poisson(scenario: Scenario, rate: f64, slo_multiplier: f64) -> Self {
        StreamSpec {
            phases: vec![PhaseSpec::steady(
                0,
                rate,
                scenario.mix(),
                SloModel::Fixed(slo_multiplier),
            )],
            num_requests: 1000,
            samples_per_variant: 64,
            seed: 0,
        }
    }

    /// Sets the total request budget (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn num_requests(mut self, n: u64) -> Self {
        assert!(n > 0, "need at least one request");
        self.num_requests = n;
        self
    }

    /// Sets the per-variant trace sample count (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn samples_per_variant(mut self, n: u64) -> Self {
        assert!(n > 0, "need at least one sample");
        self.samples_per_variant = n;
        self
    }

    /// Sets the stream seed (builder-style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the Phase-1 trace library backing every phase's mix:
    /// one [`dysta_trace::ModelTraces`] per distinct variant, seeded
    /// `seed ^ 0xD15A` exactly like the builder (so a steady stream
    /// and its builder twin share traces byte-for-byte).
    pub fn build_store(&self) -> TraceStore {
        let generator = TraceGenerator::default();
        let mut store = TraceStore::new();
        let mut seen: Vec<String> = Vec::new();
        for phase in &self.phases {
            for (spec, _) in &phase.mix {
                let key = spec.key();
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                store.insert(generator.generate(
                    spec,
                    self.samples_per_variant,
                    self.seed ^ 0xD15A,
                ));
            }
        }
        store
    }

    /// Opens a streaming [`ArrivalSource`] over a store built by
    /// [`StreamSpec::build_store`] (borrowed, so many sources can share
    /// one library — the sweep binaries reuse it across load factors).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`StreamSpec::validate`] or the store
    /// is missing any mix variant.
    pub fn source<'w>(&self, store: &'w TraceStore) -> ArrivalSource<'w> {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid stream spec: {e}"));
        let phases: Vec<RuntimePhase> = self
            .phases
            .iter()
            .enumerate()
            .map(|(i, phase)| {
                let weights = phase.popularity.effective_weights(&phase.mix);
                let specs: Vec<SparseModelSpec> = phase.mix.iter().map(|&(s, _)| s).collect();
                let isolated_ns: Vec<f64> = specs
                    .iter()
                    .map(|s| {
                        store
                            .get(s)
                            .unwrap_or_else(|| panic!("store is missing traces for {s}"))
                            .avg_latency_ns()
                    })
                    .collect();
                RuntimePhase {
                    start_ns: phase.start_ns,
                    end_ns: self.phases.get(i + 1).map(|p| p.start_ns),
                    process: phase.process,
                    specs,
                    total_weight: weights.iter().sum(),
                    weights,
                    slo: phase.slo,
                    isolated_ns,
                }
            })
            .collect();
        ArrivalSource {
            store,
            phases,
            samples_per_variant: self.samples_per_variant,
            seed: self.seed,
            remaining: self.num_requests,
            next_id: 0,
            phase_idx: 0,
            rng: StdRng::seed_from_u64(phase_seed(self.seed, 0)),
            now_ns: 0,
            lookahead: None,
        }
    }

    /// Drains the stream into a fully-materialized [`Workload`] — the
    /// adapter the bit-exactness gate compares against
    /// [`crate::WorkloadBuilder::build`].
    pub fn materialize(&self) -> Workload {
        let store = self.build_store();
        let mut requests = Vec::with_capacity(self.num_requests.min(1 << 24) as usize);
        {
            let mut source = self.source(&store);
            while let Some(r) = source.next_request() {
                requests.push(r);
            }
        }
        Workload::from_parts(requests, store)
    }
}

/// One phase compiled for generation: effective weights resolved,
/// isolated latencies cached, boundary precomputed.
struct RuntimePhase {
    start_ns: u64,
    /// The next phase's start (`None` for the last phase).
    end_ns: Option<u64>,
    process: ArrivalProcess,
    specs: Vec<SparseModelSpec>,
    weights: Vec<f64>,
    total_weight: f64,
    slo: SloModel,
    /// Profiled `T_isol` per spec (the SLO base), in spec order.
    isolated_ns: Vec<f64>,
}

/// The streaming generator: a lazy, deterministic [`RequestSource`]
/// over a [`StreamSpec`]. Holds one lookahead request and the current
/// phase RNG — constant live state regardless of `num_requests`.
///
/// A candidate arrival that crosses the next phase boundary is dropped
/// (its draws are consumed) and generation re-enters at the boundary
/// with that phase's own seed, so each phase's stream is independent
/// of how the previous phase ended. For the memoryless Poisson process
/// this restart is distribution-exact.
pub struct ArrivalSource<'w> {
    store: &'w TraceStore,
    phases: Vec<RuntimePhase>,
    samples_per_variant: u64,
    seed: u64,
    /// Requests still to yield (counts down to 0).
    remaining: u64,
    next_id: u64,
    phase_idx: usize,
    rng: StdRng,
    now_ns: u64,
    lookahead: Option<Request>,
}

impl<'w> ArrivalSource<'w> {
    /// Generates the next request, or `None` when the budget is spent.
    fn generate(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            let phase = &self.phases[self.phase_idx];
            let candidate =
                phase
                    .process
                    .next_arrival_ns(&mut self.rng, self.now_ns, phase.start_ns);
            if let Some(end) = phase.end_ns {
                if candidate >= end {
                    // The candidate lands beyond this phase: drop it and
                    // restart generation at the boundary under the next
                    // phase's own RNG.
                    self.phase_idx += 1;
                    self.now_ns = end;
                    self.rng = StdRng::seed_from_u64(phase_seed(self.seed, self.phase_idx));
                    continue;
                }
            }
            self.now_ns = candidate;
            let phase = &self.phases[self.phase_idx];
            // Same draw order as the builder: spec walk, sample, SLO.
            let mut target = self.rng.gen::<f64>() * phase.total_weight;
            let mut chosen = phase.specs.len() - 1;
            for (i, &w) in phase.weights.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            let sample_index = self.rng.gen_range(0..self.samples_per_variant);
            let multiplier = match phase.slo {
                SloModel::Fixed(m) => m,
                SloModel::Range { lo, hi } => self.rng.gen_range(lo..=hi),
            };
            let slo_ns = (phase.isolated_ns[chosen] * multiplier).round() as u64;
            let id = self.next_id;
            self.next_id += 1;
            self.remaining -= 1;
            return Some(Request {
                id,
                spec: phase.specs[chosen],
                sample_index,
                arrival_ns: candidate,
                slo_ns,
            });
        }
    }
}

impl<'w> RequestSource<'w> for ArrivalSource<'w> {
    fn peek_arrival_ns(&mut self) -> Option<u64> {
        if self.lookahead.is_none() {
            self.lookahead = self.generate();
        }
        self.lookahead.as_ref().map(|r| r.arrival_ns)
    }

    fn next_request(&mut self) -> Option<Request> {
        match self.lookahead.take() {
            Some(r) => Some(r),
            None => self.generate(),
        }
    }

    fn trace_for(&self, request: &Request) -> &'w SampleTrace {
        self.store
            .get(&request.spec)
            .expect("stream invariant: traces exist for every yielded request")
            .sample(request.sample_index)
    }

    fn store(&self) -> &'w TraceStore {
        self.store
    }

    fn len_hint(&self) -> usize {
        self.remaining
            .saturating_add(u64::from(self.lookahead.is_some()))
            .min(usize::MAX as u64) as usize
    }
}

impl Iterator for ArrivalSource<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        self.next_request()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadBuilder;

    #[test]
    fn steady_poisson_matches_builder_bit_exactly() {
        let built = WorkloadBuilder::new(Scenario::MultiCnn)
            .arrival_rate(5.0)
            .slo_multiplier(10.0)
            .num_requests(120)
            .samples_per_variant(8)
            .seed(11)
            .build();
        let streamed = StreamSpec::steady_poisson(Scenario::MultiCnn, 5.0, 10.0)
            .num_requests(120)
            .samples_per_variant(8)
            .seed(11)
            .materialize();
        assert_eq!(built.requests(), streamed.requests());
        assert_eq!(built.store(), streamed.store());
    }

    #[test]
    fn slo_range_matches_builder_bit_exactly() {
        let built = WorkloadBuilder::new(Scenario::MultiAttNn)
            .arrival_rate(30.0)
            .slo_multiplier_range(5.0, 50.0)
            .num_requests(80)
            .samples_per_variant(4)
            .seed(3)
            .build();
        let mut spec = StreamSpec::steady_poisson(Scenario::MultiAttNn, 30.0, 10.0)
            .num_requests(80)
            .samples_per_variant(4)
            .seed(3);
        spec.phases[0].slo = SloModel::Range { lo: 5.0, hi: 50.0 };
        assert_eq!(built.requests(), spec.materialize().requests());
    }

    fn phase_change_spec() -> StreamSpec {
        StreamSpec {
            phases: vec![
                PhaseSpec::steady(0, 8.0, Scenario::MultiCnn.mix(), SloModel::Fixed(10.0)),
                PhaseSpec {
                    start_ns: 2_000_000_000,
                    process: ArrivalProcess::OnOff {
                        on_rate: 60.0,
                        off_rate: 2.0,
                        on_s: 0.25,
                        off_s: 0.75,
                    },
                    mix: Scenario::MultiAttNn.mix(),
                    popularity: Popularity::Zipfian { exponent: 1.0 },
                    slo: SloModel::Range { lo: 5.0, hi: 50.0 },
                },
                PhaseSpec {
                    start_ns: 5_000_000_000,
                    process: ArrivalProcess::FlashCrowd {
                        base_rate: 4.0,
                        peak_rate: 80.0,
                        start_s: 1.0,
                        duration_s: 0.5,
                    },
                    mix: Scenario::MultiCnn.mix(),
                    popularity: Popularity::Uniform,
                    slo: SloModel::Fixed(20.0),
                },
            ],
            num_requests: 400,
            samples_per_variant: 4,
            seed: 9,
        }
    }

    #[test]
    fn phase_change_is_deterministic_monotone_and_respects_boundaries() {
        let spec = phase_change_spec();
        let a = spec.materialize();
        let b = spec.materialize();
        assert_eq!(a.requests(), b.requests());
        assert_eq!(a.requests().len(), 400);
        // Ids are minted densely in arrival order; arrivals are
        // monotone (Workload::from_parts asserts that too).
        for (i, r) in a.requests().iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        // Phase 2 requests (after 5 s) all use the uniform CNN mix with
        // the fixed ×20 SLO; phase 1 requests are AttNN.
        let cnn: Vec<_> = Scenario::MultiCnn.mix().iter().map(|&(s, _)| s).collect();
        for r in a.requests() {
            if r.arrival_ns >= 5_000_000_000 {
                assert!(cnn.contains(&r.spec), "phase 2 must draw the CNN mix");
            } else if r.arrival_ns >= 2_000_000_000 {
                assert!(!cnn.contains(&r.spec), "phase 1 must draw the AttNN mix");
            }
        }
    }

    #[test]
    fn streaming_and_materialized_agree() {
        let spec = phase_change_spec();
        let materialized = spec.materialize();
        let store = spec.build_store();
        let streamed: Vec<Request> = spec.source(&store).collect();
        assert_eq!(materialized.requests(), streamed.as_slice());
    }

    #[test]
    fn peek_is_idempotent_and_agrees_with_next() {
        let spec = phase_change_spec();
        let store = spec.build_store();
        let mut source = spec.source(&store);
        while let Some(peeked) = source.peek_arrival_ns() {
            assert_eq!(source.peek_arrival_ns(), Some(peeked));
            let r = source.next_request().expect("peeked request exists");
            assert_eq!(r.arrival_ns, peeked);
        }
        assert_eq!(source.next_request(), None);
    }

    #[test]
    fn on_off_bursts_are_bursty() {
        // Mean rate of a 1s@40 / 1s@0 cycle is ~20/s: the generated
        // span should sit between the pure-off and pure-on extremes,
        // and arrivals should cluster inside the on-windows.
        let spec = StreamSpec {
            phases: vec![PhaseSpec {
                start_ns: 0,
                process: ArrivalProcess::OnOff {
                    on_rate: 40.0,
                    off_rate: 0.0,
                    on_s: 1.0,
                    off_s: 1.0,
                },
                mix: Scenario::MultiCnn.mix(),
                popularity: Popularity::Weighted,
                slo: SloModel::Fixed(10.0),
            }],
            num_requests: 600,
            samples_per_variant: 2,
            seed: 5,
        };
        let w = spec.materialize();
        let in_on_window = w
            .requests()
            .iter()
            .filter(|r| (r.arrival_ns as f64 / 1e9) % 2.0 < 1.0)
            .count();
        assert_eq!(in_on_window, w.requests().len(), "off windows are silent");
        let span_s = w.requests().last().unwrap().arrival_ns as f64 / 1e9;
        assert!((25.0..40.0).contains(&span_s), "600 req at ~20/s: {span_s}");
    }

    #[test]
    fn diurnal_rate_oscillates() {
        let spec = StreamSpec {
            phases: vec![PhaseSpec {
                start_ns: 0,
                process: ArrivalProcess::Diurnal {
                    base_rate: 30.0,
                    amplitude: 0.9,
                    period_s: 10.0,
                },
                mix: Scenario::MultiCnn.mix(),
                popularity: Popularity::Weighted,
                slo: SloModel::Fixed(10.0),
            }],
            num_requests: 900,
            samples_per_variant: 2,
            seed: 6,
        };
        let w = spec.materialize();
        // First half-period (rising sine) must out-arrive the second.
        let crest = w
            .requests()
            .iter()
            .filter(|r| (r.arrival_ns as f64 / 1e9) % 10.0 < 5.0)
            .count();
        let trough = w.requests().len() - crest;
        assert!(
            crest > 2 * trough,
            "crest {crest} should dominate trough {trough}"
        );
    }

    #[test]
    fn zipfian_popularity_skews_to_the_head() {
        let mut spec = StreamSpec::steady_poisson(Scenario::MultiCnn, 10.0, 10.0)
            .num_requests(600)
            .samples_per_variant(2)
            .seed(7);
        spec.phases[0].popularity = Popularity::Zipfian { exponent: 2.0 };
        let w = spec.materialize();
        let head = spec.phases[0].mix[0].0;
        let head_count = w.requests().iter().filter(|r| r.spec == head).count();
        assert!(
            head_count * 2 > w.requests().len(),
            "head variant should take the majority under s=2: {head_count}"
        );
    }
}
