//! Workload construction: traces + Poisson arrivals + SLOs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dysta_sparsity::distributions::exponential;
use dysta_trace::{ModelTraces, SampleTrace, SparseModelSpec, TraceGenerator, TraceStore};

use crate::{Request, Scenario};

/// Default number of Phase-1 input samples per sparse-model variant.
const DEFAULT_SAMPLES_PER_VARIANT: u64 = 64;

/// Builder for [`Workload`]s.
///
/// # Examples
///
/// ```
/// use dysta_workload::{Scenario, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(Scenario::MultiAttNn)
///     .arrival_rate(30.0)
///     .slo_multiplier(10.0)
///     .num_requests(100)
///     .seed(7)
///     .build();
/// assert!(w.requests().windows(2).all(|p| p[0].arrival_ns <= p[1].arrival_ns));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    mix: Vec<(SparseModelSpec, f64)>,
    arrival_rate: f64,
    slo_multiplier: f64,
    /// Per-request multiplier range; overrides `slo_multiplier` when set.
    slo_multiplier_range: Option<(f64, f64)>,
    num_requests: usize,
    samples_per_variant: u64,
    seed: u64,
    generator: TraceGenerator,
}

impl WorkloadBuilder {
    /// Starts a builder from a scenario preset.
    pub fn new(scenario: Scenario) -> Self {
        WorkloadBuilder {
            mix: scenario.mix(),
            arrival_rate: scenario.default_arrival_rate(),
            slo_multiplier: 10.0,
            slo_multiplier_range: None,
            num_requests: 1000,
            samples_per_variant: DEFAULT_SAMPLES_PER_VARIANT,
            seed: 0,
            generator: TraceGenerator::default(),
        }
    }

    /// Starts a builder from an explicit weighted model mix.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or any weight is non-positive.
    pub fn from_mix(mix: Vec<(SparseModelSpec, f64)>) -> Self {
        assert!(!mix.is_empty(), "mix must not be empty");
        assert!(
            mix.iter().all(|&(_, w)| w > 0.0),
            "weights must be positive"
        );
        WorkloadBuilder {
            mix,
            arrival_rate: 1.0,
            slo_multiplier: 10.0,
            slo_multiplier_range: None,
            num_requests: 1000,
            samples_per_variant: DEFAULT_SAMPLES_PER_VARIANT,
            seed: 0,
            generator: TraceGenerator::default(),
        }
    }

    /// Poisson arrival rate in samples per second.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and finite.
    pub fn arrival_rate(mut self, per_sec: f64) -> Self {
        assert!(
            per_sec > 0.0 && per_sec.is_finite(),
            "rate must be positive"
        );
        self.arrival_rate = per_sec;
        self
    }

    /// Latency SLO multiplier `M_slo` (SLO = `T_isol × M_slo`).
    ///
    /// # Panics
    ///
    /// Panics unless the multiplier is at least 1.
    pub fn slo_multiplier(mut self, m: f64) -> Self {
        assert!(m >= 1.0 && m.is_finite(), "multiplier must be >= 1");
        self.slo_multiplier = m;
        self
    }

    /// Samples each request's SLO multiplier uniformly from `[lo, hi]`
    /// instead of using one fixed multiplier — models tenants with
    /// heterogeneous latency objectives (interactive vs batch), which is
    /// where deadline-aware scoring genuinely differentiates requests.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= lo <= hi` and both are finite.
    pub fn slo_multiplier_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(
            lo >= 1.0 && hi >= lo && hi.is_finite(),
            "need 1 <= lo <= hi"
        );
        self.slo_multiplier_range = Some((lo, hi));
        self
    }

    /// Total number of requests (the paper uses 1000).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn num_requests(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one request");
        self.num_requests = n;
        self
    }

    /// Number of distinct Phase-1 input samples traced per variant.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn samples_per_variant(mut self, n: u64) -> Self {
        assert!(n > 0, "need at least one sample");
        self.samples_per_variant = n;
        self
    }

    /// Random seed controlling arrivals, model sampling and traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the Phase-1 trace generator (custom accelerator configs).
    pub fn trace_generator(mut self, generator: TraceGenerator) -> Self {
        self.generator = generator;
        self
    }

    /// Generates traces and the request stream.
    pub fn build(&self) -> Workload {
        let mut store = TraceStore::new();
        for (spec, _) in &self.mix {
            // Trace seeds are independent of the arrival seed so that
            // changing the arrival pattern keeps the trace library fixed,
            // mirroring the paper's two-phase methodology.
            store.insert(self.generator.generate(
                spec,
                self.samples_per_variant,
                self.seed ^ 0xD15A,
            ));
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let total_weight: f64 = self.mix.iter().map(|&(_, w)| w).sum();
        let mut now_ns = 0u64;
        let mut requests = Vec::with_capacity(self.num_requests);
        for id in 0..self.num_requests as u64 {
            let gap_s = exponential(&mut rng, self.arrival_rate);
            now_ns += (gap_s * 1e9).round() as u64;
            let spec = self.pick_spec(&mut rng, total_weight);
            let sample_index = rng.gen_range(0..self.samples_per_variant);
            // The SLO follows PREMA's convention, `T_isol × M_slo`, with
            // `T_isol` taken from offline profiling (the variant's average
            // isolated latency): the per-sample execution time is unknown
            // at request time, so the deadline must not leak it.
            let isolated = store
                .get(&spec)
                .expect("trace generated above")
                .avg_latency_ns();
            let multiplier = match self.slo_multiplier_range {
                Some((lo, hi)) => rng.gen_range(lo..=hi),
                None => self.slo_multiplier,
            };
            requests.push(Request {
                id,
                spec,
                sample_index,
                arrival_ns: now_ns,
                slo_ns: (isolated * multiplier).round() as u64,
            });
        }
        Workload { requests, store }
    }

    fn pick_spec(&self, rng: &mut StdRng, total_weight: f64) -> SparseModelSpec {
        let mut target = rng.gen::<f64>() * total_weight;
        for &(spec, w) in &self.mix {
            if target < w {
                return spec;
            }
            target -= w;
        }
        self.mix[self.mix.len() - 1].0
    }
}

/// A generated multi-DNN workload: the request stream plus the Phase-1
/// trace library backing it.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    requests: Vec<Request>,
    store: TraceStore,
}

impl Workload {
    /// Assembles a workload from pre-built parts.
    ///
    /// # Panics
    ///
    /// Panics if requests are not sorted by arrival time or reference a
    /// variant missing from the store.
    pub fn from_parts(requests: Vec<Request>, store: TraceStore) -> Self {
        assert!(
            requests
                .windows(2)
                .all(|p| p[0].arrival_ns <= p[1].arrival_ns),
            "requests must be sorted by arrival"
        );
        for r in &requests {
            assert!(
                store.get(&r.spec).is_some(),
                "missing traces for {}",
                r.spec
            );
        }
        Workload { requests, store }
    }

    /// The request stream, sorted by arrival time.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// The Phase-1 trace library.
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Traces of the variant a request uses.
    ///
    /// # Panics
    ///
    /// Panics if the variant is missing (impossible for built workloads).
    pub fn traces_for(&self, request: &Request) -> &ModelTraces {
        self.store
            .get(&request.spec)
            .expect("workload invariant: traces exist for every request")
    }

    /// The specific input-sample trace a request carries.
    pub fn trace_for(&self, request: &Request) -> &SampleTrace {
        self.traces_for(request).sample(request.sample_index)
    }

    /// The request's true isolated execution time `T_isol`.
    pub fn isolated_ns(&self, request: &Request) -> u64 {
        self.trace_for(request).isolated_latency_ns()
    }

    /// Offered load: mean isolated service time × arrival rate, a quick
    /// utilization estimate used by tests and the stress examples.
    pub fn offered_load(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let span_s =
            (self.requests.last().unwrap().arrival_ns - self.requests[0].arrival_ns) as f64 / 1e9;
        let busy_s: f64 = self
            .requests
            .iter()
            .map(|r| self.isolated_ns(r) as f64 / 1e9)
            .sum();
        busy_s / span_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(scenario: Scenario) -> Workload {
        WorkloadBuilder::new(scenario)
            .num_requests(60)
            .samples_per_variant(8)
            .seed(3)
            .build()
    }

    #[test]
    fn arrivals_are_sorted_and_poisson_like() {
        let w = small(Scenario::MultiAttNn);
        let arr: Vec<u64> = w.requests().iter().map(|r| r.arrival_ns).collect();
        assert!(arr.windows(2).all(|p| p[0] <= p[1]));
        // Mean inter-arrival should be near 1/30 s.
        let gaps: Vec<f64> = arr.windows(2).map(|p| (p[1] - p[0]) as f64 / 1e9).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 1.0 / 30.0).abs() < 0.01, "mean gap {mean}");
    }

    #[test]
    fn slo_is_profiled_isolated_times_multiplier() {
        let w = small(Scenario::MultiCnn);
        for r in w.requests() {
            let profiled = w.traces_for(r).avg_latency_ns();
            assert_eq!(r.slo_ns, (profiled * 10.0).round() as u64);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small(Scenario::MultiCnn);
        let b = small(Scenario::MultiCnn);
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    fn different_seed_changes_arrivals() {
        let a = small(Scenario::MultiCnn);
        let b = WorkloadBuilder::new(Scenario::MultiCnn)
            .num_requests(60)
            .samples_per_variant(8)
            .seed(4)
            .build();
        assert_ne!(a.requests(), b.requests());
    }

    #[test]
    fn all_mix_variants_appear_in_large_workload() {
        let w = WorkloadBuilder::new(Scenario::MultiCnn)
            .num_requests(400)
            .samples_per_variant(4)
            .seed(5)
            .build();
        let used: std::collections::HashSet<String> =
            w.requests().iter().map(|r| r.spec.key()).collect();
        assert_eq!(used.len(), Scenario::MultiCnn.mix().len());
    }

    #[test]
    fn offered_load_is_moderate_at_default_rates() {
        // The paper's operating points put the accelerator under real but
        // feasible load; sanity-check both default mixes.
        let attnn = WorkloadBuilder::new(Scenario::MultiAttNn)
            .num_requests(200)
            .samples_per_variant(16)
            .seed(6)
            .build();
        let load = attnn.offered_load();
        assert!((0.3..1.05).contains(&load), "AttNN load {load}");

        let cnn = WorkloadBuilder::new(Scenario::MultiCnn)
            .num_requests(200)
            .samples_per_variant(16)
            .seed(6)
            .build();
        let load = cnn.offered_load();
        assert!((0.2..1.0).contains(&load), "CNN load {load}");
    }

    #[test]
    fn slo_range_produces_heterogeneous_deadlines() {
        let w = WorkloadBuilder::new(Scenario::MultiCnn)
            .slo_multiplier_range(5.0, 50.0)
            .num_requests(100)
            .samples_per_variant(4)
            .seed(8)
            .build();
        let mut multipliers: Vec<f64> = w
            .requests()
            .iter()
            .map(|r| r.slo_ns as f64 / w.traces_for(r).avg_latency_ns())
            .collect();
        multipliers.sort_by(f64::total_cmp);
        assert!(multipliers[0] >= 4.9);
        assert!(*multipliers.last().unwrap() <= 50.1);
        assert!(
            multipliers.last().unwrap() - multipliers[0] > 20.0,
            "range should actually spread"
        );
    }

    #[test]
    #[should_panic(expected = "need 1 <= lo <= hi")]
    fn slo_range_rejects_inverted_bounds() {
        let _ = WorkloadBuilder::new(Scenario::MultiCnn).slo_multiplier_range(50.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn from_parts_rejects_unsorted() {
        let w = small(Scenario::MultiCnn);
        let mut reqs = w.requests().to_vec();
        reqs.reverse();
        let _ = Workload::from_parts(reqs, w.store().clone());
    }
}
