//! Inference request type.

use serde::{Deserialize, Serialize};

use dysta_trace::SparseModelSpec;

/// One inference request of a multi-DNN workload — the paper's
/// `Reqst_n = ⟨Model_n, Pattn_n, input_n, SLO_n⟩` tuple (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique, monotonically increasing request id.
    pub id: u64,
    /// The sparse-model variant (model + pattern + rate + profile).
    pub spec: SparseModelSpec,
    /// Which Phase-1 input sample this request carries.
    pub sample_index: u64,
    /// Arrival time in nanoseconds since workload start.
    pub arrival_ns: u64,
    /// Relative latency SLO in nanoseconds (`T_isol × M_slo`).
    pub slo_ns: u64,
}

impl Request {
    /// Absolute deadline: arrival plus SLO.
    pub fn deadline_ns(&self) -> u64 {
        self.arrival_ns.saturating_add(self.slo_ns)
    }

    /// Remaining slack at `now_ns` assuming the request still needs
    /// `est_remaining_ns` of service: positive means time to spare,
    /// negative means the deadline is already unreachable under the
    /// estimate. Saturates at the `i64` range so a relaxed (near-`MAX`)
    /// SLO cannot wrap.
    pub fn slack_ns(&self, now_ns: u64, est_remaining_ns: u64) -> i64 {
        let slack = self.deadline_ns() as i128 - now_ns as i128 - est_remaining_ns as i128;
        slack.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// The same request demoted to a relaxed SLO class: its SLO
    /// multiplied by `multiplier` (saturating at `u64::MAX`, so an
    /// already deadline-free request stays deadline-free). Admission
    /// control uses this for degraded admissions — serve the work, but
    /// under a deadline it can actually hold.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is below 1 or not finite (a "relaxation"
    /// must never tighten the deadline).
    pub fn relax_slo(&self, multiplier: f64) -> Request {
        assert!(
            multiplier >= 1.0 && multiplier.is_finite(),
            "SLO relaxation multiplier must be finite and >= 1"
        );
        let relaxed = self.slo_ns as f64 * multiplier;
        Request {
            slo_ns: if relaxed >= u64::MAX as f64 {
                u64::MAX
            } else {
                relaxed.round() as u64
            },
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;

    #[test]
    fn deadline_is_arrival_plus_slo() {
        let r = Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0),
            sample_index: 0,
            arrival_ns: 100,
            slo_ns: 50,
        };
        assert_eq!(r.deadline_ns(), 150);
    }

    #[test]
    fn slack_shrinks_with_time_and_work() {
        let r = Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0),
            sample_index: 0,
            arrival_ns: 100,
            slo_ns: 1_000,
        };
        assert_eq!(r.slack_ns(100, 0), 1_000);
        assert_eq!(r.slack_ns(600, 300), 200);
        // Past the point of no return the slack goes negative.
        assert_eq!(r.slack_ns(1_000, 500), -400);
        // A saturated deadline cannot wrap the signed range.
        let relaxed = Request {
            slo_ns: u64::MAX,
            ..r
        };
        assert_eq!(relaxed.slack_ns(0, 0), i64::MAX);
    }

    #[test]
    fn relax_slo_scales_and_saturates() {
        let r = Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0),
            sample_index: 0,
            arrival_ns: 100,
            slo_ns: 1_000,
        };
        assert_eq!(r.relax_slo(1.0).slo_ns, 1_000);
        assert_eq!(r.relax_slo(4.0).slo_ns, 4_000);
        // Identity fields survive the re-classing.
        assert_eq!(r.relax_slo(4.0).id, r.id);
        assert_eq!(r.relax_slo(4.0).arrival_ns, r.arrival_ns);
        // A deadline-free request stays deadline-free.
        let free = Request {
            slo_ns: u64::MAX,
            ..r
        };
        assert_eq!(free.relax_slo(2.0).slo_ns, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "must be finite and >= 1")]
    fn relax_slo_rejects_tightening() {
        let r = Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0),
            sample_index: 0,
            arrival_ns: 0,
            slo_ns: 1_000,
        };
        let _ = r.relax_slo(0.5);
    }

    #[test]
    fn deadline_saturates() {
        let r = Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0),
            sample_index: 0,
            arrival_ns: u64::MAX,
            slo_ns: 50,
        };
        assert_eq!(r.deadline_ns(), u64::MAX);
    }
}
