//! Facade crate for the Sparse-DySta reproduction.
//!
//! Re-exports every subsystem under one roof so downstream users can
//! depend on a single crate:
//!
//! * [`models`] — DNN layer-graph zoo (SSD, ResNet-50, VGG-16, MobileNet,
//!   GoogLeNet, Inception-V3, BERT, GPT-2, BART).
//! * [`sparsity`] — weight-sparsity patterns/masks and dynamic
//!   activation/attention sparsity profiles.
//! * [`accel`] — Eyeriss-V2 and Sanger performance models.
//! * [`trace`] — Phase-1 runtime-information traces.
//! * [`workload`] — Poisson request streams, scenario mixes, SLOs.
//! * [`core`] — the Dysta bi-level scheduler, baselines, predictor.
//! * [`sim`] — discrete-event engine (step-able [`sim::NodeEngine`])
//!   and metrics.
//! * [`cluster`] — multi-accelerator pools behind pluggable dispatch
//!   policies.
//! * [`hw`] — hardware scheduler model and FPGA resource costs.
//! * [`obs`] — sim-time tracing ([`obs::RingTracer`]), Perfetto export,
//!   and live metrics for the engine stack.
//!
//! # Examples
//!
//! ```
//! use dysta::core::Policy;
//! use dysta::sim::{simulate, EngineConfig};
//! use dysta::workload::{Scenario, WorkloadBuilder};
//!
//! let workload = WorkloadBuilder::new(Scenario::MultiAttNn)
//!     .num_requests(20)
//!     .samples_per_variant(4)
//!     .seed(0)
//!     .build();
//! let report = simulate(&workload, Policy::Dysta.build().as_mut(), &EngineConfig::default());
//! println!("ANTT {:.2}, violations {:.1}%",
//!     report.antt(), report.violation_rate() * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dysta_accel as accel;
pub use dysta_cluster as cluster;
pub use dysta_core as core;
pub use dysta_hw as hw;
pub use dysta_models as models;
pub use dysta_obs as obs;
pub use dysta_sim as sim;
pub use dysta_sparsity as sparsity;
pub use dysta_trace as trace;
pub use dysta_workload as workload;
