//! Sparse-storage format modeling.
//!
//! Sparse accelerators obtain part of their speedup from compressed
//! weight/activation storage (the paper's Section 2.2 mentions "efficient
//! sparse-storage schemes"). Which format wins depends on the sparsity
//! rate and pattern: bitmaps cost a fixed bit per element, CSR-style
//! coordinate lists cost per non-zero, run-length coding exploits
//! clustered zeros (channel pruning). This module prices each format in
//! bytes so the memory roofline of the performance models can be studied
//! per format, and provides the crossover analysis used by the ablation
//! bench.

use serde::{Deserialize, Serialize};

use dysta_sparsity::SparsityPattern;

/// A compressed tensor representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageFormat {
    /// Uncompressed 8-bit values.
    Dense,
    /// One validity bit per element plus packed non-zero payloads
    /// (Eyeriss-style compressed sparse storage).
    Bitmap,
    /// Compressed sparse row: per-non-zero payload + column index, plus
    /// row pointers (Sanger-style pack-and-split input).
    Csr {
        /// Bits per column index (log2 of the row length, rounded up).
        index_bits: u32,
    },
    /// Run-length coding of zero runs; effective for clustered sparsity.
    RunLength {
        /// Bits per run-length counter.
        run_bits: u32,
    },
}

impl StorageFormat {
    /// Compressed size in bytes of a tensor with `elements` 8-bit values
    /// at the given `sparsity`, whose zeros are clustered into runs of
    /// `mean_zero_run` on average (1.0 = fully scattered).
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1]` or `mean_zero_run < 1`.
    pub fn bytes(&self, elements: u64, sparsity: f64, mean_zero_run: f64) -> f64 {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity out of range");
        assert!(mean_zero_run >= 1.0, "runs contain at least one zero");
        let n = elements as f64;
        let nnz = n * (1.0 - sparsity);
        match self {
            StorageFormat::Dense => n,
            StorageFormat::Bitmap => n / 8.0 + nnz,
            StorageFormat::Csr { index_bits } => {
                // Row-pointer overhead amortises to ~0 for the large flat
                // tensors modelled here.
                nnz * (1.0 + *index_bits as f64 / 8.0)
            }
            StorageFormat::RunLength { run_bits } => {
                let runs = (n * sparsity / mean_zero_run).max(0.0);
                nnz + runs * (*run_bits as f64 / 8.0)
            }
        }
    }

    /// Compression ratio versus dense (> 1 means smaller).
    pub fn compression_ratio(&self, elements: u64, sparsity: f64, mean_zero_run: f64) -> f64 {
        elements as f64 / self.bytes(elements, sparsity, mean_zero_run)
    }

    /// The format the paper's target accelerators pair with each weight
    /// pattern: bitmap for scattered point-wise zeros, dense(-ish) N:M
    /// metadata modelled as bitmap, run-length for channel pruning where
    /// zeros arrive in whole-filter runs.
    pub fn preferred_for(pattern: SparsityPattern) -> StorageFormat {
        match pattern {
            SparsityPattern::Dense => StorageFormat::Dense,
            SparsityPattern::RandomPointwise | SparsityPattern::BlockNm { .. } => {
                StorageFormat::Bitmap
            }
            SparsityPattern::ChannelWise => StorageFormat::RunLength { run_bits: 16 },
        }
    }

    /// Mean zero-run length a pattern produces at a given rate over
    /// filters of `filter_size` weights.
    pub fn typical_zero_run(pattern: SparsityPattern, rate: f64, filter_size: u64) -> f64 {
        match pattern {
            SparsityPattern::Dense => 1.0,
            // Geometric runs: expected run of i.i.d. zeros is 1/(1-rate).
            SparsityPattern::RandomPointwise => (1.0 / (1.0 - rate).max(1e-3)).min(64.0),
            SparsityPattern::BlockNm { n, m } => ((m - n) as f64).max(1.0),
            // Whole filters are zeroed at once.
            SparsityPattern::ChannelWise => filter_size.max(1) as f64,
        }
    }

    /// Smallest sparsity at which this format beats dense storage.
    pub fn breakeven_sparsity(&self, mean_zero_run: f64) -> f64 {
        // Solve bytes(elements, s) = elements for s on [0, 1].
        match self {
            StorageFormat::Dense => 1.0,
            StorageFormat::Bitmap => 1.0 / 8.0,
            StorageFormat::Csr { index_bits } => {
                let per_nnz = 1.0 + *index_bits as f64 / 8.0;
                1.0 - 1.0 / per_nnz
            }
            StorageFormat::RunLength { run_bits } => {
                let per_run = *run_bits as f64 / 8.0;
                // nnz + runs*per_run = n  =>  s(per_run/run - 1) = 0.
                if per_run / mean_zero_run >= 1.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_is_one_byte_per_element() {
        assert_eq!(StorageFormat::Dense.bytes(1000, 0.9, 1.0), 1000.0);
    }

    #[test]
    fn bitmap_beats_dense_above_one_eighth_sparsity() {
        let f = StorageFormat::Bitmap;
        assert!(f.bytes(1000, 0.2, 1.0) < 1000.0);
        assert!(f.bytes(1000, 0.05, 1.0) > 1000.0);
        assert!((f.breakeven_sparsity(1.0) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn csr_wins_at_extreme_sparsity() {
        let csr = StorageFormat::Csr { index_bits: 16 };
        let bitmap = StorageFormat::Bitmap;
        // At 99% sparsity CSR (3 B/nnz on 10 nnz) beats the bitmap's
        // fixed 125 B of mask bits.
        assert!(csr.bytes(1000, 0.99, 1.0) < bitmap.bytes(1000, 0.99, 1.0));
        // At 50% the bitmap wins.
        assert!(bitmap.bytes(1000, 0.5, 1.0) < csr.bytes(1000, 0.5, 1.0));
    }

    #[test]
    fn run_length_exploits_clustered_zeros() {
        let rle = StorageFormat::RunLength { run_bits: 16 };
        let scattered = rle.bytes(10_000, 0.8, 1.5);
        let clustered = rle.bytes(10_000, 0.8, 576.0); // whole filters
        assert!(clustered < scattered);
        // Clustered RLE approaches the information floor (nnz bytes).
        assert!(clustered < 10_000.0 * 0.2 * 1.02);
    }

    #[test]
    fn preferred_formats_follow_pattern_structure() {
        assert_eq!(
            StorageFormat::preferred_for(SparsityPattern::ChannelWise),
            StorageFormat::RunLength { run_bits: 16 }
        );
        assert_eq!(
            StorageFormat::preferred_for(SparsityPattern::RandomPointwise),
            StorageFormat::Bitmap
        );
    }

    #[test]
    fn typical_runs_grow_with_structure() {
        let random = StorageFormat::typical_zero_run(SparsityPattern::RandomPointwise, 0.8, 576);
        let nm = StorageFormat::typical_zero_run(SparsityPattern::BlockNm { n: 2, m: 4 }, 0.5, 576);
        let channel = StorageFormat::typical_zero_run(SparsityPattern::ChannelWise, 0.5, 576);
        assert!(random < channel);
        assert!(nm < channel);
        assert_eq!(channel, 576.0);
    }

    #[test]
    fn compression_ratio_inverts_bytes() {
        let f = StorageFormat::Bitmap;
        let r = f.compression_ratio(1000, 0.9, 1.0);
        assert!((r - 1000.0 / f.bytes(1000, 0.9, 1.0)).abs() < 1e-12);
        assert!(r > 4.0);
    }

    #[test]
    #[should_panic(expected = "sparsity out of range")]
    fn rejects_bad_sparsity() {
        let _ = StorageFormat::Dense.bytes(10, 1.5, 1.0);
    }
}
