//! Effective-work accounting: how many operations and bytes survive
//! sparsity for a given layer.

use dysta_models::{Layer, LayerKind};
use dysta_sparsity::SparsityPattern;

/// Per-layer sparsity context consumed by the accelerator models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseContext {
    /// Weight-sparsity pattern of the model.
    pub pattern: SparsityPattern,
    /// Weight-sparsity rate of this layer (0 for dense or AttNN models).
    pub weight_rate: f64,
    /// Sparsity of the layer's *input* activations (the previous layer's
    /// monitored output sparsity; 0 for the first layer).
    pub input_activation_sparsity: f64,
    /// This layer's own dynamic sparsity: output-activation sparsity for
    /// CNN layers, attention-matrix sparsity for attention matmuls.
    pub layer_sparsity: f64,
    /// Relative sequence length of the sample (1.0 for vision).
    pub seq_scale: f64,
}

impl SparseContext {
    /// A fully dense context (no weight pruning, no dynamic sparsity).
    pub fn dense() -> Self {
        SparseContext {
            pattern: SparsityPattern::Dense,
            weight_rate: 0.0,
            input_activation_sparsity: 0.0,
            layer_sparsity: 0.0,
            seq_scale: 1.0,
        }
    }
}

impl Default for SparseContext {
    fn default() -> Self {
        SparseContext::dense()
    }
}

/// The surviving work of one layer after zero-skipping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveWork {
    /// Dense MAC count (after sequence-length scaling).
    pub dense_macs: f64,
    /// MACs that actually execute after weight + activation skipping.
    pub effective_macs: f64,
    /// Compressed off-chip traffic in bytes (weights + input + output).
    pub bytes_moved: f64,
}

impl EffectiveWork {
    /// Computes the effective work of `layer` under `ctx`.
    ///
    /// The interaction between weight pattern and activation sparsity
    /// follows the paper's Figure 4 analysis: point-wise random zeros are
    /// uncorrelated with activation zeros (multiplicative overlap), N:M
    /// blocks behave like random in expectation, while channel pruning
    /// removes the channels whose activations were *already mostly zero*
    /// (pruning salience anti-correlates with activation sparsity), so the
    /// surviving channels are denser and proportionally more of the
    /// remaining MACs are valid. This reproduces the up-to-40% valid-MAC
    /// gap between patterns at identical sparsity rates.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if any sparsity value is outside `[0, 1]`.
    pub fn compute(layer: &Layer, ctx: &SparseContext) -> Self {
        debug_assert!((0.0..=1.0).contains(&ctx.weight_rate));
        debug_assert!((0.0..=1.0).contains(&ctx.input_activation_sparsity));
        debug_assert!((0.0..=1.0).contains(&ctx.layer_sparsity));

        let act_density = 1.0 - ctx.input_activation_sparsity;
        let weight_density = 1.0 - ctx.weight_rate;
        // Channel pruning removes mostly-dead channels; the surviving
        // channels carry activations that are CHANNEL_REVIVAL x denser
        // than the layer-wide average.
        const CHANNEL_REVIVAL: f64 = 0.55;
        let overlap = |density: f64| match ctx.pattern {
            SparsityPattern::Dense => act_density,
            SparsityPattern::RandomPointwise | SparsityPattern::BlockNm { .. } => {
                density * act_density
            }
            SparsityPattern::ChannelWise => {
                let surviving_act_sparsity =
                    (ctx.input_activation_sparsity * CHANNEL_REVIVAL).min(1.0);
                density * (1.0 - surviving_act_sparsity)
            }
        };

        match layer.kind() {
            LayerKind::Conv2d(_) | LayerKind::Linear(_) => {
                let seq = seq_scaling(layer, ctx.seq_scale);
                let dense = layer.macs() as f64 * seq;
                let effective = dense * overlap(weight_density);
                let weight_bytes = layer.params() as f64 * weight_density * COMPRESSION_OVERHEAD;
                let in_bytes = input_elements(layer) as f64 * seq * act_density;
                let out_bytes = layer.output_elements() as f64 * seq;
                EffectiveWork {
                    dense_macs: dense,
                    effective_macs: effective,
                    bytes_moved: weight_bytes + in_bytes + out_bytes,
                }
            }
            LayerKind::AttentionScore(a) | LayerKind::AttentionContext(a) => {
                // Both matmuls scale with the surviving attention entries.
                let seq_sq = ctx.seq_scale * ctx.seq_scale;
                let dense = layer.macs() as f64 * seq_sq;
                let density = 1.0 - ctx.layer_sparsity;
                let effective = dense * density;
                let attn_bytes = a.attention_elements() as f64 * seq_sq * density;
                EffectiveWork {
                    dense_macs: dense,
                    effective_macs: effective,
                    bytes_moved: attn_bytes * COMPRESSION_OVERHEAD,
                }
            }
            LayerKind::Pool(p) => {
                let elems = p.output_elements() as f64;
                EffectiveWork {
                    dense_macs: 0.0,
                    effective_macs: 0.0,
                    // Read input window + write output, 8-bit.
                    bytes_moved: elems * (p.kernel * p.kernel + 1) as f64,
                }
            }
        }
    }
}

/// Sparse-format index overhead on top of 8-bit payloads.
const COMPRESSION_OVERHEAD: f64 = 1.25;

/// Sequence-length scaling factor for linear layers (token-parallel work).
fn seq_scaling(layer: &Layer, seq_scale: f64) -> f64 {
    match layer.kind() {
        LayerKind::Linear(l) if l.tokens > 1 => seq_scale,
        _ => 1.0,
    }
}

/// Input activation element count feeding this layer.
fn input_elements(layer: &Layer) -> u64 {
    match layer.kind() {
        LayerKind::Conv2d(c) => c.in_size as u64 * c.in_size as u64 * c.in_channels as u64,
        LayerKind::Linear(l) => l.in_features as u64 * l.tokens as u64,
        LayerKind::AttentionScore(a) | LayerKind::AttentionContext(a) => {
            2 * a.heads as u64 * a.q_len as u64 * a.head_dim as u64
        }
        LayerKind::Pool(p) => p.in_size as u64 * p.in_size as u64 * p.channels as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::{Attention, Conv2d, Linear};

    fn conv_layer() -> Layer {
        Layer::new("c", LayerKind::Conv2d(Conv2d::square(64, 64, 3, 1, 1, 28))).with_relu()
    }

    #[test]
    fn dense_context_keeps_all_macs() {
        let l = conv_layer();
        let w = EffectiveWork::compute(&l, &SparseContext::dense());
        assert_eq!(w.effective_macs, l.macs() as f64);
    }

    #[test]
    fn random_pattern_multiplies_densities() {
        let l = conv_layer();
        let ctx = SparseContext {
            pattern: SparsityPattern::RandomPointwise,
            weight_rate: 0.8,
            input_activation_sparsity: 0.5,
            layer_sparsity: 0.0,
            seq_scale: 1.0,
        };
        let w = EffectiveWork::compute(&l, &ctx);
        assert!((w.effective_macs - l.macs() as f64 * 0.2 * 0.5).abs() < 1e-6);
    }

    #[test]
    fn channel_pattern_keeps_more_valid_macs_than_random() {
        // The Figure 4 effect: same rate, same input, more valid MACs for
        // channel-wise pruning.
        let l = conv_layer();
        let mk = |pattern| SparseContext {
            pattern,
            weight_rate: 0.8,
            input_activation_sparsity: 0.4,
            layer_sparsity: 0.0,
            seq_scale: 1.0,
        };
        let random = EffectiveWork::compute(&l, &mk(SparsityPattern::RandomPointwise));
        let channel = EffectiveWork::compute(&l, &mk(SparsityPattern::ChannelWise));
        let ratio = channel.effective_macs / random.effective_macs;
        assert!(ratio > 1.1 && ratio < 1.5, "ratio {ratio}");
    }

    #[test]
    fn attention_work_scales_with_density_and_seq_squared() {
        let a = Layer::new(
            "s",
            LayerKind::AttentionScore(Attention {
                heads: 12,
                head_dim: 64,
                q_len: 256,
                kv_len: 256,
            }),
        );
        let ctx = SparseContext {
            pattern: SparsityPattern::Dense,
            weight_rate: 0.0,
            input_activation_sparsity: 0.0,
            layer_sparsity: 0.75,
            seq_scale: 0.5,
        };
        let w = EffectiveWork::compute(&a, &ctx);
        assert!((w.effective_macs - a.macs() as f64 * 0.25 * 0.25).abs() < 1e-6);
    }

    #[test]
    fn linear_work_scales_linearly_with_seq() {
        let l = Layer::new(
            "ffn",
            LayerKind::Linear(Linear {
                in_features: 768,
                out_features: 3072,
                tokens: 256,
            }),
        );
        let mut ctx = SparseContext::dense();
        ctx.seq_scale = 0.5;
        let w = EffectiveWork::compute(&l, &ctx);
        assert!((w.effective_macs - l.macs() as f64 * 0.5).abs() < 1e-6);
    }

    #[test]
    fn classifier_head_ignores_seq_scale() {
        let l = Layer::new(
            "fc",
            LayerKind::Linear(Linear {
                in_features: 2048,
                out_features: 1000,
                tokens: 1,
            }),
        );
        let mut ctx = SparseContext::dense();
        ctx.seq_scale = 0.5;
        let w = EffectiveWork::compute(&l, &ctx);
        assert_eq!(w.effective_macs, l.macs() as f64);
    }

    #[test]
    fn sparser_weights_move_fewer_bytes() {
        let l = conv_layer();
        let mut dense_ctx = SparseContext::dense();
        dense_ctx.pattern = SparsityPattern::RandomPointwise;
        let mut sparse_ctx = dense_ctx;
        sparse_ctx.weight_rate = 0.9;
        let wd = EffectiveWork::compute(&l, &dense_ctx);
        let ws = EffectiveWork::compute(&l, &sparse_ctx);
        assert!(ws.bytes_moved < wd.bytes_moved);
    }

    #[test]
    fn pool_layers_move_bytes_but_no_macs() {
        let p = Layer::new(
            "pool",
            LayerKind::Pool(dysta_models::Pool {
                kind: dysta_models::PoolKind::Max,
                channels: 64,
                kernel: 2,
                stride: 2,
                in_size: 28,
            }),
        );
        let w = EffectiveWork::compute(&p, &SparseContext::dense());
        assert_eq!(w.effective_macs, 0.0);
        assert!(w.bytes_moved > 0.0);
    }
}
