//! Eyeriss-V2 performance model (sparse CNN accelerator).

use serde::{Deserialize, Serialize};

use dysta_models::Layer;
use dysta_sparsity::SparsityPattern;

use crate::{Accelerator, EffectiveWork, SparseContext};

/// Configuration of the Eyeriss-V2 model.
///
/// Defaults follow the FPGA deployment the paper evaluates against (a
/// third-party Eyeriss-V2 on a Zynq ZU7EV at 200 MHz, smaller than the
/// 192-PE ASIC design) with mobile-class DRAM, calibrated so the
/// multi-CNN mix saturates near the paper's 3–6 samples/s operating
/// range. Utilization factors capture how well each weight pattern maps
/// onto the row-stationary dataflow with zero-skipping: the paper's
/// Section 2.3.2 observes that pattern/hardware affinity — not just the
/// sparsity ratio — determines delivered performance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EyerissV2Config {
    /// Number of processing elements.
    pub pes: u32,
    /// Clock frequency in hertz.
    pub clock_hz: f64,
    /// Off-chip bandwidth in bytes per second.
    pub dram_bytes_per_sec: f64,
    /// PE utilization on dense layers.
    pub util_dense: f64,
    /// PE utilization under random point-wise sparsity (irregular).
    pub util_random: f64,
    /// PE utilization under N:M block sparsity.
    pub util_block_nm: f64,
    /// PE utilization under channel-wise sparsity (regular).
    pub util_channel: f64,
    /// Utilization penalty multiplier for depthwise convolutions (low
    /// reuse on a row-stationary array).
    pub depthwise_penalty: f64,
    /// Fixed per-layer dispatch/configuration overhead in nanoseconds.
    pub layer_overhead_ns: f64,
}

impl Default for EyerissV2Config {
    fn default() -> Self {
        EyerissV2Config {
            pes: 136,
            clock_hz: 200e6,
            dram_bytes_per_sec: 1.2e9,
            util_dense: 0.75,
            util_random: 0.30,
            util_block_nm: 0.55,
            util_channel: 0.68,
            depthwise_penalty: 0.35,
            layer_overhead_ns: 50_000.0,
        }
    }
}

/// The Eyeriss-V2 analytic performance model.
///
/// Latency per layer = `max(compute roofline, memory roofline) + overhead`
/// where the compute roofline counts only *effective* MACs (weight and
/// activation zeros are skipped, per the accelerator's sparse dataflow).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EyerissV2 {
    config: EyerissV2Config,
}

impl EyerissV2 {
    /// Creates a model with the given configuration.
    pub fn new(config: EyerissV2Config) -> Self {
        EyerissV2 { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EyerissV2Config {
        &self.config
    }

    fn utilization(&self, layer: &Layer, ctx: &SparseContext) -> f64 {
        let base = match ctx.pattern {
            SparsityPattern::Dense => self.config.util_dense,
            SparsityPattern::RandomPointwise => self.config.util_random,
            SparsityPattern::BlockNm { .. } => self.config.util_block_nm,
            SparsityPattern::ChannelWise => self.config.util_channel,
        };
        let depthwise = match layer.kind() {
            dysta_models::LayerKind::Conv2d(c) if c.is_depthwise() => self.config.depthwise_penalty,
            _ => 1.0,
        };
        base * depthwise
    }
}

impl Accelerator for EyerissV2 {
    fn name(&self) -> &str {
        "eyeriss-v2"
    }

    fn clock_hz(&self) -> f64 {
        self.config.clock_hz
    }

    fn layer_latency_ns(&self, layer: &Layer, ctx: &SparseContext) -> f64 {
        let work = EffectiveWork::compute(layer, ctx);
        let throughput =
            self.config.pes as f64 * self.config.clock_hz * self.utilization(layer, ctx);
        let compute_ns = work.effective_macs / throughput * 1e9;
        let memory_ns = work.bytes_moved / self.config.dram_bytes_per_sec * 1e9;
        compute_ns.max(memory_ns) + self.config.layer_overhead_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::zoo;

    fn model_latency_ms(model: &dysta_models::ModelGraph, ctx: &SparseContext) -> f64 {
        let accel = EyerissV2::default();
        model
            .layers()
            .iter()
            .map(|l| accel.layer_latency_ns(l, ctx))
            .sum::<f64>()
            / 1e6
    }

    fn typical_ctx() -> SparseContext {
        SparseContext {
            pattern: SparsityPattern::RandomPointwise,
            weight_rate: 0.8,
            input_activation_sparsity: 0.4,
            layer_sparsity: 0.4,
            seq_scale: 1.0,
        }
    }

    #[test]
    fn isolated_latency_ordering_matches_model_size() {
        let ctx = typical_ctx();
        let mobilenet = model_latency_ms(&zoo::mobilenet(), &ctx);
        let resnet = model_latency_ms(&zoo::resnet50(), &ctx);
        let vgg = model_latency_ms(&zoo::vgg16(), &ctx);
        let ssd = model_latency_ms(&zoo::ssd300(), &ctx);
        assert!(mobilenet < resnet && resnet < vgg && vgg < ssd);
        // Plausible magnitudes for a 200 MHz mobile accelerator: MobileNet
        // in single-digit ms, SSD in hundreds of ms.
        assert!((1.0..20.0).contains(&mobilenet), "{mobilenet} ms");
        assert!((100.0..600.0).contains(&ssd), "{ssd} ms");
    }

    #[test]
    fn sparsity_reduces_latency() {
        let dense = model_latency_ms(&zoo::resnet50(), &SparseContext::dense());
        let sparse = model_latency_ms(&zoo::resnet50(), &typical_ctx());
        assert!(sparse < dense, "sparse {sparse} dense {dense}");
    }

    #[test]
    fn random_pattern_slower_than_channel_at_same_rate() {
        // Same sparsity ratio, different delivered performance (Fig. 4):
        // channel-wise maps better on the PE array AND keeps denser
        // surviving activations, but random skips more MACs; the
        // utilization gap dominates on Eyeriss-V2.
        let mut random = typical_ctx();
        random.pattern = SparsityPattern::RandomPointwise;
        let mut channel = random;
        channel.pattern = SparsityPattern::ChannelWise;
        let r = model_latency_ms(&zoo::resnet50(), &random);
        let c = model_latency_ms(&zoo::resnet50(), &channel);
        assert!(
            (r / c - 1.0).abs() > 0.05,
            "patterns should differ: {r} vs {c}"
        );
    }

    #[test]
    fn higher_activation_sparsity_is_faster() {
        let mut dark = typical_ctx();
        dark.input_activation_sparsity = 0.7;
        let bright = typical_ctx();
        let d = model_latency_ms(&zoo::vgg16(), &dark);
        let b = model_latency_ms(&zoo::vgg16(), &bright);
        assert!(d < b);
    }

    #[test]
    fn overhead_floors_tiny_layers() {
        let accel = EyerissV2::default();
        let tiny = dysta_models::Layer::new(
            "t",
            dysta_models::LayerKind::Linear(dysta_models::Linear {
                in_features: 8,
                out_features: 8,
                tokens: 1,
            }),
        );
        let ns = accel.layer_latency_ns(&tiny, &SparseContext::dense());
        assert!(ns >= accel.config().layer_overhead_ns);
    }
}
