//! Analytic performance models of the paper's two target accelerators.
//!
//! The paper evaluates scheduling on two sparse DNN accelerators via
//! simulation: **Eyeriss-V2** (Chen et al., JETCAS 2019) for CNNs, which
//! skips ineffectual MACs from both weight and activation zeros, and
//! **Sanger** (Lu et al., MICRO 2021) for attention NNs, which prunes the
//! attention matrix dynamically and executes the surviving scores on a
//! load-balanced reconfigurable array.
//!
//! The schedulers only ever consume the *mapping from (layer shapes,
//! sparsity) to latency*, so this crate models each accelerator
//! analytically: a compute roofline (effective MACs over sparse-adjusted
//! PE throughput), a memory roofline (compressed tensor traffic over DRAM
//! bandwidth), and a fixed per-layer dispatch overhead. See `DESIGN.md`
//! §1 for the substitution argument.
//!
//! # Examples
//!
//! ```
//! use dysta_accel::{Accelerator, EyerissV2, SparseContext};
//! use dysta_models::zoo;
//! use dysta_sparsity::SparsityPattern;
//!
//! let accel = EyerissV2::default();
//! let model = zoo::mobilenet();
//! let ctx = SparseContext {
//!     pattern: SparsityPattern::RandomPointwise,
//!     weight_rate: 0.8,
//!     input_activation_sparsity: 0.4,
//!     layer_sparsity: 0.4,
//!     seq_scale: 1.0,
//! };
//! let ns: f64 = model.layers().iter().map(|l| accel.layer_latency_ns(l, &ctx)).sum();
//! assert!(ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eyeriss;
mod sanger;
pub mod storage;
mod work;

pub use eyeriss::{EyerissV2, EyerissV2Config};
pub use sanger::{Sanger, SangerConfig};
pub use work::{EffectiveWork, SparseContext};

use dysta_models::{Layer, ModelFamily};

/// A hardware performance model mapping one layer plus its sparsity
/// context to latency.
pub trait Accelerator {
    /// Human-readable accelerator name.
    fn name(&self) -> &str;

    /// Core clock frequency in hertz.
    fn clock_hz(&self) -> f64;

    /// Latency of executing `layer` under `ctx`, in nanoseconds.
    fn layer_latency_ns(&self, layer: &Layer, ctx: &SparseContext) -> f64;
}

/// Either of the paper's two accelerators, as a concrete dispatchable type.
///
/// # Examples
///
/// ```
/// use dysta_accel::{Accelerator, AnyAccelerator};
/// use dysta_models::ModelFamily;
///
/// let a = AnyAccelerator::default_for(ModelFamily::AttNn);
/// assert_eq!(a.name(), "sanger");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AnyAccelerator {
    /// Eyeriss-V2 CNN accelerator model.
    Eyeriss(EyerissV2),
    /// Sanger sparse-attention accelerator model.
    Sanger(Sanger),
}

impl AnyAccelerator {
    /// The accelerator the paper pairs with each model family
    /// (Eyeriss-V2 for CNNs, Sanger for AttNNs).
    pub fn default_for(family: ModelFamily) -> Self {
        match family {
            ModelFamily::Cnn => AnyAccelerator::Eyeriss(EyerissV2::default()),
            ModelFamily::AttNn => AnyAccelerator::Sanger(Sanger::default()),
        }
    }
}

impl Accelerator for AnyAccelerator {
    fn name(&self) -> &str {
        match self {
            AnyAccelerator::Eyeriss(a) => a.name(),
            AnyAccelerator::Sanger(a) => a.name(),
        }
    }

    fn clock_hz(&self) -> f64 {
        match self {
            AnyAccelerator::Eyeriss(a) => a.clock_hz(),
            AnyAccelerator::Sanger(a) => a.clock_hz(),
        }
    }

    fn layer_latency_ns(&self, layer: &Layer, ctx: &SparseContext) -> f64 {
        match self {
            AnyAccelerator::Eyeriss(a) => a.layer_latency_ns(layer, ctx),
            AnyAccelerator::Sanger(a) => a.layer_latency_ns(layer, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pairing() {
        assert!(matches!(
            AnyAccelerator::default_for(ModelFamily::Cnn),
            AnyAccelerator::Eyeriss(_)
        ));
        assert!(matches!(
            AnyAccelerator::default_for(ModelFamily::AttNn),
            AnyAccelerator::Sanger(_)
        ));
    }
}
