//! Sanger performance model (sparse attention accelerator).

use serde::{Deserialize, Serialize};

use dysta_models::{Layer, LayerKind};

use crate::{Accelerator, EffectiveWork, SparseContext};

/// Configuration of the Sanger model.
///
/// Sanger (Lu et al., MICRO 2021) predicts the attention mask with a
/// low-precision pass, then packs the surviving attention scores onto a
/// reconfigurable systolic array using load-balanced split-and-pack, so
/// attention latency scales close to linearly with attention *density*.
/// Projection/FFN matmuls execute densely on the same array. Defaults use
/// a datacenter-class deployment (2048 MACs at 1 GHz, HBM-class
/// bandwidth) sized so the multi-AttNN workload saturates around the
/// paper's 40 samples/s operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SangerConfig {
    /// Number of MAC units in the reconfigurable array.
    pub macs: u32,
    /// Clock frequency in hertz.
    pub clock_hz: f64,
    /// Off-chip bandwidth in bytes per second.
    pub dram_bytes_per_sec: f64,
    /// Array utilization on dense matmuls (projections, FFNs).
    pub util_dense: f64,
    /// Array utilization on load-balanced sparse attention; Sanger's
    /// split-and-pack keeps this high even for irregular masks.
    pub util_sparse_attention: f64,
    /// Overhead of the mask-prediction pre-pass, as a fraction of the
    /// dense attention-score time.
    pub mask_predict_overhead: f64,
    /// Fixed per-layer dispatch overhead in nanoseconds.
    pub layer_overhead_ns: f64,
}

impl Default for SangerConfig {
    fn default() -> Self {
        SangerConfig {
            macs: 2048,
            clock_hz: 1.0e9,
            dram_bytes_per_sec: 25.0e9,
            util_dense: 0.49,
            util_sparse_attention: 0.82,
            mask_predict_overhead: 0.08,
            layer_overhead_ns: 10_000.0,
        }
    }
}

/// The Sanger analytic performance model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sanger {
    config: SangerConfig,
}

impl Sanger {
    /// Creates a model with the given configuration.
    pub fn new(config: SangerConfig) -> Self {
        Sanger { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SangerConfig {
        &self.config
    }
}

impl Accelerator for Sanger {
    fn name(&self) -> &str {
        "sanger"
    }

    fn clock_hz(&self) -> f64 {
        self.config.clock_hz
    }

    fn layer_latency_ns(&self, layer: &Layer, ctx: &SparseContext) -> f64 {
        let work = EffectiveWork::compute(layer, ctx);
        let peak = self.config.macs as f64 * self.config.clock_hz;
        let compute_ns = match layer.kind() {
            LayerKind::AttentionScore(_) | LayerKind::AttentionContext(_) => {
                let balanced = peak * self.config.util_sparse_attention;
                let sparse_ns = work.effective_macs / balanced * 1e9;
                // The low-precision mask predictor runs over the dense
                // score matrix regardless of the final density.
                let predict_ns = if matches!(layer.kind(), LayerKind::AttentionScore(_)) {
                    work.dense_macs * self.config.mask_predict_overhead
                        / (peak * self.config.util_dense)
                        * 1e9
                } else {
                    0.0
                };
                sparse_ns + predict_ns
            }
            _ => work.effective_macs / (peak * self.config.util_dense) * 1e9,
        };
        let memory_ns = work.bytes_moved / self.config.dram_bytes_per_sec * 1e9;
        compute_ns.max(memory_ns) + self.config.layer_overhead_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::zoo;
    use dysta_sparsity::SparsityPattern;

    fn nlp_ctx(attention_sparsity: f64, seq_scale: f64) -> SparseContext {
        SparseContext {
            pattern: SparsityPattern::Dense,
            weight_rate: 0.0,
            input_activation_sparsity: 0.05,
            layer_sparsity: attention_sparsity,
            seq_scale,
        }
    }

    fn model_latency_ms(model: &dysta_models::ModelGraph, ctx: &SparseContext) -> f64 {
        let accel = Sanger::default();
        model
            .layers()
            .iter()
            .map(|l| {
                let mut c = *ctx;
                if !l.is_dynamic_attention() {
                    c.layer_sparsity = 0.0;
                }
                accel.layer_latency_ns(l, &c)
            })
            .sum::<f64>()
            / 1e6
    }

    #[test]
    fn bert_latency_in_tens_of_ms() {
        let ms = model_latency_ms(&zoo::bert(384), &nlp_ctx(0.75, 1.0));
        assert!((10.0..60.0).contains(&ms), "{ms} ms");
    }

    #[test]
    fn all_attnn_models_fit_30_per_sec_regime() {
        // The paper drives Sanger at 30 samples/s: the mean service time
        // of the deployed mix (GLUE GPT-2 inputs are short, seq 128) must
        // sit below but near the 33.3 ms budget so the operating point is
        // loaded but feasible.
        let models = [zoo::bert(384), zoo::gpt2(128), zoo::bart(256, 256)];
        let mean: f64 = models
            .iter()
            .map(|m| model_latency_ms(m, &nlp_ctx(0.75, 1.0)))
            .sum::<f64>()
            / models.len() as f64;
        assert!((18.0..33.3).contains(&mean), "mean {mean} ms");
    }

    #[test]
    fn shorter_sequences_are_faster() {
        let long = model_latency_ms(&zoo::bert(384), &nlp_ctx(0.75, 1.4));
        let short = model_latency_ms(&zoo::bert(384), &nlp_ctx(0.75, 0.5));
        assert!(short < long * 0.55, "short {short} long {long}");
    }

    #[test]
    fn attention_sparsity_reduces_attention_latency() {
        let accel = Sanger::default();
        let score = zoo::bert(384)
            .layers()
            .iter()
            .find(|l| l.is_dynamic_attention())
            .cloned()
            .unwrap();
        let dense = accel.layer_latency_ns(&score, &nlp_ctx(0.0, 1.0));
        let sparse = accel.layer_latency_ns(&score, &nlp_ctx(0.9, 1.0));
        assert!(sparse < dense);
    }

    #[test]
    fn mask_predictor_pays_fixed_cost() {
        // Even at extreme sparsity the score layer retains the predictor
        // pre-pass cost, so latency never collapses to the overhead floor.
        let accel = Sanger::default();
        let score = zoo::bert(384)
            .layers()
            .iter()
            .find(|l| matches!(l.kind(), LayerKind::AttentionScore(_)))
            .cloned()
            .unwrap();
        let ns = accel.layer_latency_ns(&score, &nlp_ctx(0.995, 1.0));
        assert!(ns > accel.config().layer_overhead_ns * 1.5);
    }
}
