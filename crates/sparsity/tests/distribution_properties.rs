//! Property-based tests on the distribution samplers and statistics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dysta_sparsity::distributions::{
    beta, beta_params_from_moments, exponential, gamma, normal, poisson,
};
use dysta_sparsity::stats::{correlation_matrix, mean, pearson, relative_range, rmse, std_dev};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn beta_always_in_unit_interval(
        a in 0.2f64..20.0,
        b in 0.2f64..20.0,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = beta(&mut rng, a, b);
        prop_assert!((0.0..=1.0).contains(&x));
    }

    #[test]
    fn gamma_always_non_negative(shape in 0.1f64..20.0, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(gamma(&mut rng, shape) >= 0.0);
    }

    #[test]
    fn exponential_always_non_negative(rate in 0.01f64..100.0, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(exponential(&mut rng, rate) >= 0.0);
    }

    #[test]
    fn poisson_is_finite_count(lambda in 0.0f64..200.0, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = poisson(&mut rng, lambda);
        prop_assert!((x as f64) < lambda * 4.0 + 50.0);
    }

    #[test]
    fn normal_is_finite(mean_p in -100.0f64..100.0, sd in 0.0f64..50.0, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(normal(&mut rng, mean_p, sd).is_finite());
    }

    #[test]
    fn beta_params_recover_mean(m in 0.05f64..0.95, sd in 0.01f64..0.2) {
        let (a, b) = beta_params_from_moments(m, sd);
        prop_assert!(a > 0.0 && b > 0.0);
        prop_assert!((a / (a + b) - m).abs() < 1e-9);
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        xs in prop::collection::vec(-100.0f64..100.0, 3..40),
        shift in -10.0f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + shift).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            // Perfect linear relation with positive slope.
            prop_assert!((r - 1.0).abs() < 1e-6);
        }
        if let (Some(ab), Some(ba)) = (pearson(&xs, &ys), pearson(&ys, &xs)) {
            prop_assert!((ab - ba).abs() < 1e-12);
        }
    }

    #[test]
    fn correlation_matrix_is_symmetric_unit_diagonal(
        rows in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 4),
            3..20
        ),
    ) {
        let m = correlation_matrix(&rows);
        for i in 0..m.len() {
            prop_assert!((m[i][i] - 1.0).abs() < 1e-12);
            #[allow(clippy::needless_range_loop)]
            for j in 0..m.len() {
                prop_assert!((m[i][j] - m[j][i]).abs() < 1e-12);
                prop_assert!(m[i][j].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn rmse_zero_iff_identical(xs in prop::collection::vec(-100.0f64..100.0, 1..32)) {
        prop_assert_eq!(rmse(&xs, &xs), 0.0);
    }

    #[test]
    fn std_dev_invariant_to_shift(
        xs in prop::collection::vec(-100.0f64..100.0, 2..32),
        shift in -50.0f64..50.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((std_dev(&xs) - std_dev(&shifted)).abs() < 1e-8);
        prop_assert!((mean(&shifted) - mean(&xs) - shift).abs() < 1e-8);
    }

    #[test]
    fn relative_range_is_scale_invariant(
        xs in prop::collection::vec(0.1f64..100.0, 2..32),
        scale in 0.1f64..10.0,
    ) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        prop_assert!((relative_range(&xs) - relative_range(&scaled)).abs() < 1e-9);
    }
}
