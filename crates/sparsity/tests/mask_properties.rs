//! Property-based tests on the weight-mask generators: every pattern must
//! honour its structural invariant at any shape and rate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dysta_models::{Conv2d, Layer, LayerKind, Linear};
use dysta_sparsity::{SparsityPattern, WeightMask};

fn conv_layer(in_ch: u32, out_ch: u32, kernel: u32) -> Layer {
    Layer::new(
        "c",
        LayerKind::Conv2d(Conv2d::square(in_ch, out_ch, kernel, 1, kernel / 2, 16)),
    )
}

fn linear_layer(in_f: u32, out_f: u32) -> Layer {
    Layer::new(
        "l",
        LayerKind::Linear(Linear {
            in_features: in_f,
            out_features: out_f,
            tokens: 1,
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_mask_hits_rate_within_tolerance(
        in_ch in 4u32..64,
        out_ch in 4u32..64,
        kernel in prop::sample::select(vec![1u32, 3, 5]),
        rate in 0.05f64..0.95,
        seed in 0u64..1000,
    ) {
        let layer = conv_layer(in_ch, out_ch, kernel);
        let mut rng = StdRng::seed_from_u64(seed);
        let mask =
            WeightMask::generate(&layer, SparsityPattern::RandomPointwise, rate, &mut rng)
                .unwrap();
        prop_assert_eq!(mask.len() as u64, layer.params());
        // Binomial concentration: allow 4 sigma.
        let n = mask.len() as f64;
        let sigma = (rate * (1.0 - rate) / n).sqrt();
        prop_assert!(
            (mask.sparsity() - rate).abs() < 4.0 * sigma + 1e-9,
            "sparsity {} target {rate}", mask.sparsity()
        );
    }

    #[test]
    fn nm_mask_structure_holds_everywhere(
        in_f in 8u32..256,
        out_f in 2u32..32,
        nm in prop::sample::select(vec![(1u8, 2u8), (2, 4), (1, 4), (4, 8)]),
        seed in 0u64..1000,
    ) {
        let (n, m) = nm;
        let layer = linear_layer(in_f, out_f);
        let pattern = SparsityPattern::BlockNm { n, m };
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = WeightMask::generate(
            &layer,
            pattern,
            pattern.implied_rate().unwrap(),
            &mut rng,
        )
        .unwrap();
        prop_assert!(mask.satisfies_nm(n, m));
    }

    #[test]
    fn channel_mask_is_all_or_nothing_per_filter(
        in_f in 4u32..128,
        out_f in 2u32..64,
        rate in 0.0f64..0.99,
        seed in 0u64..1000,
    ) {
        let layer = linear_layer(in_f, out_f);
        let mut rng = StdRng::seed_from_u64(seed);
        let mask =
            WeightMask::generate(&layer, SparsityPattern::ChannelWise, rate, &mut rng).unwrap();
        let occ = mask.channel_occupancy(in_f as usize);
        prop_assert!(occ.iter().all(|&o| o == 0 || o == in_f as usize));
        // Never prunes everything.
        prop_assert!(mask.nnz() > 0);
        // Pruned count equals the rounded target (capped to leave one).
        let expected = ((rate * out_f as f64).round() as usize).min(out_f as usize - 1);
        prop_assert_eq!(occ.iter().filter(|&&o| o == 0).count(), expected);
    }

    #[test]
    fn dense_pattern_never_prunes(
        in_f in 1u32..64,
        out_f in 1u32..64,
        seed in 0u64..100,
    ) {
        let layer = linear_layer(in_f, out_f);
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = WeightMask::generate(&layer, SparsityPattern::Dense, 0.0, &mut rng).unwrap();
        prop_assert_eq!(mask.nnz(), mask.len());
    }

    #[test]
    fn masks_are_deterministic_in_the_rng(
        rate in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let layer = linear_layer(32, 32);
        let gen = |s| {
            let mut rng = StdRng::seed_from_u64(s);
            WeightMask::generate(&layer, SparsityPattern::RandomPointwise, rate, &mut rng)
                .unwrap()
        };
        prop_assert_eq!(gen(seed), gen(seed));
    }
}
