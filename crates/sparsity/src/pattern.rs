//! Weight-sparsity pattern taxonomy (the paper's Section 2.3.2, Figure 6).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The mask structure used when sparsifying a model's weights.
///
/// The paper adopts three pruning methods for CNNs — random point-wise
/// (Han et al.), N:M block-wise (NVIDIA Ampere style) and channel-wise
/// (He et al.) — plus the dense baseline. Attention models use *dynamic*
/// sparsity instead, which is a property of the input, not of the weights
/// (see [`crate::dynamicity`]).
///
/// # Examples
///
/// ```
/// use dysta_sparsity::SparsityPattern;
///
/// let p: SparsityPattern = "2:4".parse()?;
/// assert_eq!(p, SparsityPattern::BlockNm { n: 2, m: 4 });
/// assert!((p.implied_rate().unwrap() - 0.5).abs() < 1e-12);
/// # Ok::<(), dysta_sparsity::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SparsityPattern {
    /// No weight pruning.
    Dense,
    /// Unstructured i.i.d. point-wise pruning.
    RandomPointwise,
    /// Keep `n` of every `m` consecutive weights (e.g. 2:4 on Ampere
    /// sparse tensor cores).
    BlockNm {
        /// Weights kept per block.
        n: u8,
        /// Block size.
        m: u8,
    },
    /// Prune entire input channels / features.
    ChannelWise,
}

impl SparsityPattern {
    /// All pattern archetypes evaluated by the paper (with 2:4 as the
    /// representative N:M configuration).
    pub const ALL: [SparsityPattern; 4] = [
        SparsityPattern::Dense,
        SparsityPattern::RandomPointwise,
        SparsityPattern::BlockNm { n: 2, m: 4 },
        SparsityPattern::ChannelWise,
    ];

    /// Whether the pattern imposes hardware-friendly structure
    /// (anything coarser than point-wise).
    pub fn is_structured(self) -> bool {
        matches!(
            self,
            SparsityPattern::BlockNm { .. } | SparsityPattern::ChannelWise
        )
    }

    /// The sparsity rate implied by the pattern itself, if fixed.
    ///
    /// Only N:M patterns pin the rate (`1 - n/m`); `Dense` is 0 by
    /// definition; random and channel-wise take the rate as a free
    /// parameter and return `None`.
    pub fn implied_rate(self) -> Option<f64> {
        match self {
            SparsityPattern::Dense => Some(0.0),
            SparsityPattern::BlockNm { n, m } => Some(1.0 - n as f64 / m as f64),
            SparsityPattern::RandomPointwise | SparsityPattern::ChannelWise => None,
        }
    }

    /// Stable short name for table headers and LUT keys (the `Display`
    /// impl writes the same characters without allocating — hot key
    /// formatting goes through that).
    pub fn short_name(self) -> String {
        self.to_string()
    }
}

impl fmt::Display for SparsityPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparsityPattern::Dense => f.write_str("dense"),
            SparsityPattern::RandomPointwise => f.write_str("random"),
            SparsityPattern::BlockNm { n, m } => write!(f, "{n}:{m}"),
            SparsityPattern::ChannelWise => f.write_str("channel"),
        }
    }
}

/// Error returned when parsing a [`SparsityPattern`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    input: String,
}

impl ParsePatternError {
    /// The rejected input.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown sparsity pattern `{}`", self.input)
    }
}

impl std::error::Error for ParsePatternError {}

impl FromStr for SparsityPattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "dense" => return Ok(SparsityPattern::Dense),
            "random" | "random_pointwise" | "pointwise" => {
                return Ok(SparsityPattern::RandomPointwise)
            }
            "channel" | "channelwise" | "channel_wise" => return Ok(SparsityPattern::ChannelWise),
            _ => {}
        }
        if let Some((n, m)) = lower.split_once(':') {
            let n: u8 = n.trim().parse().map_err(|_| ParsePatternError {
                input: s.to_owned(),
            })?;
            let m: u8 = m.trim().parse().map_err(|_| ParsePatternError {
                input: s.to_owned(),
            })?;
            if n == 0 || m == 0 || n > m {
                return Err(ParsePatternError {
                    input: s.to_owned(),
                });
            }
            return Ok(SparsityPattern::BlockNm { n, m });
        }
        Err(ParsePatternError {
            input: s.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        for p in SparsityPattern::ALL {
            let parsed: SparsityPattern = p.to_string().parse().expect("roundtrip");
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn nm_rate() {
        let p = SparsityPattern::BlockNm { n: 1, m: 4 };
        assert!((p.implied_rate().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_nm() {
        assert!("4:2".parse::<SparsityPattern>().is_err());
        assert!("0:4".parse::<SparsityPattern>().is_err());
        assert!("a:4".parse::<SparsityPattern>().is_err());
    }

    #[test]
    fn structured_taxonomy() {
        assert!(!SparsityPattern::Dense.is_structured());
        assert!(!SparsityPattern::RandomPointwise.is_structured());
        assert!(SparsityPattern::BlockNm { n: 2, m: 4 }.is_structured());
        assert!(SparsityPattern::ChannelWise.is_structured());
    }

    #[test]
    fn error_reports_input() {
        let err = "blocky".parse::<SparsityPattern>().unwrap_err();
        assert_eq!(err.input(), "blocky");
    }
}
