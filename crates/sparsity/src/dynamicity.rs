//! Input-dependent sparsity dynamicity (the paper's Section 2.3.1).
//!
//! This module is the substitution for the real datasets the paper
//! profiles (ImageNet, ExDark, DarkFace, COCO for vision; SQuAD, GLUE for
//! language). Each [`DatasetProfile`] is a calibrated statistical model of
//! per-sample, per-layer sparsity with three properties the paper measures
//! and the Dysta scheduler exploits:
//!
//! 1. **Per-sample variance** — normalized attention-layer latency spreads
//!    over roughly 0.6–1.8× the mean (paper Figure 2), and CNN layer
//!    activation sparsities span 10–45% (Figure 3).
//! 2. **Inter-layer correlation** — per-layer sparsities within one sample
//!    are strongly linearly correlated (Figure 9), which is precisely what
//!    makes Dysta's *last-one* linear latency predictor accurate.
//! 3. **Per-model sensitivity** — the relative range of network sparsity
//!    differs per architecture (Table 2: 15.1%–28.3%).
//!
//! The generative model per sample: a global latent "input complexity"
//! factor `z ~ N(0,1)` is shared by all layers with weight `sqrt(rho)` and
//! mixed with per-layer noise, then mapped through a clamp (CNNs) or a
//! lognormal transform (attention densities, producing the right skew).
//! Low-light datasets add a mixture over illumination conditions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dysta_models::{ModelFamily, ModelGraph, ModelId};

use crate::distributions::standard_normal;

/// Calibrated sparsity-statistics profile standing in for a real dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetProfile {
    /// Well-lit natural images (baseline activation sparsity).
    ImageNet,
    /// Exclusively-Dark low-light images: higher sparsity, higher variance.
    ExDark,
    /// DarkFace low-light face images: highest sparsity and variance.
    DarkFace,
    /// COCO detection images: close to ImageNet statistics.
    Coco,
    /// The paper's profiling mixture (ImageNet + ExDark + DarkFace),
    /// used for Figure 3 and Table 2.
    VisionMixture,
    /// SQuAD question answering (drives BERT attention sparsity).
    Squad,
    /// GLUE sentence tasks (drives GPT-2/BART attention sparsity).
    Glue,
}

impl DatasetProfile {
    /// The profile the paper pairs with each benchmark model in the
    /// scheduling experiments.
    pub fn default_for(model: ModelId) -> DatasetProfile {
        match model.family() {
            ModelFamily::Cnn => DatasetProfile::VisionMixture,
            ModelFamily::AttNn => match model {
                ModelId::Bert => DatasetProfile::Squad,
                _ => DatasetProfile::Glue,
            },
        }
    }

    /// `(sparsity at depth 0, sparsity at depth 1)` for CNN ReLU outputs.
    fn cnn_sparsity_span(self) -> (f64, f64) {
        match self {
            DatasetProfile::ImageNet => (0.30, 0.55),
            DatasetProfile::Coco => (0.31, 0.56),
            DatasetProfile::ExDark => (0.32, 0.57),
            DatasetProfile::DarkFace => (0.33, 0.585),
            // Resolved per mixture component at sampling time.
            DatasetProfile::VisionMixture => (0.32, 0.58),
            DatasetProfile::Squad | DatasetProfile::Glue => (0.05, 0.05),
        }
    }

    /// Per-sample standard deviation of the per-layer sparsity noise.
    fn sample_std(self) -> f64 {
        match self {
            DatasetProfile::ImageNet | DatasetProfile::Coco => 0.04,
            DatasetProfile::ExDark => 0.055,
            DatasetProfile::DarkFace => 0.06,
            DatasetProfile::VisionMixture => 0.035,
            DatasetProfile::Squad => 0.05,
            DatasetProfile::Glue => 0.06,
        }
    }

    /// Inter-layer correlation of per-sample sparsity. Figure 9 shows
    /// this is very high for language models (which is what makes the
    /// last-one linear predictor viable); for CNNs the per-layer ReLU
    /// noise is mostly layer-local and the *common* component comes from
    /// the input's illumination/content (the mixture component), so the
    /// latent-factor weight is small — this is also what keeps the
    /// network-level relative range (Table 2) an order of magnitude
    /// below the per-layer spread (Figure 3).
    fn layer_correlation(self) -> f64 {
        match self {
            DatasetProfile::Squad => 0.88,
            DatasetProfile::Glue => 0.85,
            _ => 0.05,
        }
    }

    /// Mean attention-matrix *density* after dynamic pruning (Sanger-style
    /// thresholding keeps ~25% of attention scores at matched accuracy).
    fn attention_density_mean(self) -> f64 {
        match self {
            DatasetProfile::Squad => 0.25,
            DatasetProfile::Glue => 0.30,
            _ => 1.0,
        }
    }

    /// Lognormal sigma of the attention density (calibrated so normalized
    /// latency spans ≈0.6–1.8, Figure 2).
    fn attention_density_sigma(self) -> f64 {
        match self {
            DatasetProfile::Squad => 0.22,
            DatasetProfile::Glue => 0.20,
            _ => 0.0,
        }
    }

    /// True for language profiles.
    pub fn is_language(self) -> bool {
        matches!(self, DatasetProfile::Squad | DatasetProfile::Glue)
    }
}

/// How strongly a CNN architecture's activation sparsity responds to input
/// condition shifts (darkness, low information). Calibrated so the
/// relative range of network sparsity matches Table 2: architectures with
/// residual connections and batch-norm (ResNet) are the most stable, while
/// inception-style networks respond the most.
fn model_sensitivity(model: ModelId) -> f64 {
    match model {
        ModelId::GoogLeNet => 1.30,
        ModelId::InceptionV3 => 1.05,
        ModelId::Vgg16 => 0.95,
        ModelId::MobileNet => 0.85,
        ModelId::Ssd => 0.85,
        ModelId::ResNet50 => 0.62,
        // Attention models are governed by the attention-density model.
        ModelId::Bert | ModelId::Gpt2 | ModelId::Bart => 1.0,
    }
}

/// Per-sample, per-layer sparsity drawn from a [`SampleSparsityGenerator`].
///
/// For CNN layers the value is the output-activation sparsity (fraction of
/// zeros after ReLU); for attention score/context layers it is the
/// attention-matrix sparsity (fraction of pruned attention weights);
/// layers without a dynamic-sparsity source report 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSparsity {
    per_layer: Vec<f64>,
    seq_scale: f64,
}

impl SampleSparsity {
    /// Relative input-sequence length of this sample (1.0 for vision
    /// workloads).
    ///
    /// Language inputs vary in length: simple prompts are short *and*
    /// produce higher attention sparsity, complex prompts are long and
    /// dense (the paper's Figure 1(c): 1 ms / 90% sparsity vs 4 ms / 30%
    /// sparsity). Linear-layer work scales with `seq_scale`, attention
    /// matmuls with `seq_scale²`.
    pub fn seq_scale(&self) -> f64 {
        self.seq_scale
    }

    /// Per-layer sparsity values, indexed like the model's layers.
    pub fn per_layer(&self) -> &[f64] {
        &self.per_layer
    }

    /// Sparsity of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn layer(&self, index: usize) -> f64 {
        self.per_layer[index]
    }

    /// Network sparsity: the plain average of layer sparsities, as defined
    /// for Table 2.
    pub fn network_sparsity(&self) -> f64 {
        if self.per_layer.is_empty() {
            0.0
        } else {
            self.per_layer.iter().sum::<f64>() / self.per_layer.len() as f64
        }
    }
}

/// Deterministic generator of per-sample sparsity vectors for one model
/// under one dataset profile.
///
/// `sample(i)` is a pure function of `(seed, i)`, so traces are exactly
/// reproducible and samples can be drawn in any order.
///
/// # Examples
///
/// ```
/// use dysta_models::zoo;
/// use dysta_sparsity::{DatasetProfile, SampleSparsityGenerator};
///
/// let bert = zoo::bert(384);
/// let gen = SampleSparsityGenerator::new(&bert, DatasetProfile::Squad, 7);
/// let a = gen.sample(3);
/// let b = gen.sample(3);
/// assert_eq!(a, b); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SampleSparsityGenerator {
    model: ModelId,
    profile: DatasetProfile,
    seed: u64,
    /// Per-layer: (has_relu, is_attention, depth_fraction).
    layer_info: Vec<(bool, bool, f64)>,
}

impl SampleSparsityGenerator {
    /// Creates a generator for `model` under `profile`.
    pub fn new(model: &ModelGraph, profile: DatasetProfile, seed: u64) -> Self {
        let n = model.num_layers().max(1);
        let layer_info = model
            .iter()
            .map(|(i, l)| {
                let depth = if n > 1 {
                    i as f64 / (n - 1) as f64
                } else {
                    0.0
                };
                (l.relu(), l.is_dynamic_attention(), depth)
            })
            .collect();
        SampleSparsityGenerator {
            model: model.id(),
            profile,
            seed,
            layer_info,
        }
    }

    /// The dataset profile in use.
    pub fn profile(&self) -> DatasetProfile {
        self.profile
    }

    /// Draws the sparsity vector for sample `index`.
    pub fn sample(&self, index: u64) -> SampleSparsity {
        // SplitMix64-style mixing of (seed, index) into an independent
        // stream per sample.
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(0x94D0_49BB_1331_11EB);
        state ^= state >> 30;
        state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let mut rng = StdRng::seed_from_u64(state);

        // Mixture component selection (low-light emulation).
        let component = match self.profile {
            DatasetProfile::VisionMixture => {
                let u: f64 = rng.gen();
                if u < 0.5 {
                    DatasetProfile::ImageNet
                } else if u < 0.75 {
                    DatasetProfile::ExDark
                } else {
                    DatasetProfile::DarkFace
                }
            }
            p => p,
        };

        let sensitivity = model_sensitivity(self.model);
        let rho = self.profile.layer_correlation();
        let z = standard_normal(&mut rng);
        // Input complexity drives both sequence length and attention
        // density through the shared latent factor `z`.
        let seq_scale = if self.profile.is_language() {
            (0.35 * z).exp().clamp(0.45, 1.9)
        } else {
            1.0
        };
        let (lo, hi) = component.cnn_sparsity_span();
        let cnn_std = component.sample_std() * sensitivity;
        let att_mu = component.attention_density_mean();
        let att_sigma = component.attention_density_sigma();

        let per_layer = self
            .layer_info
            .iter()
            .map(|&(has_relu, is_attention, depth)| {
                let eps = standard_normal(&mut rng);
                let shock = rho.sqrt() * z + (1.0 - rho).sqrt() * eps;
                if is_attention {
                    // Lognormal density, converted to sparsity.
                    let density = att_mu * (att_sigma * shock - 0.5 * att_sigma * att_sigma).exp();
                    (1.0 - density).clamp(0.0, 0.995)
                } else if has_relu {
                    let mean = lo + (hi - lo) * depth;
                    // Center the mixture around the canonical ImageNet span
                    // scaled by architecture sensitivity.
                    let (base_lo, base_hi) = DatasetProfile::ImageNet.cnn_sparsity_span();
                    let base = base_lo + (base_hi - base_lo) * depth;
                    let shifted = base + (mean - base) * sensitivity;
                    (shifted + cnn_std * shock).clamp(0.01, 0.95)
                } else {
                    0.0
                }
            })
            .collect();
        SampleSparsity {
            per_layer,
            seq_scale,
        }
    }

    /// Draws `count` consecutive samples starting at index 0.
    pub fn samples(&self, count: u64) -> Vec<SampleSparsity> {
        (0..count).map(|i| self.sample(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use dysta_models::zoo;

    #[test]
    fn deterministic_per_index() {
        let g = SampleSparsityGenerator::new(&zoo::vgg16(), DatasetProfile::ImageNet, 1);
        assert_eq!(g.sample(5), g.sample(5));
        assert_ne!(g.sample(5), g.sample(6));
    }

    #[test]
    fn different_seeds_differ() {
        let m = zoo::vgg16();
        let a = SampleSparsityGenerator::new(&m, DatasetProfile::ImageNet, 1).sample(0);
        let b = SampleSparsityGenerator::new(&m, DatasetProfile::ImageNet, 2).sample(0);
        assert_ne!(a, b);
    }

    #[test]
    fn sparsities_in_unit_interval() {
        let m = zoo::resnet50();
        let g = SampleSparsityGenerator::new(&m, DatasetProfile::VisionMixture, 3);
        for s in g.samples(100) {
            for &v in s.per_layer() {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn non_relu_layers_report_zero() {
        let m = zoo::resnet50();
        let g = SampleSparsityGenerator::new(&m, DatasetProfile::ImageNet, 4);
        let s = g.sample(0);
        for (i, l) in m.iter() {
            if !l.relu() && !l.is_dynamic_attention() {
                assert_eq!(s.layer(i), 0.0, "layer {}", l.name());
            }
        }
    }

    #[test]
    fn attention_sparsity_is_high_for_squad() {
        let m = zoo::bert(384);
        let g = SampleSparsityGenerator::new(&m, DatasetProfile::Squad, 5);
        let attn_idx = m.attention_layer_indices();
        let mean: f64 = g
            .samples(200)
            .iter()
            .flat_map(|s| attn_idx.iter().map(move |&i| s.layer(i)))
            .sum::<f64>()
            / (200 * attn_idx.len()) as f64;
        // Mean density 0.25 -> sparsity ~0.75.
        assert!((0.70..0.80).contains(&mean), "{mean}");
    }

    #[test]
    fn attention_latency_spread_matches_fig2() {
        // Normalized density (∝ latency on Sanger) should span ~0.6–1.8.
        let m = zoo::bert(384);
        let g = SampleSparsityGenerator::new(&m, DatasetProfile::Squad, 6);
        let last_attn = *m.attention_layer_indices().last().unwrap();
        let densities: Vec<f64> = g
            .samples(2000)
            .iter()
            .map(|s| 1.0 - s.layer(last_attn))
            .collect();
        let mean = stats::mean(&densities);
        let normalized: Vec<f64> = densities.iter().map(|d| d / mean).collect();
        let min = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = normalized.iter().cloned().fold(0.0f64, f64::max);
        assert!(min < 0.75 && min > 0.3, "min {min}");
        assert!(max > 1.4 && max < 2.6, "max {max}");
    }

    #[test]
    fn dark_profiles_are_sparser_than_imagenet() {
        let m = zoo::vgg16();
        let mean_net = |p: DatasetProfile| {
            let g = SampleSparsityGenerator::new(&m, p, 7);
            stats::mean(
                &g.samples(200)
                    .iter()
                    .map(|s| s.network_sparsity())
                    .collect::<Vec<_>>(),
            )
        };
        assert!(mean_net(DatasetProfile::DarkFace) > mean_net(DatasetProfile::ImageNet) + 0.015);
    }

    #[test]
    fn layers_are_correlated_within_sample() {
        let m = zoo::gpt2(256);
        let g = SampleSparsityGenerator::new(&m, DatasetProfile::Glue, 8);
        let idx = m.attention_layer_indices();
        let (a, b) = (idx[0], idx[idx.len() - 1]);
        let samples = g.samples(500);
        let xs: Vec<f64> = samples.iter().map(|s| s.layer(a)).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.layer(b)).collect();
        let r = stats::pearson(&xs, &ys).unwrap();
        assert!(r > 0.6, "correlation {r}");
    }

    #[test]
    fn network_sparsity_is_layer_mean() {
        let s = SampleSparsity {
            per_layer: vec![0.2, 0.4, 0.6],
            seq_scale: 1.0,
        };
        assert!((s.network_sparsity() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn seq_scale_fixed_for_vision_varies_for_language() {
        let cnn = zoo::resnet50();
        let g = SampleSparsityGenerator::new(&cnn, DatasetProfile::VisionMixture, 9);
        assert!(g.samples(20).iter().all(|s| s.seq_scale() == 1.0));

        let nlp = zoo::bert(384);
        let g = SampleSparsityGenerator::new(&nlp, DatasetProfile::Squad, 9);
        let scales: Vec<f64> = g.samples(200).iter().map(|s| s.seq_scale()).collect();
        assert!(scales.iter().all(|&s| (0.45..=1.9).contains(&s)));
        assert!(
            stats::std_dev(&scales) > 0.1,
            "language seq length must vary"
        );
    }

    #[test]
    fn complex_prompts_are_longer_and_denser() {
        // Figure 1(c): seq length and attention density share the latent
        // complexity factor, so they correlate positively.
        let nlp = zoo::gpt2(256);
        let g = SampleSparsityGenerator::new(&nlp, DatasetProfile::Glue, 10);
        let attn = nlp.attention_layer_indices()[0];
        let samples = g.samples(400);
        let seq: Vec<f64> = samples.iter().map(|s| s.seq_scale()).collect();
        let density: Vec<f64> = samples.iter().map(|s| 1.0 - s.layer(attn)).collect();
        let r = stats::pearson(&seq, &density).unwrap();
        assert!(r > 0.5, "correlation {r}");
    }

    #[test]
    fn default_profiles_match_paper_pairing() {
        assert_eq!(
            DatasetProfile::default_for(ModelId::Bert),
            DatasetProfile::Squad
        );
        assert_eq!(
            DatasetProfile::default_for(ModelId::Gpt2),
            DatasetProfile::Glue
        );
        assert_eq!(
            DatasetProfile::default_for(ModelId::ResNet50),
            DatasetProfile::VisionMixture
        );
    }
}
