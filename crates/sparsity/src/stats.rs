//! Statistical estimators used by the paper's profiling figures.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root-mean-square error between paired predictions and targets.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty input");
    let sq = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / predictions.len() as f64;
    sq.sqrt()
}

/// Pearson product-moment correlation coefficient, as used in the paper's
/// Figure 9. Returns `None` if either input is degenerate (fewer than two
/// points or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// Pearson correlation matrix across the columns of `rows` (each row is one
/// observation, each column one variable). Diagonal entries are 1;
/// degenerate pairs yield 0.
///
/// # Panics
///
/// Panics if rows have inconsistent lengths.
pub fn correlation_matrix(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let Some(first) = rows.first() else {
        return Vec::new();
    };
    let cols = first.len();
    assert!(
        rows.iter().all(|r| r.len() == cols),
        "inconsistent row lengths"
    );
    let columns: Vec<Vec<f64>> = (0..cols)
        .map(|c| rows.iter().map(|r| r[c]).collect())
        .collect();
    (0..cols)
        .map(|i| {
            (0..cols)
                .map(|j| {
                    if i == j {
                        1.0
                    } else {
                        pearson(&columns[i], &columns[j]).unwrap_or(0.0)
                    }
                })
                .collect()
        })
        .collect()
}

/// Relative range `(max - min) / mean`, the Table 2 statistic.
/// Returns 0 for empty input or zero mean.
pub fn relative_range(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (max - min) / m
}

/// A fixed-bin histogram over a closed interval, used to print the
/// probability-density figures (Figures 2–4).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "lo must be below hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation; values outside the range clamp to the edge
    /// bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every observation in the iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Bin centers.
    pub fn centers(&self) -> Vec<f64> {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        (0..bins).map(|i| self.lo + (i as f64 + 0.5) * w).collect()
    }

    /// Probability density per bin (integrates to 1 over the range).
    pub fn density(&self) -> Vec<f64> {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        if self.total == 0 {
            return vec![0.0; bins];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / (self.total as f64 * w))
            .collect()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations added.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((std_dev(&xs) - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn rmse_basic() {
        assert!((rmse(&[1.0, 2.0], &[1.0, 4.0]) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_rejects_mismatch() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
    }

    #[test]
    fn correlation_matrix_shape_and_diagonal() {
        let rows = vec![
            vec![1.0, 2.0, 0.5],
            vec![2.0, 4.0, 0.4],
            vec![3.0, 6.0, 0.9],
        ];
        let m = correlation_matrix(&rows);
        assert_eq!(m.len(), 3);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
        }
        assert!((m[0][1] - 1.0).abs() < 1e-12);
        assert!((m[0][1] - m[1][0]).abs() < 1e-12);
    }

    #[test]
    fn relative_range_matches_definition() {
        let xs = [0.4, 0.5, 0.6];
        assert!((relative_range(&xs) - 0.4).abs() < 1e-12);
        assert_eq!(relative_range(&[]), 0.0);
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.extend((0..1000).map(|i| i as f64 / 1000.0));
        let w = 0.1;
        let integral: f64 = h.density().iter().map(|d| d * w).sum();
        assert!((integral - 1.0).abs() < 1e-9);
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }
}
