//! Weight-sparsity patterns and dynamic activation-sparsity profiles.
//!
//! The Sparse-DySta paper identifies two sparsity properties that drive
//! runtime dynamicity in multi-DNN workloads (its Section 2.3):
//!
//! * **Sparsity pattern** — the mask structure used when pruning weights
//!   (random point-wise, N:M block-wise, channel-wise). Modelled by
//!   [`SparsityPattern`] and realised as explicit bitmasks in [`mask`].
//! * **Sparsity dynamicity** — input-dependent activation and attention
//!   sparsity that varies per sample. Modelled by per-dataset statistical
//!   profiles in [`dynamicity`] (the substitution for the real ImageNet /
//!   ExDark / DarkFace / SQuAD / GLUE datasets; see `DESIGN.md` §1).
//!
//! The [`stats`] module provides the estimators the paper's profiling
//! figures use (Pearson correlation, relative range, histograms), and
//! [`distributions`] implements the needed samplers (Normal, Beta, Gamma,
//! Poisson) on top of `rand`.
//!
//! # Examples
//!
//! ```
//! use dysta_sparsity::{DatasetProfile, SampleSparsityGenerator, SparsityPattern};
//! use dysta_models::zoo;
//!
//! let model = zoo::resnet50();
//! let gen = SampleSparsityGenerator::new(&model, DatasetProfile::ImageNet, 42);
//! let sample = gen.sample(0);
//! assert_eq!(sample.per_layer().len(), model.num_layers());
//! assert!(SparsityPattern::ChannelWise.is_structured());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod dynamicity;
pub mod mask;
pub mod pattern;
pub mod stats;

pub use dynamicity::{DatasetProfile, SampleSparsity, SampleSparsityGenerator};
pub use mask::{MaskGenerationError, WeightMask};
pub use pattern::{ParsePatternError, SparsityPattern};
