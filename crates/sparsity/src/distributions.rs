//! Random-variate samplers used by the workload and sparsity generators.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! classic sampling algorithms are implemented here: Box–Muller for the
//! normal distribution, Marsaglia–Tsang for the gamma, the beta via two
//! gammas, and inversion/Knuth for the Poisson.

use rand::Rng;

/// Standard normal variate via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = dysta_sparsity::distributions::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative or not finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev >= 0.0 && std_dev.is_finite(),
        "standard deviation must be non-negative and finite"
    );
    mean + std_dev * standard_normal(rng)
}

/// Gamma(shape, scale = 1) variate via Marsaglia & Tsang's method.
///
/// # Panics
///
/// Panics if `shape` is not strictly positive.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Beta(alpha, beta) variate (ratio of gammas).
///
/// # Panics
///
/// Panics if either parameter is not strictly positive.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, alpha: f64, beta_param: f64) -> f64 {
    assert!(
        alpha > 0.0 && beta_param > 0.0,
        "beta parameters must be positive"
    );
    let x = gamma(rng, alpha);
    let y = gamma(rng, beta_param);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Poisson(lambda) variate. Uses Knuth's product method for small `lambda`
/// and a normal approximation (rounded, clamped at zero) for large values.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "poisson rate must be non-negative and finite"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        x.round().max(0.0) as u64
    }
}

/// Exponential variate with the given rate (events per unit time), via
/// inversion. Used for Poisson-process inter-arrival times.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Converts a (mean, standard deviation) pair on (0, 1) into Beta
/// distribution parameters, clamping to a minimum concentration so the
/// density stays unimodal.
///
/// # Panics
///
/// Panics unless `0 < mean < 1` and `std_dev > 0`.
pub fn beta_params_from_moments(mean: f64, std_dev: f64) -> (f64, f64) {
    assert!(
        (0.0..1.0).contains(&mean) && mean > 0.0,
        "mean must be in (0,1)"
    );
    assert!(std_dev > 0.0, "std dev must be positive");
    let var = (std_dev * std_dev).min(mean * (1.0 - mean) * 0.95);
    let concentration = (mean * (1.0 - mean) / var - 1.0).max(2.0);
    (mean * concentration, (1.0 - mean) * concentration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        for shape in [0.5, 1.0, 2.5, 9.0] {
            let xs: Vec<f64> = (0..20_000).map(|_| gamma(&mut rng, shape)).collect();
            let (mean, var) = moments(&xs);
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
            assert!(
                (var - shape).abs() < 0.3 * shape.max(1.0),
                "shape {shape} var {var}"
            );
        }
    }

    #[test]
    fn beta_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let (a, b) = (2.0, 5.0);
        let xs: Vec<f64> = (0..20_000).map(|_| beta(&mut rng, a, b)).collect();
        let (mean, var) = moments(&xs);
        let expect_mean = a / (a + b);
        let expect_var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
        assert!((mean - expect_mean).abs() < 0.01);
        assert!((var - expect_var).abs() < 0.005);
        assert!(xs.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    #[test]
    fn poisson_small_and_large_lambda() {
        let mut rng = StdRng::seed_from_u64(10);
        for lambda in [0.5, 4.0, 100.0] {
            let xs: Vec<f64> = (0..20_000)
                .map(|_| poisson(&mut rng, lambda) as f64)
                .collect();
            let (mean, var) = moments(&xs);
            assert!(
                (mean - lambda).abs() < 0.05 * lambda + 0.1,
                "λ={lambda} mean {mean}"
            );
            assert!(
                (var - lambda).abs() < 0.15 * lambda + 0.2,
                "λ={lambda} var {var}"
            );
        }
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(12);
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut rng, 4.0)).collect();
        let (mean, _) = moments(&xs);
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn beta_params_reproduce_moments() {
        let (a, b) = beta_params_from_moments(0.3, 0.1);
        let mean = a / (a + b);
        let var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
        assert!((mean - 0.3).abs() < 1e-9);
        assert!((var.sqrt() - 0.1).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_zero_shape() {
        let mut rng = StdRng::seed_from_u64(13);
        let _ = gamma(&mut rng, 0.0);
    }
}
