//! Explicit weight bitmasks realising each sparsity pattern (Figure 6).
//!
//! Masks are used for pattern validation and for the Figure 4 valid-MAC
//! profiling; the scheduling path uses the cheaper analytic model in
//! [`crate::dynamicity`].

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use dysta_models::{Layer, LayerKind};

use crate::SparsityPattern;

/// A dense bitmask over a layer's flattened weight tensor; a set bit means
/// the weight is kept.
///
/// The flattened layout is `[out_channel][in_channel/groups][kh][kw]` for
/// convolutions and `[out_feature][in_feature]` for linear layers, so
/// channel-wise (filter) pruning corresponds to contiguous zero blocks.
///
/// # Examples
///
/// ```
/// use dysta_models::{Conv2d, Layer, LayerKind};
/// use dysta_sparsity::{SparsityPattern, WeightMask};
/// use rand::SeedableRng;
///
/// let layer = Layer::new("c", LayerKind::Conv2d(Conv2d::square(64, 64, 3, 1, 1, 28)));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mask = WeightMask::generate(&layer, SparsityPattern::RandomPointwise, 0.8, &mut rng)?;
/// assert!((mask.sparsity() - 0.8).abs() < 0.02);
/// # Ok::<(), dysta_sparsity::MaskGenerationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightMask {
    words: Vec<u64>,
    len: usize,
}

impl WeightMask {
    /// An all-ones (dense) mask of the given length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn dense(len: usize) -> Self {
        assert!(len > 0, "mask length must be positive");
        let mut mask = WeightMask {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        mask.clear_tail();
        mask
    }

    /// Generates a mask for `layer` with the requested `pattern` and
    /// target sparsity `rate`.
    ///
    /// For [`SparsityPattern::BlockNm`] the rate is fixed by the pattern
    /// and the `rate` argument must match `1 - n/m` within 1e-9 (pass the
    /// value of [`SparsityPattern::implied_rate`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the layer has no weights (pooling, attention
    /// matmuls), if `rate` is outside `[0, 1)`, or if the rate conflicts
    /// with an N:M pattern.
    pub fn generate<R: Rng + ?Sized>(
        layer: &Layer,
        pattern: SparsityPattern,
        rate: f64,
        rng: &mut R,
    ) -> Result<Self, MaskGenerationError> {
        if !(0.0..1.0).contains(&rate) {
            return Err(MaskGenerationError::InvalidRate { rate });
        }
        let len = layer.params() as usize;
        if len == 0 {
            return Err(MaskGenerationError::NoWeights {
                layer: layer.name().to_owned(),
            });
        }
        match pattern {
            SparsityPattern::Dense => Ok(WeightMask::dense(len)),
            SparsityPattern::RandomPointwise => {
                let mut mask = WeightMask::dense(len);
                for i in 0..len {
                    if rng.gen::<f64>() < rate {
                        mask.clear(i);
                    }
                }
                Ok(mask)
            }
            SparsityPattern::BlockNm { n, m } => {
                let implied = 1.0 - n as f64 / m as f64;
                if (implied - rate).abs() > 1e-9 {
                    return Err(MaskGenerationError::RateConflictsWithNm { n, m, rate });
                }
                let mut mask = WeightMask::dense(len);
                let m = m as usize;
                let n = n as usize;
                for block_start in (0..len).step_by(m) {
                    let block_len = m.min(len - block_start);
                    // Keep `n` positions per block (proportionally fewer in
                    // a truncated tail block).
                    let keep = if block_len == m {
                        n
                    } else {
                        ((n * block_len) as f64 / m as f64).round() as usize
                    };
                    let mut idx: Vec<usize> = (0..block_len).collect();
                    idx.shuffle(rng);
                    for &j in &idx[keep.min(block_len)..] {
                        mask.clear(block_start + j);
                    }
                }
                Ok(mask)
            }
            SparsityPattern::ChannelWise => {
                let (channels, channel_size) = filter_geometry(layer)?;
                let prune = (rate * channels as f64).round() as usize;
                let prune = prune.min(channels.saturating_sub(1));
                let mut order: Vec<usize> = (0..channels).collect();
                order.shuffle(rng);
                let mut mask = WeightMask::dense(len);
                for &c in order.iter().take(prune) {
                    let start = c * channel_size;
                    for i in start..(start + channel_size).min(len) {
                        mask.clear(i);
                    }
                }
                Ok(mask)
            }
        }
    }

    /// Number of weights covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mask covers no weights (never produced by this crate).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of kept (non-zero) weights.
    pub fn nnz(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Achieved sparsity: fraction of pruned weights.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / self.len as f64
    }

    /// Whether weight `i` is kept.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn is_set(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << tail) - 1;
        }
    }

    /// Verifies the N:M invariant: every complete block of `m` consecutive
    /// weights keeps exactly `n`.
    pub fn satisfies_nm(&self, n: u8, m: u8) -> bool {
        let m = m as usize;
        (0..self.len / m).all(|b| {
            let kept = (0..m).filter(|&j| self.is_set(b * m + j)).count();
            kept == n as usize
        })
    }

    /// Counts kept weights per channel for a given channel size, used to
    /// verify the channel-wise invariant (each channel all-kept or
    /// all-pruned).
    pub fn channel_occupancy(&self, channel_size: usize) -> Vec<usize> {
        assert!(channel_size > 0, "channel size must be positive");
        (0..self.len.div_ceil(channel_size))
            .map(|c| {
                let start = c * channel_size;
                (start..(start + channel_size).min(self.len))
                    .filter(|&i| self.is_set(i))
                    .count()
            })
            .collect()
    }
}

/// Returns `(filters, weights per filter)` for a weighted layer.
fn filter_geometry(layer: &Layer) -> Result<(usize, usize), MaskGenerationError> {
    match layer.kind() {
        LayerKind::Conv2d(c) => {
            let per_filter =
                (c.in_channels / c.groups) as usize * c.kernel_h as usize * c.kernel_w as usize;
            Ok((c.out_channels as usize, per_filter))
        }
        LayerKind::Linear(l) => Ok((l.out_features as usize, l.in_features as usize)),
        _ => Err(MaskGenerationError::NoWeights {
            layer: layer.name().to_owned(),
        }),
    }
}

/// Error returned by [`WeightMask::generate`].
#[derive(Debug, Clone, PartialEq)]
pub enum MaskGenerationError {
    /// The layer has no prunable weights.
    NoWeights {
        /// Layer name.
        layer: String,
    },
    /// The requested rate is outside `[0, 1)`.
    InvalidRate {
        /// The rejected rate.
        rate: f64,
    },
    /// The requested rate is inconsistent with the N:M pattern.
    RateConflictsWithNm {
        /// Weights kept per block.
        n: u8,
        /// Block size.
        m: u8,
        /// The rejected rate.
        rate: f64,
    },
}

impl fmt::Display for MaskGenerationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskGenerationError::NoWeights { layer } => {
                write!(f, "layer `{layer}` has no prunable weights")
            }
            MaskGenerationError::InvalidRate { rate } => {
                write!(f, "sparsity rate {rate} outside [0, 1)")
            }
            MaskGenerationError::RateConflictsWithNm { n, m, rate } => {
                write!(
                    f,
                    "rate {rate} conflicts with {n}:{m} pattern (implies {})",
                    1.0 - *n as f64 / *m as f64
                )
            }
        }
    }
}

impl std::error::Error for MaskGenerationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::{Conv2d, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv_layer() -> Layer {
        Layer::new("c", LayerKind::Conv2d(Conv2d::square(64, 128, 3, 1, 1, 28)))
    }

    fn linear_layer() -> Layer {
        Layer::new(
            "l",
            LayerKind::Linear(Linear {
                in_features: 256,
                out_features: 100,
                tokens: 1,
            }),
        )
    }

    #[test]
    fn dense_mask_is_all_ones() {
        let m = WeightMask::dense(100);
        assert_eq!(m.nnz(), 100);
        assert_eq!(m.sparsity(), 0.0);
    }

    #[test]
    fn random_hits_target_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = WeightMask::generate(
            &conv_layer(),
            SparsityPattern::RandomPointwise,
            0.83,
            &mut rng,
        )
        .unwrap();
        assert!((m.sparsity() - 0.83).abs() < 0.01, "{}", m.sparsity());
    }

    #[test]
    fn nm_blocks_keep_exactly_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = SparsityPattern::BlockNm { n: 2, m: 4 };
        let m =
            WeightMask::generate(&conv_layer(), p, p.implied_rate().unwrap(), &mut rng).unwrap();
        assert!(m.satisfies_nm(2, 4));
        assert!((m.sparsity() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn nm_rejects_conflicting_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let err = WeightMask::generate(
            &conv_layer(),
            SparsityPattern::BlockNm { n: 2, m: 4 },
            0.9,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MaskGenerationError::RateConflictsWithNm { .. }
        ));
    }

    #[test]
    fn channel_mask_prunes_whole_filters() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = linear_layer();
        let m = WeightMask::generate(&layer, SparsityPattern::ChannelWise, 0.3, &mut rng).unwrap();
        let occ = m.channel_occupancy(256);
        let pruned = occ.iter().filter(|&&o| o == 0).count();
        let full = occ.iter().filter(|&&o| o == 256).count();
        assert_eq!(pruned + full, 100, "mixed channels found");
        assert_eq!(pruned, 30);
    }

    #[test]
    fn channel_mask_never_prunes_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = WeightMask::generate(
            &linear_layer(),
            SparsityPattern::ChannelWise,
            0.999,
            &mut rng,
        )
        .unwrap();
        assert!(m.nnz() >= 256, "at least one channel survives");
    }

    #[test]
    fn rejects_rate_one() {
        let mut rng = StdRng::seed_from_u64(6);
        let err = WeightMask::generate(
            &conv_layer(),
            SparsityPattern::RandomPointwise,
            1.0,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, MaskGenerationError::InvalidRate { .. }));
    }

    #[test]
    fn rejects_weightless_layers() {
        let mut rng = StdRng::seed_from_u64(7);
        let pool = Layer::new(
            "p",
            LayerKind::Pool(dysta_models::Pool {
                kind: dysta_models::PoolKind::Max,
                channels: 64,
                kernel: 2,
                stride: 2,
                in_size: 28,
            }),
        );
        let err = WeightMask::generate(&pool, SparsityPattern::Dense, 0.0, &mut rng).unwrap_err();
        assert!(err.to_string().contains("no prunable weights"));
    }

    #[test]
    fn tail_bits_are_clear() {
        let m = WeightMask::dense(70);
        assert_eq!(m.nnz(), 70);
    }
}
