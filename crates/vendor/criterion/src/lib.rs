//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment for this repository has no access to a cargo
//! registry, so this crate provides a small wall-clock benchmark harness
//! with criterion's calling conventions: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`]. Timing methodology is
//! deliberately simple — a warm-up phase, then `sample_size` timed
//! batches whose median/min/max per-iteration times are printed — which
//! is enough for the relative comparisons the workspace's benches make.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets how many timed samples are collected.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let stats = run_bench(self, &mut f);
        report(&id.into(), &stats, None);
    }
}

/// Work-rate annotation for a group's benchmarks.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let stats = run_bench(self.criterion, &mut |b| f(b, input));
        report(&format!("{}/{id}", self.name), &stats, self.throughput);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_id: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function_id: function_id.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_id, self.parameter)
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    /// Iterations to run in the current timed batch.
    iters: u64,
    /// Measured duration of the batch, set by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Stats {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Quick-mode overrides from the `CRITERION_QUICK=1` environment
/// variable: caps warm-up/measurement budgets so CI can smoke-run every
/// bench for correctness and gross perf cliffs in seconds (the real
/// criterion exposes `--quick`/`--measurement-time`; the shim takes the
/// knob through the environment since harness=false binaries share
/// argv with libtest).
fn quick_mode(config: &Criterion) -> Criterion {
    if std::env::var("CRITERION_QUICK").map(|v| v == "1") != Ok(true) {
        return config.clone();
    }
    Criterion {
        measurement_time: config.measurement_time.min(Duration::from_millis(60)),
        warm_up_time: config.warm_up_time.min(Duration::from_millis(20)),
        sample_size: config.sample_size.min(3),
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Criterion, f: &mut F) -> Stats {
    let config = &quick_mode(config);
    // Warm-up: find an iteration count whose batch takes roughly one
    // sample's share of the measurement budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_end = Instant::now() + config.warm_up_time;
    let mut per_iter_ns = loop {
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        if Instant::now() >= warm_up_end {
            break per_iter.max(1.0);
        }
        b.iters = (b.iters * 2).min(1 << 30);
    };
    let budget_ns = config.measurement_time.as_nanos() as f64 / config.sample_size as f64;
    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        b.iters = ((budget_ns / per_iter_ns).round() as u64).clamp(1, 1 << 30);
        f(&mut b);
        per_iter_ns = (b.elapsed.as_nanos() as f64 / b.iters as f64).max(1e-3);
        samples.push(per_iter_ns);
    }
    samples.sort_by(f64::total_cmp);
    Stats {
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
    }
}

fn report(name: &str, stats: &Stats, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.2} Melem/s", n as f64 / stats.median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:.2} MiB/s",
                n as f64 / stats.median_ns * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "  {name}: median {} [min {}, max {}]{rate}",
        fmt_ns(stats.median_ns),
        fmt_ns(stats.min_ns),
        fmt_ns(stats.max_ns),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
