//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment for this repository has no access to a cargo
//! registry, so this crate provides the slice of serde's surface the
//! workspace uses: the [`Serialize`] / [`Deserialize`] traits (over a
//! self-describing JSON-shaped [`Value`] data model rather than serde's
//! visitor machinery), derive macros for plain structs and enums, and
//! impls for the primitive and collection types that appear in the trace
//! store. The companion `serde_json` shim persists [`Value`]s as real
//! JSON text, so on-disk artifacts remain ordinary JSON files.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing JSON-shaped value: the intermediate representation
/// all (de)serialization in this shim goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks the key.
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{key}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the value's variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: a malformed or mistyped [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    other => Err(DeError::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    other => Err(DeError::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

// --- container impls -----------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` round-trips through itself, so callers can hand-assemble
// JSON documents whose shape is not a fixed struct (heterogeneous
// trace-event arrays, for instance) and still use the ordinary
// `serde_json::to_string` / `from_str` entry points.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&0.25f64.to_value()).unwrap(), 0.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_value(&m.to_value()).unwrap(),
            m
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn value_roundtrips_through_itself() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            ("b".to_string(), Value::Array(vec![Value::Null])),
        ]);
        assert_eq!(v.to_value(), v);
        assert_eq!(Value::from_value(&v).unwrap(), v);
    }

    #[test]
    fn type_errors_are_reported() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected integer"));
        assert!(Value::Bool(true).field("k").is_err());
    }
}
