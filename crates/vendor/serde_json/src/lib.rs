//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Reads and writes ordinary JSON text over the serde shim's
//! [`serde::Value`] data model. Numbers use Rust's shortest-roundtrip
//! float formatting, so `save -> load` reproduces every `f64` bit-exactly
//! (a property the trace-store roundtrip tests rely on).

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("I/O failure: {e}"))
    }
}

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Returns an error if a float is non-finite (JSON cannot represent it).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Serializes `value` as JSON into a writer.
///
/// # Errors
///
/// Returns an error on I/O failure or non-finite floats.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Parses a value from a JSON reader.
///
/// # Errors
///
/// Returns an error on I/O failure, malformed JSON, or a shape mismatch.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

fn write_value(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // Shortest roundtrip representation; force a `.0` so the
            // parser can tell floats from integers.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("non-UTF8 number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let remaining = &self.bytes[self.pos..];
            let Some(&byte) = remaining.first() else {
                return Err(Error::new("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let text = std::str::from_utf8(remaining)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "malformed array at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "malformed object at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        let text = to_string(&vec![1u64, 2, 3]).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn float_roundtrips_bit_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 6.02e23, -0.0, 42.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn map_roundtrip_and_escapes() {
        let mut m = BTreeMap::new();
        m.insert("weird \"key\"\n".to_string(), "va\\lue".to_string());
        let text = to_string(&m).unwrap();
        let back: BTreeMap<String, String> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn whitespace_tolerated() {
        let back: Vec<u64> = from_str(" [ 1 , 2 ]\n").unwrap();
        assert_eq!(back, vec![1, 2]);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<Vec<u64>>("[1] trailing").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
