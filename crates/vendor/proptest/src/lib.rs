//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment for this repository has no access to a cargo
//! registry, so this crate reimplements the slice of proptest the
//! workspace's property tests use:
//!
//! * [`Strategy`] with ranges, [`prop::sample::select`],
//!   [`prop::collection::vec`], tuple strategies, and
//!   [`Strategy::prop_map`]
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`)
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Unlike real proptest there is no shrinking: inputs are drawn from a
//! deterministic per-case seed, and a failing case panics with the case
//! index so it can be replayed. For the invariant-style properties in
//! this workspace that trade-off is fine, and determinism means CI
//! failures always reproduce locally.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Strategy namespace mirroring proptest's module layout.
pub mod prop {
    /// Sampling from explicit value sets.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Picks uniformly from `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "cannot select from an empty list");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut StdRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Length specification for [`vec`]: an exact length or a range.
        pub struct SizeRange(std::ops::Range<usize>);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n..n + 1)
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange(r)
            }
        }

        /// Strategy generating vectors of another strategy's values.
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// Generates vectors with lengths drawn from `size`.
        ///
        /// # Panics
        ///
        /// Panics if `size` is empty.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            let SizeRange(size) = size.into();
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use super::{prop, proptest, ProptestConfig, Strategy};
    pub use super::{prop_assert, prop_assert_eq};
}

/// Deterministic per-case RNG: a fixed function of the case index, so a
/// reported failing case always replays.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0xD15A_0000_0000_0000 ^ u64::from(case).wrapping_mul(0x9E37_79B9))
}

/// Asserts a property-test condition (panics like `assert!`, reporting
/// the failing expression).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality in a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Declares property tests: each function runs `cases` times with inputs
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_case_rng = $crate::case_rng(case);
                    $(
                        let $arg = $crate::Strategy::generate(
                            &$strategy,
                            &mut proptest_case_rng,
                        );
                    )+
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{} failed in `{}`",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn select_only_yields_options(v in prop::sample::select(vec![1u8, 5, 9])) {
            prop_assert!([1u8, 5, 9].contains(&v));
        }

        #[test]
        fn vec_lengths_in_range(xs in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(
            p in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)
        ) {
            prop_assert!(p <= 18);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use super::Strategy;
        let mut a = super::case_rng(3);
        let mut b = super::case_rng(3);
        let strat = 0u64..1_000_000;
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
