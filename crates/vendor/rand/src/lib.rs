//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so the subset of rand 0.8's API that the workspace actually
//! uses is implemented here, dependency-free:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill`
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (not the same stream as upstream's ChaCha12 `StdRng`, but
//!   the workspace only relies on *determinism and statistical quality*,
//!   never on a specific stream)
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates)
//!
//! Everything is a pure function of the seed, which is the property the
//! simulator's reproducibility tests pin down.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from their standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded integer draw (Lemire-style widening
/// multiply with a rejection loop to remove modulo bias).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Zone is the largest multiple of `bound` that fits in u64.
    let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        lo + (hi - lo) * u
    }
}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Statistically strong (passes BigCrush in upstream evaluations of
    /// the algorithm) and, unlike upstream rand's `StdRng`, guaranteed
    /// stable across releases of this shim — trace reproducibility
    /// depends on it.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::bounded_u64(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(2.0f64..=3.0);
            assert!((2.0..=3.0).contains(&f));
        }
        // Every value of a small range appears.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(5u64..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
