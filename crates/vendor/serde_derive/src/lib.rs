//! Derive macros for the offline serde shim.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! item shapes this workspace contains — structs with named fields, and
//! enums whose variants are unit, single-field tuple, or struct-like —
//! by walking the raw token stream (the registry-less build environment
//! has no `syn`/`quote`). Field `#[serde(...)]` attributes are not
//! supported and the workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the annotated item.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    /// Tuple struct with this many unnamed fields (`Name(T, U)`).
    TupleStruct {
        name: String,
        fields: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with this many unnamed fields.
    Tuple(usize),
    /// Struct variant with these named fields.
    Struct(Vec<String>),
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, fields: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, fields } => {
            let items: String = (0..*fields)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), \
                                 ::serde::Value::Object(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Serialize impl must parse")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, fields: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, fields } => {
            let inits: String = (0..*fields)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Array(items) if items.len() == {fields} => \
                                 ::std::result::Result::Ok({name}({inits})),\n\
                             _ => ::std::result::Result::Err(::serde::DeError::new(\
                                 \"expected {fields}-element array for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{\n\
                                     ::serde::Value::Array(items) if items.len() == {n} => \
                                         Ok({name}::{vn}({inits})),\n\
                                     _ => Err(::serde::DeError::new(\
                                         \"expected {n}-element array for variant {vn}\")),\n\
                                 }},"
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         payload.field(\"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),"))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError::new(format!(\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     other => Err(::serde::DeError::new(format!(\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::new(format!(\
                                 \"expected {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Deserialize impl must parse")
}

// --- token-stream parsing ------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut tokens);
    let keyword = expect_ident(&mut tokens);
    let name = expect_ident(&mut tokens);
    // Reject generics: none of the workspace's serialized types have any,
    // and supporting them without syn isn't worth the complexity.
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types (on `{name}`)");
        }
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                assert_eq!(
                    keyword, "struct",
                    "unexpected parenthesised body on `{name}`"
                );
                return Item::TupleStruct {
                    name,
                    fields: count_tuple_fields(g.stream()),
                };
            }
            Some(_) => continue,
            None => panic!("missing braced body on `{name}`"),
        }
    };
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body.stream()),
        },
        other => panic!("cannot derive serde shim traits for `{other}` items"),
    }
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes_and_visibility(tokens: &mut TokenIter) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` / `pub(super)` scope group.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &mut TokenIter) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` named-field lists, returning the field names.
/// Commas inside angle brackets (`BTreeMap<String, T>`) are not
/// separators.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Skip the type, tracking angle-bracket depth.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip everything up to the next top-level comma (covers explicit
        // discriminants, which the workspace doesn't use but cost nothing
        // to tolerate).
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

/// Counts top-level comma-separated entries of a tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                saw_tokens_since_comma = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                saw_tokens_since_comma = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if saw_tokens_since_comma {
        count += 1;
    }
    count
}
