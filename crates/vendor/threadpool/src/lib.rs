//! Minimal rayon-core-style scoped thread pool. Local shim: this build
//! environment has no registry access, so the small slice of a
//! work-distribution API the workspace uses is provided here.
//!
//! Design (a hand-rolled subset of rayon-core's):
//!
//! * **Fixed workers.** [`ThreadPool::new(n)`](ThreadPool::new) spawns
//!   `n - 1` background workers over one shared FIFO injector; the
//!   calling thread is the `n`-th executor — it helps drain the queue
//!   while it waits inside [`ThreadPool::scope`], so `n` is the total
//!   number of threads doing work and `new(1)` degenerates to plain
//!   sequential execution on the caller (no background threads at all).
//! * **Scoped spawns.** [`Scope::spawn`] accepts non-`'static` closures
//!   borrowing from the caller's stack; [`ThreadPool::scope`] does not
//!   return until every spawned job has completed, which is what makes
//!   the borrow sound (the same contract as `std::thread::scope`).
//! * **Deterministic results.** [`ThreadPool::map`] writes each result
//!   into a slot addressed by submission index, so the output order is
//!   the input order regardless of worker count or interleaving —
//!   the property the cluster sweep's bit-exact reports ride on.
//! * **Panic propagation.** A panicking job never kills a worker; the
//!   first payload is captured and re-raised on the calling thread
//!   when its scope closes, like `std::thread::scope`. A panic in the
//!   scope closure itself is caught the same way: the scope still
//!   waits for every job spawned before the panic (they may borrow the
//!   unwinding stack), then re-raises the closure's payload.
//!
//! Scopes are single-producer: `Scope` is deliberately `!Sync`, so jobs
//! cannot capture the scope and spawn nested work from worker threads.
//! All spawning happens on the scope-owning thread, which is what lets
//! the caller-helps drain loop wait on the completion latch without a
//! lost-wakeup hazard once the spawning closure has returned.
//!
//! This is the only workspace crate allowed to contain `unsafe` for
//! concurrency: the single unsafe site erases a spawned job's `'scope`
//! lifetime to `'static` so it can sit in the shared queue, and the
//! scope latch restores the guarantee by blocking until the job is done.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work. Jobs are wrapped by [`Scope::spawn`] to catch
/// panics and notify the scope latch, so executing one never unwinds
/// into the worker loop.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared FIFO all executors (workers and helping callers) pull
/// from.
struct Injector {
    state: Mutex<InjectorState>,
    /// Signalled on every push and on shutdown.
    work: Condvar,
}

struct InjectorState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

impl Injector {
    fn push(&self, job: Job) {
        let mut state = self.state.lock().expect("injector lock");
        state.queue.push_back(job);
        drop(state);
        self.work.notify_one();
    }

    /// Pops without blocking (the caller-helps path).
    fn try_pop(&self) -> Option<Job> {
        self.state.lock().expect("injector lock").queue.pop_front()
    }
}

/// Completion tracking for one scope: a pending-job counter plus the
/// first captured panic payload.
#[derive(Default)]
struct Latch {
    state: Mutex<LatchState>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
}

#[derive(Default)]
struct LatchState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn add_job(&self) {
        self.state.lock().expect("latch lock").pending += 1;
    }

    /// Marks one job complete, keeping the first panic payload.
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock");
        state.pending -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        let done = state.pending == 0;
        drop(state);
        if done {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("latch lock").pending == 0
    }

    /// Blocks until every job spawned on this latch has completed.
    fn wait_done(&self) {
        let mut state = self.state.lock().expect("latch lock");
        while state.pending > 0 {
            state = self.done.wait(state).expect("latch wait");
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().expect("latch lock").panic.take()
    }
}

fn worker_loop(injector: &Injector) {
    loop {
        let job = {
            let mut state = injector.state.lock().expect("injector lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = injector.work.wait(state).expect("injector wait");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// A fixed-size scoped thread pool.
///
/// # Examples
///
/// ```
/// let pool = threadpool::ThreadPool::new(4);
/// let doubled = pool.map((0..100).collect::<Vec<u64>>(), |x| x * 2);
/// assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
/// ```
pub struct ThreadPool {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` total executors: `threads - 1`
    /// background workers plus the calling thread, which participates
    /// while it waits inside [`ThreadPool::scope`] / [`ThreadPool::map`]
    /// / [`ThreadPool::join`]. `new(0)` is clamped to `new(1)` (a pool
    /// with no background threads — everything runs on the caller).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let injector = Arc::new(Injector {
            state: Mutex::new(InjectorState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("dysta-pool-{i}"))
                    .spawn(move || worker_loop(&injector))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            injector,
            workers,
            threads,
        }
    }

    /// Total executor count (workers plus the helping caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which non-`'static` jobs can be
    /// spawned, then blocks — helping drain the queue — until every
    /// spawned job has completed. If any job panicked, the first payload
    /// is re-raised here after all jobs have finished. If `f` itself
    /// panics, the scope still waits for every job it already spawned
    /// (they may borrow the caller's stack, which is about to unwind)
    /// and then re-raises `f`'s payload — the `std::thread::scope`
    /// contract.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let latch = Arc::new(Latch::default());
        let scope = Scope {
            pool: self,
            latch: Arc::clone(&latch),
            _env: PhantomData,
            _not_sync: PhantomData,
        };
        // Catch a panic in the closure: already-spawned jobs borrow
        // `'scope` data on this stack, so unwinding past the drain
        // below while they can still run would be a use-after-free.
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Caller helps: execute queued jobs until this scope's latch
        // opens. Once `f` has returned (or unwound) no new jobs can
        // join this scope (spawning is confined to the scope-owning
        // thread), so an empty queue means the stragglers are running
        // on workers and waiting on the latch is free of lost wakeups.
        loop {
            if latch.is_done() {
                break;
            }
            match self.injector.try_pop() {
                Some(job) => job(),
                None => latch.wait_done(),
            }
        }
        let result = match result {
            Ok(result) => result,
            // The closure's own panic takes precedence over any job
            // panic (which is dropped with the latch).
            Err(payload) => panic::resume_unwind(payload),
        };
        if let Some(payload) = latch.take_panic() {
            panic::resume_unwind(payload);
        }
        result
    }

    /// Applies `f` to every item in parallel and returns the results in
    /// submission (= input) order, whatever the worker count or
    /// scheduling interleaving: each result is written into a slot
    /// addressed by its item's index.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|scope| {
            for (i, item) in items.into_iter().enumerate() {
                let slot = &slots[i];
                let f = &f;
                scope.spawn(move || {
                    *slot.lock().expect("result slot lock") = Some(f(item));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("every map job ran")
            })
            .collect()
    }

    /// Runs `a` on the pool and `b` on the calling thread, returning
    /// both results. (The rayon `join` shape; here `b` always runs
    /// inline, and the caller helps drain once `b` is done.)
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB,
        RA: Send,
    {
        let mut ra = None;
        let rb = self.scope(|scope| {
            let slot = &mut ra;
            scope.spawn(move || {
                *slot = Some(a());
            });
            b()
        });
        (ra.expect("join job ran"), rb)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.injector.state.lock().expect("injector lock").shutdown = true;
        self.injector.work.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a job (impossible for
            // spawned jobs, which are catch-wrapped) would surface
            // here; don't double-panic while unwinding.
            let _ = worker.join();
        }
    }
}

/// A spawn handle tied to one [`ThreadPool::scope`] call. Jobs spawned
/// here may borrow anything that outlives the scope (`'env`); the scope
/// call does not return until they all complete.
///
/// `Scope` is `!Sync` by design: all spawning happens on the
/// scope-owning thread (no nested spawns from workers).
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    latch: Arc<Latch>,
    /// Invariance over both lifetimes (the `std::thread::scope` trick):
    /// keeps borrowed data from being shortened behind the scope's back.
    _env: PhantomData<&'scope mut &'env ()>,
    _not_sync: PhantomData<*const ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queues `f` for execution on the pool. The closure may borrow
    /// from the environment (`'scope`); [`ThreadPool::scope`] blocks
    /// until it has run. A panic inside `f` is captured and re-raised
    /// when the scope closes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.add_job();
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            latch.complete(result.err());
        });
        // SAFETY: the job may borrow `'scope` data, but `scope()` does
        // not return — not even by unwinding; the scope closure runs
        // under catch_unwind and the drain/wait loop always executes —
        // before `latch` has counted this job complete, so every borrow
        // in `f` is live for as long as the job can run.
        // The erased box is never used after that point (it is consumed
        // exactly once by whichever executor pops it).
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.injector.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order_at_every_width() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.map(items.clone(), |x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn scope_jobs_borrow_disjoint_slots() {
        let pool = ThreadPool::new(4);
        let mut slots = vec![0usize; 64];
        pool.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i + 1);
            }
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = ThreadPool::new(3);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.scope(|s| {
                for _ in 0..17 {
                    s.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 170);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 6 * 7, || "inline");
        assert_eq!((a, b), (42, "inline"));
    }

    #[test]
    fn single_thread_pool_runs_jobs_in_submission_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..20 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_propagates_after_all_jobs_finish() {
        let pool = ThreadPool::new(4);
        let completed = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..32 {
                    let completed = &completed;
                    s.spawn(move || {
                        if i == 7 {
                            panic!("job 7 exploded");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-raise the job panic");
        assert_eq!(completed.load(Ordering::Relaxed), 31);
        // The pool survives a panicked scope.
        assert_eq!(pool.map(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn panicking_scope_closure_waits_for_spawned_jobs() {
        let pool = ThreadPool::new(4);
        let mut slots = vec![0usize; 32];
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    s.spawn(move || {
                        // Keep jobs in flight past the closure's panic so
                        // the wait below is load-bearing, not vacuous.
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        *slot = i + 1;
                    });
                }
                panic!("closure exploded after spawning");
            });
        }));
        // The closure's payload is re-raised, but only after every
        // spawned job — all borrowing this (unwinding) stack — has run.
        assert!(result.is_err(), "scope must re-raise the closure panic");
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i + 1));
        // The pool survives a panicked scope closure.
        assert_eq!(pool.map(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn join_waits_for_pool_side_when_inline_side_panics() {
        let pool = ThreadPool::new(2);
        let a_done = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                || {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    a_done.fetch_add(1, Ordering::SeqCst);
                },
                || panic!("inline side exploded"),
            )
        }));
        // `a` borrows join's stack slot for its result; the panic in `b`
        // must not unwind past that slot while `a` can still run.
        assert!(result.is_err(), "join must re-raise the inline panic");
        assert_eq!(a_done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn many_more_jobs_than_workers_all_complete() {
        let pool = ThreadPool::new(2);
        let total: u64 = pool.map((0..10_000u64).collect(), |x| x).iter().sum();
        assert_eq!(total, 10_000 * 9_999 / 2);
    }
}
