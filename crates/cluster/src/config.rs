//! Cluster topology configuration.

use dysta_core::{DystaConfig, Policy};
use dysta_models::ModelFamily;
use dysta_sim::EngineConfig;
use dysta_trace::SparseModelSpec;
use dysta_workload::Scenario;

/// The accelerator installed in a node — one of the paper's two targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// Eyeriss-V2: sparse CNN accelerator.
    EyerissV2,
    /// Sanger: sparse-attention accelerator.
    Sanger,
}

impl AcceleratorKind {
    /// The model family this accelerator was designed for (the paper's
    /// pairing: Eyeriss-V2 for CNNs, Sanger for AttNNs).
    pub fn native_family(self) -> ModelFamily {
        match self {
            AcceleratorKind::EyerissV2 => ModelFamily::Cnn,
            AcceleratorKind::Sanger => ModelFamily::AttNn,
        }
    }

    /// True when `family` runs at its profiled (native) speed here.
    pub fn serves(self, family: ModelFamily) -> bool {
        self.native_family() == family
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            AcceleratorKind::EyerissV2 => "eyeriss-v2",
            AcceleratorKind::Sanger => "sanger",
        }
    }
}

/// One node of the cluster: an accelerator plus the scheduler and engine
/// parameters it runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Installed accelerator.
    pub accelerator: AcceleratorKind,
    /// Node-local scheduling policy.
    pub policy: Policy,
    /// Dysta hyperparameters (used by Dysta-family policies).
    pub dysta: DystaConfig,
    /// Node-local engine parameters.
    pub engine: EngineConfig,
    /// Service-time multiplier paid by requests whose model family does
    /// not match the accelerator (weights and dataflow mapped onto
    /// hardware that cannot exploit their sparsity structure). Must be
    /// at least 1.
    pub mismatch_slowdown: f64,
}

impl NodeConfig {
    /// A node with default engine parameters and the workspace's default
    /// mismatch penalty.
    pub fn new(accelerator: AcceleratorKind, policy: Policy) -> Self {
        NodeConfig {
            accelerator,
            policy,
            dysta: DystaConfig::default(),
            engine: EngineConfig::default(),
            mismatch_slowdown: DEFAULT_MISMATCH_SLOWDOWN,
        }
    }

    /// The service-time scale a request of `family` pays on this node.
    pub fn scale_for(&self, family: ModelFamily) -> f64 {
        if self.accelerator.serves(family) {
            1.0
        } else {
            self.mismatch_slowdown
        }
    }
}

/// Default mismatch penalty: a sparse model on the wrong accelerator
/// falls back to dense-equivalent execution of its dynamic layers,
/// which the Phase-1 traces put at roughly 2–3× the native latency.
pub const DEFAULT_MISMATCH_SLOWDOWN: f64 = 2.5;

/// The mixed CNN+AttNN serving mix for heterogeneous pools, with load
/// balanced across the pool halves: a Sanger node sustains roughly 10×
/// an Eyeriss-V2 node's request rate (30 vs 3 samples/s at the paper's
/// operating points), so AttNN requests outnumber CNN ones 10:1. The
/// CNN mix weights sum to 4.0; scaling each AttNN weight by 40/3
/// brings the AttNN total to 40.0.
///
/// Shared by the `cluster_sweep` bench, the `cluster_scaling` example,
/// and the dispatch-ordering tests so they all exercise one traffic
/// definition.
pub fn balanced_mixed_serving_mix() -> Vec<(SparseModelSpec, f64)> {
    let mut mix = Scenario::MultiCnn.mix();
    mix.extend(
        Scenario::MultiAttNn
            .mix()
            .into_iter()
            .map(|(spec, w)| (spec, w * 40.0 / 3.0)),
    );
    mix
}

/// Work-stealing knobs for the serving front-end.
///
/// Every `period_ns` of simulated time, each *idle* (fully drained) node
/// may pull one queued, never-started request from the most-backlogged
/// peer. A steal only happens when the victim's LUT-estimated backlog
/// exceeds `min_imbalance` times the pool-mean backlog — on a balanced
/// pool nothing moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealConfig {
    /// Minimum victim-backlog over pool-mean-backlog ratio before an
    /// idle node steals (≥ 1; 1 steals at any imbalance).
    pub min_imbalance: f64,
    /// Sim-time between idle checks, in nanoseconds (> 0). Bounds how
    /// long a node can sit idle before it looks for work.
    pub period_ns: u64,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            min_imbalance: 1.5,
            period_ns: 10_000_000,
        }
    }
}

/// Request-migration knobs for the serving front-end.
///
/// Every `period_ns` of simulated time, nodes whose LUT-estimated
/// backlog exceeds `min_imbalance` times the pool mean get their queued,
/// never-started requests re-offered to the dispatcher; a request moves
/// when the dispatcher now routes it to a strictly less-backlogged node.
/// Each request migrates at most `max_per_request` times, so a request
/// can never ping-pong indefinitely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Minimum node-backlog over pool-mean-backlog ratio before a node's
    /// queue is rebalanced (≥ 1).
    pub min_imbalance: f64,
    /// Sim-time between rebalance passes, in nanoseconds (> 0).
    pub period_ns: u64,
    /// Hard cap on how many times one request may be re-dispatched.
    pub max_per_request: u32,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            min_imbalance: 1.5,
            period_ns: 50_000_000,
            max_per_request: 2,
        }
    }
}

/// The cluster-level serving front-end: admission batching plus the
/// optional work-stealing and request-migration mechanisms.
///
/// The default configuration (`admit_batch == 1`, no timer, stealing and
/// migration off) reproduces pure arrival-time dispatch — a 1-node pool
/// then matches [`dysta_sim::simulate`] bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendConfig {
    /// Admission batch size `k` (≥ 1): arrivals queue at the front-end
    /// and the whole queue is dispatched once `k` requests are waiting.
    pub admit_batch: usize,
    /// Admission timer `Δt` in nanoseconds: a non-empty admission queue
    /// is flushed `Δt` after its oldest request arrived even if the
    /// batch never fills. 0 disables the timer (a final partial batch
    /// then flushes at its newest arrival).
    pub admit_interval_ns: u64,
    /// Work stealing, when enabled.
    pub steal: Option<StealConfig>,
    /// Request migration, when enabled.
    pub migration: Option<MigrationConfig>,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            admit_batch: 1,
            admit_interval_ns: 0,
            steal: None,
            migration: None,
        }
    }
}

impl FrontendConfig {
    /// The full serving stack with default knobs: stealing and migration
    /// on, immediate admission.
    pub fn serving() -> Self {
        FrontendConfig {
            steal: Some(StealConfig::default()),
            migration: Some(MigrationConfig::default()),
            ..FrontendConfig::default()
        }
    }

    /// Validates the knob ranges (the cluster engine asserts this once
    /// per run).
    ///
    /// # Panics
    ///
    /// Panics on a zero batch, a zero steal/migration period, or an
    /// imbalance threshold below 1.
    pub fn validate(&self) {
        assert!(self.admit_batch >= 1, "admission batch must be at least 1");
        if let Some(s) = &self.steal {
            assert!(s.period_ns > 0, "steal period must be positive");
            assert!(
                s.min_imbalance >= 1.0 && s.min_imbalance.is_finite(),
                "steal imbalance threshold must be >= 1"
            );
        }
        if let Some(m) = &self.migration {
            assert!(m.period_ns > 0, "migration period must be positive");
            assert!(
                m.min_imbalance >= 1.0 && m.min_imbalance.is_finite(),
                "migration imbalance threshold must be >= 1"
            );
        }
    }
}

/// The whole cluster: an ordered list of nodes plus the serving
/// front-end configuration.
///
/// # Examples
///
/// ```
/// use dysta_cluster::{AcceleratorKind, ClusterConfig, FrontendConfig};
/// use dysta_core::Policy;
///
/// let pool = ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta);
/// assert_eq!(pool.len(), 4);
/// let het = ClusterConfig::heterogeneous(2, 2, Policy::Dysta)
///     .with_frontend(FrontendConfig::serving());
/// assert_eq!(het.len(), 4);
/// assert!(het.frontend.steal.is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Per-node configurations; node ids are indices into this list.
    pub nodes: Vec<NodeConfig>,
    /// Cluster-level serving front-end (admission batching, work
    /// stealing, request migration). Defaults to pure arrival-time
    /// dispatch with both mechanisms off.
    pub frontend: FrontendConfig,
}

impl ClusterConfig {
    /// A cluster of identical nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn homogeneous(n: usize, accelerator: AcceleratorKind, policy: Policy) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        ClusterConfig {
            nodes: vec![NodeConfig::new(accelerator, policy); n],
            frontend: FrontendConfig::default(),
        }
    }

    /// A mixed pool: `eyeriss` CNN nodes followed by `sanger` attention
    /// nodes, all running `policy`.
    ///
    /// # Panics
    ///
    /// Panics if both counts are zero.
    pub fn heterogeneous(eyeriss: usize, sanger: usize, policy: Policy) -> Self {
        assert!(eyeriss + sanger > 0, "cluster needs at least one node");
        let mut nodes = vec![NodeConfig::new(AcceleratorKind::EyerissV2, policy); eyeriss];
        nodes.extend(vec![
            NodeConfig::new(AcceleratorKind::Sanger, policy);
            sanger
        ]);
        ClusterConfig {
            nodes,
            frontend: FrontendConfig::default(),
        }
    }

    /// A cluster from explicit node configs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or any mismatch penalty is below 1.
    pub fn from_nodes(nodes: Vec<NodeConfig>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        assert!(
            nodes.iter().all(|n| n.mismatch_slowdown >= 1.0),
            "mismatch slowdown must be >= 1"
        );
        ClusterConfig {
            nodes,
            frontend: FrontendConfig::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never constructible).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Applies one engine configuration to every node.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        for node in &mut self.nodes {
            node.engine = engine;
        }
        self
    }

    /// Applies one mismatch penalty to every node.
    ///
    /// # Panics
    ///
    /// Panics if the penalty is below 1.
    pub fn with_mismatch_slowdown(mut self, slowdown: f64) -> Self {
        assert!(
            slowdown >= 1.0 && slowdown.is_finite(),
            "mismatch slowdown must be >= 1"
        );
        for node in &mut self.nodes {
            node.mismatch_slowdown = slowdown;
        }
        self
    }

    /// Replaces the serving front-end configuration.
    ///
    /// # Panics
    ///
    /// Panics if the front-end knobs are out of range
    /// ([`FrontendConfig::validate`]).
    pub fn with_frontend(mut self, frontend: FrontendConfig) -> Self {
        frontend.validate();
        self.frontend = frontend;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_matches_paper() {
        assert!(AcceleratorKind::EyerissV2.serves(ModelFamily::Cnn));
        assert!(!AcceleratorKind::EyerissV2.serves(ModelFamily::AttNn));
        assert!(AcceleratorKind::Sanger.serves(ModelFamily::AttNn));
    }

    #[test]
    fn mismatch_scale_applies_to_foreign_family_only() {
        let node = NodeConfig::new(AcceleratorKind::Sanger, Policy::Fcfs);
        assert_eq!(node.scale_for(ModelFamily::AttNn), 1.0);
        assert_eq!(node.scale_for(ModelFamily::Cnn), DEFAULT_MISMATCH_SLOWDOWN);
    }

    #[test]
    fn heterogeneous_layout_is_eyeriss_then_sanger() {
        let c = ClusterConfig::heterogeneous(2, 3, Policy::Sjf);
        assert_eq!(c.len(), 5);
        assert!(c.nodes[..2]
            .iter()
            .all(|n| n.accelerator == AcceleratorKind::EyerissV2));
        assert!(c.nodes[2..]
            .iter()
            .all(|n| n.accelerator == AcceleratorKind::Sanger));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        let _ = ClusterConfig::homogeneous(0, AcceleratorKind::EyerissV2, Policy::Fcfs);
    }

    #[test]
    fn default_frontend_is_immediate_dispatch() {
        let f = FrontendConfig::default();
        assert_eq!(f.admit_batch, 1);
        assert_eq!(f.admit_interval_ns, 0);
        assert!(f.steal.is_none() && f.migration.is_none());
        f.validate();
        FrontendConfig::serving().validate();
    }

    #[test]
    #[should_panic(expected = "admission batch must be at least 1")]
    fn zero_admission_batch_rejected() {
        let c = ClusterConfig::homogeneous(1, AcceleratorKind::EyerissV2, Policy::Fcfs);
        let _ = c.with_frontend(FrontendConfig {
            admit_batch: 0,
            ..FrontendConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "steal imbalance threshold must be >= 1")]
    fn sub_one_steal_threshold_rejected() {
        FrontendConfig {
            steal: Some(StealConfig {
                min_imbalance: 0.5,
                period_ns: 1,
            }),
            ..FrontendConfig::default()
        }
        .validate();
    }
}
