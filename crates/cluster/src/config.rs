//! Cluster topology configuration and the validating [`ClusterBuilder`].
//!
//! Every knob of the pool — node list, per-node capacity and mismatch
//! penalty, serving front-end, transfer cost model — is plain data on
//! [`ClusterConfig`]; range validation is centralized in
//! [`ClusterConfig::validate`], which [`ClusterBuilder::build`] and
//! [`crate::simulate_cluster`] both call, so a hand-mutated config can
//! never reach the engine unchecked.

use dysta_core::{DystaConfig, Policy};
use dysta_models::ModelFamily;
use dysta_sim::EngineConfig;
use dysta_trace::SparseModelSpec;
use dysta_workload::Scenario;

/// The accelerator installed in a node — one of the paper's two targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// Eyeriss-V2: sparse CNN accelerator.
    EyerissV2,
    /// Sanger: sparse-attention accelerator.
    Sanger,
}

impl AcceleratorKind {
    /// The model family this accelerator was designed for (the paper's
    /// pairing: Eyeriss-V2 for CNNs, Sanger for AttNNs).
    pub fn native_family(self) -> ModelFamily {
        match self {
            AcceleratorKind::EyerissV2 => ModelFamily::Cnn,
            AcceleratorKind::Sanger => ModelFamily::AttNn,
        }
    }

    /// True when `family` runs at its profiled (native) speed here.
    pub fn serves(self, family: ModelFamily) -> bool {
        self.native_family() == family
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            AcceleratorKind::EyerissV2 => "eyeriss-v2",
            AcceleratorKind::Sanger => "sanger",
        }
    }
}

/// One node of the cluster: an accelerator plus the scheduler and engine
/// parameters it runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Installed accelerator.
    pub accelerator: AcceleratorKind,
    /// Node-local scheduling policy.
    pub policy: Policy,
    /// Dysta hyperparameters (used by Dysta-family policies).
    pub dysta: DystaConfig,
    /// Node-local engine parameters.
    pub engine: EngineConfig,
    /// Service-time multiplier paid by requests whose model family does
    /// not match the accelerator (weights and dataflow mapped onto
    /// hardware that cannot exploit their sparsity structure). Must be
    /// at least 1.
    pub mismatch_slowdown: f64,
    /// Node speed factor in `(0, 1]` relative to the profiled baseline
    /// (DVFS state, binned silicon, an older accelerator revision): a
    /// `0.5` node executes every layer in twice its profiled latency.
    /// The capacity divides into the service-time scale, so the
    /// effective scale a request pays is `scale_for(family) / capacity`
    /// — always at least the mismatch scale. Traces are profiled at full
    /// speed, so capacities above 1 are rejected.
    pub capacity: f64,
}

impl NodeConfig {
    /// A full-speed node with default engine parameters and the
    /// workspace's default mismatch penalty.
    pub fn new(accelerator: AcceleratorKind, policy: Policy) -> Self {
        NodeConfig {
            accelerator,
            policy,
            dysta: DystaConfig::default(),
            engine: EngineConfig::default(),
            mismatch_slowdown: DEFAULT_MISMATCH_SLOWDOWN,
            capacity: 1.0,
        }
    }

    /// The family-mismatch component of the service-time scale (1 when
    /// the accelerator natively serves `family`).
    pub fn scale_for(&self, family: ModelFamily) -> f64 {
        if self.accelerator.serves(family) {
            1.0
        } else {
            self.mismatch_slowdown
        }
    }

    /// The full service-time scale a request of `family` pays on this
    /// node: the mismatch penalty divided by the node's capacity. At
    /// capacity 1 this is bit-identical to [`NodeConfig::scale_for`].
    pub fn effective_scale(&self, family: ModelFamily) -> f64 {
        effective_scale(
            self.accelerator.serves(family),
            self.mismatch_slowdown,
            self.capacity,
        )
    }

    /// Panics when any per-node knob is out of range.
    fn validate(&self, id: usize) {
        assert!(
            self.mismatch_slowdown >= 1.0 && self.mismatch_slowdown.is_finite(),
            "node {id}: mismatch slowdown must be >= 1"
        );
        assert!(
            self.capacity > 0.0 && self.capacity <= 1.0,
            "node {id}: capacity must be in (0, 1]"
        );
    }
}

/// Default mismatch penalty: a sparse model on the wrong accelerator
/// falls back to dense-equivalent execution of its dynamic layers,
/// which the Phase-1 traces put at roughly 2–3× the native latency.
pub const DEFAULT_MISMATCH_SLOWDOWN: f64 = 2.5;

/// The one definition of the service-time scale: the family-mismatch
/// penalty over the node capacity. [`NodeConfig::effective_scale`]
/// (what the engine charges) and [`crate::NodeView::service_scale`]
/// (what policies price with) both resolve through here, so the two
/// can never drift apart.
pub(crate) fn effective_scale(native: bool, mismatch_slowdown: f64, capacity: f64) -> f64 {
    let mismatch = if native { 1.0 } else { mismatch_slowdown };
    mismatch / capacity
}

/// The mixed CNN+AttNN serving mix for heterogeneous pools, with load
/// balanced across the pool halves: a Sanger node sustains roughly 10×
/// an Eyeriss-V2 node's request rate (30 vs 3 samples/s at the paper's
/// operating points), so AttNN requests outnumber CNN ones 10:1. The
/// CNN mix weights sum to 4.0; scaling each AttNN weight by 40/3
/// brings the AttNN total to 40.0.
///
/// Shared by the `cluster_sweep` bench, the `cluster_scaling` example,
/// and the dispatch-ordering tests so they all exercise one traffic
/// definition.
pub fn balanced_mixed_serving_mix() -> Vec<(SparseModelSpec, f64)> {
    let mut mix = Scenario::MultiCnn.mix();
    mix.extend(
        Scenario::MultiAttNn
            .mix()
            .into_iter()
            .map(|(spec, w)| (spec, w * 40.0 / 3.0)),
    );
    mix
}

/// The price of re-homing a queued request onto another node: the
/// weights and any staged activations have to be re-fetched across the
/// interconnect before the receiving accelerator can run it.
///
/// The model is `base_ns + compute_fraction × avg_isolated_latency`:
/// a flat per-move interconnect/setup cost plus a variable part that
/// tracks the request's LUT-estimated compute (weight volume correlates
/// with model compute across the zoo). The cost is charged on the
/// *receiving* node by [`dysta_sim::NodeEngine::accept_transfer`] — it
/// delays the node's clock and counts as busy time.
///
/// The default is [`TransferCostConfig::FREE`], which reproduces the
/// historical free-transfer behavior bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCostConfig {
    /// Flat per-move cost in nanoseconds (interconnect setup, descriptor
    /// rewrite).
    pub base_ns: u64,
    /// Variable part: fraction of the request's LUT-estimated isolated
    /// latency added on top of `base_ns`. Must be finite and `>= 0`.
    pub compute_fraction: f64,
}

impl TransferCostConfig {
    /// Free transfers — the historical behavior, and the default.
    pub const FREE: TransferCostConfig = TransferCostConfig {
        base_ns: 0,
        compute_fraction: 0.0,
    };

    /// The workspace's default *costed* model: 1 ms of flat interconnect
    /// cost plus 2% of the request's estimated compute (a 300 ms CNN
    /// request pays ~7 ms — noticeable against marginal moves, cheap
    /// against draining a deep queue).
    pub fn default_costed() -> Self {
        TransferCostConfig {
            base_ns: 1_000_000,
            compute_fraction: 0.02,
        }
    }

    /// True when every transfer is free (no accounting, bit-exact with
    /// the pre-cost engine).
    pub fn is_free(&self) -> bool {
        self.base_ns == 0 && self.compute_fraction == 0.0
    }

    /// The estimated cost of moving one request whose LUT-estimated
    /// isolated latency is `avg_isolated_ns`
    /// ([`dysta_core::ModelInfo::avg_latency_ns`]).
    pub fn estimate_ns(&self, avg_isolated_ns: f64) -> u64 {
        self.base_ns + dysta_core::round_ns(self.compute_fraction * avg_isolated_ns)
    }

    fn validate(&self) {
        assert!(
            self.compute_fraction >= 0.0 && self.compute_fraction.is_finite(),
            "transfer-cost compute fraction must be finite and >= 0"
        );
    }
}

impl Default for TransferCostConfig {
    fn default() -> Self {
        TransferCostConfig::FREE
    }
}

/// Work-stealing knobs for the serving front-end.
///
/// Every `period_ns` of simulated time, each *idle* (fully drained) node
/// may pull one queued, never-started request from a backlogged peer
/// (victim and candidate choice belong to the pluggable
/// [`crate::StealPolicy`]). A steal only happens when the victim's
/// LUT-estimated backlog exceeds `min_imbalance` times the pool-mean
/// backlog — on a balanced pool nothing moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealConfig {
    /// Minimum victim-backlog over pool-mean-backlog ratio before an
    /// idle node steals (≥ 1; 1 steals at any imbalance).
    pub min_imbalance: f64,
    /// Sim-time between idle checks, in nanoseconds (> 0). Bounds how
    /// long a node can sit idle before it looks for work.
    pub period_ns: u64,
}

impl StealConfig {
    /// Thresholds re-tuned for nonzero transfer costs: with every move
    /// paying a re-fetch, stealing waits for a deeper imbalance (2×
    /// pool mean instead of 1.5×) so marginal steals whose gain the
    /// fetch would eat never fire.
    pub fn costed() -> Self {
        StealConfig {
            min_imbalance: 2.0,
            ..StealConfig::default()
        }
    }
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            min_imbalance: 1.5,
            period_ns: 10_000_000,
        }
    }
}

/// Request-migration knobs for the serving front-end.
///
/// Every `period_ns` of simulated time, nodes whose LUT-estimated
/// backlog exceeds `min_imbalance` times the pool mean get their queued,
/// never-started requests re-offered to the dispatcher; whether a
/// proposed move is applied belongs to the pluggable
/// [`crate::MigrationPolicy`]. Each request migrates at most
/// `max_per_request` times, so a request can never ping-pong
/// indefinitely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Minimum node-backlog over pool-mean-backlog ratio before a node's
    /// queue is rebalanced (≥ 1).
    pub min_imbalance: f64,
    /// Sim-time between rebalance passes, in nanoseconds (> 0).
    pub period_ns: u64,
    /// Hard cap on how many times one request may be re-dispatched.
    pub max_per_request: u32,
}

impl MigrationConfig {
    /// Thresholds re-tuned for nonzero transfer costs: rebalance only
    /// clearly-behind nodes (2× pool mean) and allow each request one
    /// costed move instead of two — a second re-fetch almost never pays
    /// for itself.
    pub fn costed() -> Self {
        MigrationConfig {
            min_imbalance: 2.0,
            max_per_request: 1,
            ..MigrationConfig::default()
        }
    }
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            min_imbalance: 1.5,
            period_ns: 50_000_000,
            max_per_request: 2,
        }
    }
}

/// Admission-control knobs for the serving front-end — the numeric
/// side of the pluggable [`crate::AdmissionPolicy`] (the same split
/// [`StealConfig`] / [`crate::StealPolicy`] use): the policy decides
/// Admit / Reject / Degrade, this config parameterizes the thresholds
/// it decides with.
///
/// The defaults are inert under [`crate::AdmitAll`] (which never reads
/// them), so a default front-end stays bit-exact with the
/// admission-free engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Required deadline headroom for a full-class admission, as a
    /// fraction of the request's SLO: load-shedding policies degrade or
    /// reject a request whose best projected slack across the pool is
    /// below `min_slack_fraction × slo_ns`. Must be finite and `>= 0`
    /// (0 sheds only infeasible-everywhere requests).
    pub min_slack_fraction: f64,
    /// SLO relaxation applied to a degraded admission: the request
    /// enters the pool with `slo_ns × degrade_slo_multiplier`
    /// (saturating), and its completion is judged against the *relaxed*
    /// deadline node-side while [`crate::ClusterReport::goodput`] keeps
    /// judging it against the original. Must be finite and `>= 1`.
    pub degrade_slo_multiplier: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            min_slack_fraction: 0.25,
            degrade_slo_multiplier: 4.0,
        }
    }
}

impl AdmissionConfig {
    fn validate(&self) {
        assert!(
            self.min_slack_fraction >= 0.0 && self.min_slack_fraction.is_finite(),
            "admission slack fraction must be finite and >= 0"
        );
        assert!(
            self.degrade_slo_multiplier >= 1.0 && self.degrade_slo_multiplier.is_finite(),
            "admission degrade multiplier must be >= 1"
        );
    }
}

/// The cluster-level serving front-end: admission batching plus the
/// optional work-stealing and request-migration mechanisms.
///
/// The default configuration (`admit_batch == 1`, no timer, stealing and
/// migration off) reproduces pure arrival-time dispatch — a 1-node pool
/// then matches [`dysta_sim::simulate`] bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendConfig {
    /// Admission batch size `k` (≥ 1): arrivals queue at the front-end
    /// and the whole queue is dispatched once `k` requests are waiting.
    pub admit_batch: usize,
    /// Admission timer `Δt` in nanoseconds: a non-empty admission queue
    /// is flushed `Δt` after its oldest request arrived even if the
    /// batch never fills. 0 disables the timer (a final partial batch
    /// then flushes at its newest arrival).
    pub admit_interval_ns: u64,
    /// Admission-control thresholds, read by the pool's
    /// [`crate::AdmissionPolicy`] at batch-dispatch time (inert under
    /// the default [`crate::AdmitAll`]).
    pub admission: AdmissionConfig,
    /// Work stealing, when enabled.
    pub steal: Option<StealConfig>,
    /// Request migration, when enabled.
    pub migration: Option<MigrationConfig>,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            admit_batch: 1,
            admit_interval_ns: 0,
            admission: AdmissionConfig::default(),
            steal: None,
            migration: None,
        }
    }
}

impl FrontendConfig {
    /// The full serving stack with default knobs: stealing and migration
    /// on, immediate admission. Tuned for free transfers; combine with
    /// [`FrontendConfig::serving_costed`] when a transfer cost is set.
    pub fn serving() -> Self {
        FrontendConfig {
            steal: Some(StealConfig::default()),
            migration: Some(MigrationConfig::default()),
            ..FrontendConfig::default()
        }
    }

    /// The full serving stack with thresholds re-tuned for nonzero
    /// transfer costs ([`StealConfig::costed`],
    /// [`MigrationConfig::costed`]).
    pub fn serving_costed() -> Self {
        FrontendConfig {
            steal: Some(StealConfig::costed()),
            migration: Some(MigrationConfig::costed()),
            ..FrontendConfig::default()
        }
    }

    /// Validates the knob ranges (part of [`ClusterConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics on a zero batch, an out-of-range admission knob
    /// (negative slack fraction, degrade multiplier below 1), a zero
    /// steal/migration period, or an imbalance threshold below 1.
    pub fn validate(&self) {
        assert!(self.admit_batch >= 1, "admission batch must be at least 1");
        self.admission.validate();
        if let Some(s) = &self.steal {
            assert!(s.period_ns > 0, "steal period must be positive");
            assert!(
                s.min_imbalance >= 1.0 && s.min_imbalance.is_finite(),
                "steal imbalance threshold must be >= 1"
            );
        }
        if let Some(m) = &self.migration {
            assert!(m.period_ns > 0, "migration period must be positive");
            assert!(
                m.min_imbalance >= 1.0 && m.min_imbalance.is_finite(),
                "migration imbalance threshold must be >= 1"
            );
        }
    }
}

/// The whole cluster: an ordered list of nodes, the serving front-end,
/// and the transfer-cost model.
///
/// Construct simple pools with [`ClusterConfig::homogeneous`] /
/// [`ClusterConfig::heterogeneous`]; anything configured beyond the
/// defaults goes through the validating [`ClusterBuilder`] (the former
/// `with_*` mutators are gone — see the crate docs for the migration
/// map). Fields stay public for inspection; whatever route a config
/// takes, [`crate::simulate_cluster`] re-validates it once up front.
///
/// # Examples
///
/// ```
/// use dysta_cluster::{AcceleratorKind, ClusterBuilder, ClusterConfig, FrontendConfig};
/// use dysta_core::Policy;
///
/// let pool = ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta);
/// assert_eq!(pool.len(), 4);
/// let het = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
///     .frontend(FrontendConfig::serving())
///     .build();
/// assert_eq!(het.len(), 4);
/// assert!(het.frontend.steal.is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Per-node configurations; node ids are indices into this list.
    pub nodes: Vec<NodeConfig>,
    /// Cluster-level serving front-end (admission batching, work
    /// stealing, request migration). Defaults to pure arrival-time
    /// dispatch with both mechanisms off.
    pub frontend: FrontendConfig,
    /// The weight/activation re-fetch cost charged per steal or
    /// migration. Defaults to [`TransferCostConfig::FREE`].
    pub transfer_cost: TransferCostConfig,
    /// Deterministic fault injection and recovery behavior. Defaults to
    /// an empty schedule with salvage-and-redispatch enabled — inert
    /// until faults are actually scheduled or reneging is switched on.
    pub faults: crate::faults::FaultConfig,
    /// Worker threads for the sharded advance phase. `None` (the
    /// default) consults the `DYSTA_THREADS` environment variable and
    /// falls back to 1; `Some(1)` forces the sequential loop regardless
    /// of the environment. Whatever the count, reports are bit-exact
    /// with the sequential loop — see [`ClusterConfig::resolved_threads`]
    /// and the README's "Parallel execution" section.
    pub threads: Option<usize>,
}

impl ClusterConfig {
    /// A cluster of identical full-speed nodes with the default
    /// front-end and free transfers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn homogeneous(n: usize, accelerator: AcceleratorKind, policy: Policy) -> Self {
        ClusterBuilder::homogeneous(n, accelerator, policy).build()
    }

    /// A mixed pool: `eyeriss` CNN nodes followed by `sanger` attention
    /// nodes, all running `policy`, with the default front-end and free
    /// transfers.
    ///
    /// # Panics
    ///
    /// Panics if both counts are zero.
    pub fn heterogeneous(eyeriss: usize, sanger: usize, policy: Policy) -> Self {
        ClusterBuilder::heterogeneous(eyeriss, sanger, policy).build()
    }

    /// A cluster from explicit node configs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or any node knob is out of range.
    pub fn from_nodes(nodes: Vec<NodeConfig>) -> Self {
        ClusterBuilder::from_nodes(nodes).build()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never constructible through
    /// the builder).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Checks every range invariant of the pool in one place: node list
    /// non-empty, per-node mismatch/capacity in range, front-end knobs
    /// valid, transfer-cost model finite. [`ClusterBuilder::build`] and
    /// [`crate::simulate_cluster`] both call this, so a hand-assembled
    /// or field-mutated config cannot reach the engine unvalidated.
    ///
    /// # Panics
    ///
    /// Panics with a field-specific message on the first violation.
    pub fn validate(&self) {
        assert!(!self.nodes.is_empty(), "cluster needs at least one node");
        for (id, node) in self.nodes.iter().enumerate() {
            node.validate(id);
        }
        self.frontend.validate();
        self.transfer_cost.validate();
        if let Err(msg) = self.faults.validate(self.nodes.len()) {
            panic!("{msg}");
        }
        if let Some(n) = self.threads {
            assert!(
                (1..=MAX_THREADS).contains(&n),
                "thread count must be in 1..={MAX_THREADS}"
            );
        }
    }

    /// The worker-thread count the engine will actually use: the
    /// explicit [`ClusterConfig::threads`] knob when set, else the
    /// `DYSTA_THREADS` environment variable, else 1. Unparseable or
    /// out-of-range environment values fall back to 1 (the sequential
    /// loop) rather than panicking, so a stray variable can never make
    /// a run fail — only make it sequential.
    pub fn resolved_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n;
        }
        std::env::var("DYSTA_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|n| (1..=MAX_THREADS).contains(n))
            .unwrap_or(1)
    }
}

/// Upper bound on the explicit thread knob — far above any plausible
/// machine, just a guard against accidental huge values spawning
/// thousands of OS threads.
pub const MAX_THREADS: usize = 1024;

/// Validating builder for [`ClusterConfig`] — the one construction path
/// for anything beyond a plain default pool.
///
/// Setters only record values; every range check runs once in
/// [`ClusterBuilder::build`] (and again in [`crate::simulate_cluster`],
/// guarding configs assembled or mutated by hand).
///
/// # Examples
///
/// ```
/// use dysta_cluster::{AcceleratorKind, ClusterBuilder, FrontendConfig, TransferCostConfig};
/// use dysta_core::Policy;
///
/// let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
///     .node_capacity(1, 0.5) // one Eyeriss node at half clock
///     .frontend(FrontendConfig::serving_costed())
///     .transfer_cost(TransferCostConfig::default_costed())
///     .build();
/// assert_eq!(pool.nodes[1].capacity, 0.5);
/// assert!(!pool.transfer_cost.is_free());
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    nodes: Vec<NodeConfig>,
    frontend: FrontendConfig,
    transfer_cost: TransferCostConfig,
    faults: crate::faults::FaultConfig,
    threads: Option<usize>,
}

impl ClusterBuilder {
    /// Starts from `n` identical full-speed nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn homogeneous(n: usize, accelerator: AcceleratorKind, policy: Policy) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        ClusterBuilder::from_nodes(vec![NodeConfig::new(accelerator, policy); n])
    }

    /// Starts from `eyeriss` CNN nodes followed by `sanger` attention
    /// nodes, all running `policy`.
    ///
    /// # Panics
    ///
    /// Panics if both counts are zero.
    pub fn heterogeneous(eyeriss: usize, sanger: usize, policy: Policy) -> Self {
        assert!(eyeriss + sanger > 0, "cluster needs at least one node");
        let mut nodes = vec![NodeConfig::new(AcceleratorKind::EyerissV2, policy); eyeriss];
        nodes.extend(vec![
            NodeConfig::new(AcceleratorKind::Sanger, policy);
            sanger
        ]);
        ClusterBuilder::from_nodes(nodes)
    }

    /// Starts from explicit node configs.
    pub fn from_nodes(nodes: Vec<NodeConfig>) -> Self {
        ClusterBuilder {
            nodes,
            frontend: FrontendConfig::default(),
            transfer_cost: TransferCostConfig::FREE,
            faults: crate::faults::FaultConfig::default(),
            threads: None,
        }
    }

    /// Applies one engine configuration to every node.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        for node in &mut self.nodes {
            node.engine = engine;
        }
        self
    }

    /// Applies one mismatch penalty to every node.
    pub fn mismatch_slowdown(mut self, slowdown: f64) -> Self {
        for node in &mut self.nodes {
            node.mismatch_slowdown = slowdown;
        }
        self
    }

    /// Applies one capacity (speed factor in `(0, 1]`) to every node.
    pub fn capacity(mut self, capacity: f64) -> Self {
        for node in &mut self.nodes {
            node.capacity = capacity;
        }
        self
    }

    /// Sets one node's capacity (heterogeneous speeds / DVFS states).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_capacity(mut self, node: usize, capacity: f64) -> Self {
        self.nodes[node].capacity = capacity;
        self
    }

    /// Replaces the serving front-end configuration.
    pub fn frontend(mut self, frontend: FrontendConfig) -> Self {
        self.frontend = frontend;
        self
    }

    /// Replaces the transfer-cost model.
    pub fn transfer_cost(mut self, transfer_cost: TransferCostConfig) -> Self {
        self.transfer_cost = transfer_cost;
        self
    }

    /// Replaces the fault-injection/recovery configuration.
    pub fn faults(mut self, faults: crate::faults::FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Pins the worker-thread count for the sharded advance phase
    /// (overriding the `DYSTA_THREADS` environment variable). 1 forces
    /// the sequential loop; any count produces bit-exact reports.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Validates every knob and produces the config.
    ///
    /// # Panics
    ///
    /// Panics with a field-specific message on the first out-of-range
    /// knob ([`ClusterConfig::validate`]).
    pub fn build(self) -> ClusterConfig {
        let config = ClusterConfig {
            nodes: self.nodes,
            frontend: self.frontend,
            transfer_cost: self.transfer_cost,
            faults: self.faults,
            threads: self.threads,
        };
        config.validate();
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_matches_paper() {
        assert!(AcceleratorKind::EyerissV2.serves(ModelFamily::Cnn));
        assert!(!AcceleratorKind::EyerissV2.serves(ModelFamily::AttNn));
        assert!(AcceleratorKind::Sanger.serves(ModelFamily::AttNn));
    }

    #[test]
    fn mismatch_scale_applies_to_foreign_family_only() {
        let node = NodeConfig::new(AcceleratorKind::Sanger, Policy::Fcfs);
        assert_eq!(node.scale_for(ModelFamily::AttNn), 1.0);
        assert_eq!(node.scale_for(ModelFamily::Cnn), DEFAULT_MISMATCH_SLOWDOWN);
    }

    #[test]
    fn effective_scale_divides_by_capacity_and_is_exact_at_full_speed() {
        let mut node = NodeConfig::new(AcceleratorKind::EyerissV2, Policy::Fcfs);
        // Bit-exact with the mismatch-only scale at capacity 1.
        assert_eq!(
            node.effective_scale(ModelFamily::Cnn).to_bits(),
            node.scale_for(ModelFamily::Cnn).to_bits()
        );
        node.capacity = 0.5;
        assert_eq!(node.effective_scale(ModelFamily::Cnn), 2.0);
        assert_eq!(
            node.effective_scale(ModelFamily::AttNn),
            DEFAULT_MISMATCH_SLOWDOWN * 2.0
        );
    }

    #[test]
    fn heterogeneous_layout_is_eyeriss_then_sanger() {
        let c = ClusterConfig::heterogeneous(2, 3, Policy::Sjf);
        assert_eq!(c.len(), 5);
        assert!(c.nodes[..2]
            .iter()
            .all(|n| n.accelerator == AcceleratorKind::EyerissV2));
        assert!(c.nodes[2..]
            .iter()
            .all(|n| n.accelerator == AcceleratorKind::Sanger));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        let _ = ClusterConfig::homogeneous(0, AcceleratorKind::EyerissV2, Policy::Fcfs);
    }

    #[test]
    fn default_frontend_is_immediate_dispatch() {
        let f = FrontendConfig::default();
        assert_eq!(f.admit_batch, 1);
        assert_eq!(f.admit_interval_ns, 0);
        assert!(f.steal.is_none() && f.migration.is_none());
        f.validate();
        FrontendConfig::serving().validate();
        FrontendConfig::serving_costed().validate();
    }

    #[test]
    fn costed_presets_are_stricter_than_free_defaults() {
        assert!(StealConfig::costed().min_imbalance > StealConfig::default().min_imbalance);
        assert!(MigrationConfig::costed().min_imbalance > MigrationConfig::default().min_imbalance);
        assert!(
            MigrationConfig::costed().max_per_request < MigrationConfig::default().max_per_request
        );
    }

    #[test]
    fn transfer_cost_estimate_is_base_plus_compute_fraction() {
        assert!(TransferCostConfig::FREE.is_free());
        let costed = TransferCostConfig {
            base_ns: 500,
            compute_fraction: 0.1,
        };
        assert!(!costed.is_free());
        // avg isolated latency 4000 -> 500 + 400.
        assert_eq!(costed.estimate_ns(4_000.0), 900);
        assert_eq!(TransferCostConfig::FREE.estimate_ns(4_000.0), 0);
    }

    #[test]
    #[should_panic(expected = "admission batch must be at least 1")]
    fn zero_admission_batch_rejected() {
        let _ = ClusterBuilder::homogeneous(1, AcceleratorKind::EyerissV2, Policy::Fcfs)
            .frontend(FrontendConfig {
                admit_batch: 0,
                ..FrontendConfig::default()
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "admission degrade multiplier must be >= 1")]
    fn sub_one_degrade_multiplier_rejected() {
        FrontendConfig {
            admission: AdmissionConfig {
                degrade_slo_multiplier: 0.5,
                ..AdmissionConfig::default()
            },
            ..FrontendConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "admission slack fraction must be finite and >= 0")]
    fn negative_slack_fraction_rejected() {
        FrontendConfig {
            admission: AdmissionConfig {
                min_slack_fraction: -0.1,
                ..AdmissionConfig::default()
            },
            ..FrontendConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "steal imbalance threshold must be >= 1")]
    fn sub_one_steal_threshold_rejected() {
        FrontendConfig {
            steal: Some(StealConfig {
                min_imbalance: 0.5,
                period_ns: 1,
            }),
            ..FrontendConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "node 1: capacity must be in (0, 1]")]
    fn overclocked_capacity_rejected() {
        let _ = ClusterBuilder::homogeneous(2, AcceleratorKind::EyerissV2, Policy::Fcfs)
            .node_capacity(1, 1.5)
            .build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fault_schedule_against_missing_node_rejected() {
        let _ = ClusterBuilder::homogeneous(2, AcceleratorKind::EyerissV2, Policy::Fcfs)
            .faults(crate::faults::FaultConfig {
                schedule: crate::faults::FaultSchedule::new().crash(5, 1_000),
                ..crate::faults::FaultConfig::default()
            })
            .build();
    }

    #[test]
    fn threads_knob_overrides_environment_and_defaults_to_one() {
        let default = ClusterConfig::homogeneous(1, AcceleratorKind::Sanger, Policy::Fcfs);
        assert_eq!(default.threads, None);
        // Explicit knob wins regardless of DYSTA_THREADS (not set under
        // `cargo test`, so None also resolves to 1 here).
        let pinned = ClusterBuilder::homogeneous(1, AcceleratorKind::Sanger, Policy::Fcfs)
            .threads(4)
            .build();
        assert_eq!(pinned.resolved_threads(), 4);
    }

    #[test]
    #[should_panic(expected = "thread count must be in 1..=")]
    fn zero_thread_count_rejected() {
        let _ = ClusterBuilder::homogeneous(1, AcceleratorKind::Sanger, Policy::Fcfs)
            .threads(0)
            .build();
    }

    #[test]
    #[should_panic(expected = "mismatch slowdown must be >= 1")]
    fn hand_assembled_config_is_still_validated() {
        // The builder is the normal path, but a field-mutated config must
        // not sneak past: validate() is the single choke point.
        let mut config = ClusterConfig::homogeneous(2, AcceleratorKind::EyerissV2, Policy::Fcfs);
        config.nodes[0].mismatch_slowdown = 0.3;
        config.validate();
    }
}
