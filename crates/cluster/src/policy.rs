//! The cluster-control policy family: steal-victim choice and
//! migration acceptance as pluggable policies, bundled with the
//! [`Dispatcher`] into one [`ClusterPolicy`].
//!
//! PR 3 hard-coded steal and migration decisions inside the cluster
//! event loop; this module lifts them behind traits sharing the
//! [`DispatchContext`] the dispatcher already reads, so the engine only
//! *sequences* events (sync nodes → consult policy → apply transfer)
//! and every decision — routing, victim choice, acceptance — is
//! swappable and testable in isolation. The default implementations
//! ([`BacklogGainSteal`], [`BacklogThresholdMigration`]) reproduce the
//! PR 3 behavior bit-exactly under free transfers, and generalize it by
//! charging the pool's [`crate::TransferCostConfig`] against every
//! prospective move.

use dysta_workload::Request;

use crate::dispatch::{DispatchContext, Dispatcher};
use crate::{DispatchPolicy, MigrationConfig, StealConfig};

/// One stealable request on a victim node, pre-priced for a specific
/// thief: the engine enumerates these (every queued, never-started
/// request on every peer) and the [`StealPolicy`] ranks them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealCandidate {
    /// Node currently holding the request.
    pub victim: usize,
    /// Request id.
    pub task_id: u64,
    /// Request arrival time (ns).
    pub arrival_ns: u64,
    /// Absolute deadline (arrival + SLO, saturating).
    pub deadline_ns: u64,
    /// LUT-estimated isolated latency of the request (unscaled).
    pub est_ns: f64,
    /// Estimated service on the victim (est × the victim's stored
    /// per-task scale).
    pub on_victim_ns: f64,
    /// Estimated service on the thief (est × the thief's effective
    /// scale for the request's family).
    pub on_thief_ns: f64,
    /// Weight/activation re-fetch cost the thief would pay to take it.
    pub transfer_cost_ns: u64,
}

/// Chooses what an idle node steals.
pub trait StealPolicy {
    /// Stable lower-case policy name.
    fn name(&self) -> &str;

    /// Picks the candidate the idle `thief` should pull, as an index
    /// into `candidates`, or `None` to steal nothing this tick.
    /// `candidates` covers every queued, never-started request on every
    /// peer; implementations must be pure functions of their arguments
    /// (the engine may re-consult them at any tick).
    fn choose(
        &self,
        thief: usize,
        candidates: &[StealCandidate],
        ctx: &DispatchContext<'_>,
        cfg: &StealConfig,
    ) -> Option<usize>;
}

/// The default steal policy: pull the best request from the single
/// most-backlogged peer, provided the pool is imbalanced enough and the
/// move — including its transfer cost — finishes the request sooner
/// than the victim's whole backlog would.
///
/// Victim: the peer with the largest LUT-estimated backlog that holds
/// stealable work (smaller id on ties), gated by
/// [`StealConfig::min_imbalance`] over the pool mean. Candidate: the
/// request whose move frees the most victim time net of what the thief
/// pays (`on_victim − on_thief − transfer_cost`), requiring
/// `on_thief + transfer_cost < victim backlog` so stealing can never
/// extend the tail; ties prefer the bigger victim-side estimate, then
/// the smaller id. Under [`crate::TransferCostConfig::FREE`] this is
/// bit-exact with the PR 3 in-engine steal pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BacklogGainSteal;

impl BacklogGainSteal {
    /// Creates the default steal policy.
    pub fn new() -> Self {
        BacklogGainSteal
    }
}

impl StealPolicy for BacklogGainSteal {
    fn name(&self) -> &str {
        "backlog-gain"
    }

    fn choose(
        &self,
        thief: usize,
        candidates: &[StealCandidate],
        ctx: &DispatchContext<'_>,
        cfg: &StealConfig,
    ) -> Option<usize> {
        // A down node must not pull work onto itself (it is drained by
        // the crash salvage, so it would otherwise look like a perfect
        // thief).
        if !ctx.nodes[thief].health.accepts_work() {
            return None;
        }
        let mean = ctx.mean_lut_backlog_ns();
        if mean <= 0.0 {
            return None;
        }
        // Most-backlogged peer holding stealable work; smaller id on
        // ties.
        let victim = ctx
            .nodes
            .iter()
            .filter(|n| n.id != thief && candidates.iter().any(|c| c.victim == n.id))
            .max_by(|a, b| {
                a.lut_backlog_ns
                    .total_cmp(&b.lut_backlog_ns)
                    .then(b.id.cmp(&a.id))
            })?
            .id;
        let victim_backlog = ctx.nodes[victim].lut_backlog_ns;
        if victim_backlog < cfg.min_imbalance * mean {
            return None;
        }
        // Best candidate on that victim: max gain net of the transfer
        // cost (ties: bigger victim-side estimate, then smaller id).
        let mut best: Option<(f64, f64, u64, usize)> = None;
        for (i, c) in candidates.iter().enumerate() {
            if c.victim != victim {
                continue;
            }
            let landed = c.on_thief_ns + c.transfer_cost_ns as f64;
            if landed >= victim_backlog {
                continue;
            }
            let gain = c.on_victim_ns - landed;
            let better = match &best {
                None => true,
                Some((bg, bv, bid, _)) => match gain.total_cmp(bg) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => match c.on_victim_ns.total_cmp(bv) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => c.task_id < *bid,
                        std::cmp::Ordering::Less => false,
                    },
                    std::cmp::Ordering::Less => false,
                },
            };
            if better {
                best = Some((gain, c.on_victim_ns, c.task_id, i));
            }
        }
        best.map(|(_, _, _, i)| i)
    }
}

/// Decides which nodes the periodic rebalance pass drains and whether a
/// dispatcher-proposed move is applied.
pub trait MigrationPolicy {
    /// Stable lower-case policy name.
    fn name(&self) -> &str;

    /// True when `src`'s queue should be re-offered to the dispatcher
    /// under this snapshot. Consulted before every candidate (the
    /// snapshot refreshes after each applied move), so returning `false`
    /// stops draining a node the pass has already rebalanced enough.
    fn should_rebalance(
        &self,
        src: usize,
        ctx: &DispatchContext<'_>,
        cfg: &MigrationConfig,
    ) -> bool;

    /// True when moving `request` from `src` to the dispatcher-proposed
    /// `target` should be applied.
    fn accept(
        &self,
        request: &Request,
        src: usize,
        target: usize,
        ctx: &DispatchContext<'_>,
        cfg: &MigrationConfig,
    ) -> bool;
}

/// The default migration policy: rebalance nodes whose LUT-estimated
/// backlog exceeds [`MigrationConfig::min_imbalance`] times the pool
/// mean, and apply a move only when the target — after paying the
/// transfer cost — is still strictly less backlogged than the source.
/// Under [`crate::TransferCostConfig::FREE`] this is bit-exact with the
/// PR 3 in-engine migration pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BacklogThresholdMigration;

impl BacklogThresholdMigration {
    /// Creates the default migration policy.
    pub fn new() -> Self {
        BacklogThresholdMigration
    }
}

impl MigrationPolicy for BacklogThresholdMigration {
    fn name(&self) -> &str {
        "backlog-threshold"
    }

    fn should_rebalance(
        &self,
        src: usize,
        ctx: &DispatchContext<'_>,
        cfg: &MigrationConfig,
    ) -> bool {
        let mean = ctx.mean_lut_backlog_ns();
        mean > 0.0 && ctx.nodes[src].lut_backlog_ns > cfg.min_imbalance * mean
    }

    fn accept(
        &self,
        request: &Request,
        src: usize,
        target: usize,
        ctx: &DispatchContext<'_>,
        _cfg: &MigrationConfig,
    ) -> bool {
        if target == src || !ctx.nodes[target].health.accepts_work() {
            return false;
        }
        let cost = ctx.request_transfer_cost_ns(request) as f64;
        ctx.nodes[target].lut_backlog_ns + cost < ctx.nodes[src].lut_backlog_ns
    }
}

/// What the [`AdmissionPolicy`] decided for one request at
/// batch-dispatch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// Serve the request at its requested SLO class.
    Admit,
    /// Drop the request at the front-end door: it never enters any node
    /// engine, and no later steal or migration pass can resurrect it.
    Reject,
    /// Serve the request in a relaxed SLO class: it enters the pool
    /// with its SLO multiplied by
    /// [`crate::AdmissionConfig::degrade_slo_multiplier`], while
    /// [`crate::ClusterReport::goodput`] keeps judging its completion
    /// against the original deadline.
    Degrade,
}

/// Gates every request at batch-dispatch time — the fourth member of
/// the [`ClusterPolicy`] family.
///
/// Consulted when a request leaves the admission queue (after any
/// batching delay, so a deadline lost while waiting for the batch to
/// fill counts against it), against the same [`DispatchContext`]
/// snapshot the dispatcher routes with. Implementations must be pure
/// functions of their arguments.
pub trait AdmissionPolicy {
    /// Stable lower-case policy name.
    fn name(&self) -> &str;

    /// Decides whether `request` is served, shed, or degraded under
    /// this snapshot. `cfg` carries the pool's admission thresholds
    /// ([`crate::FrontendConfig::admission`]).
    fn decide(
        &self,
        request: &Request,
        ctx: &DispatchContext<'_>,
        cfg: &crate::AdmissionConfig,
    ) -> AdmissionDecision;
}

/// The default admission policy: serve everything — bit-exact with the
/// admission-free engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmitAll;

impl AdmitAll {
    /// Creates the default admission policy.
    pub fn new() -> Self {
        AdmitAll
    }
}

impl AdmissionPolicy for AdmitAll {
    fn name(&self) -> &str {
        "admit-all"
    }

    fn decide(
        &self,
        _request: &Request,
        _ctx: &DispatchContext<'_>,
        _cfg: &crate::AdmissionConfig,
    ) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
}

/// Rejects a request iff its deadline is already infeasible on *every*
/// node — the projected slack
/// ([`crate::EarliestDeadlineFirst::projected_slack_ns`], the same
/// estimate deadline-aware dispatch routes on) is negative across the
/// whole pool, so wherever the dispatcher would place it the SLO is
/// lost before a single layer runs. Serving such a request cannot
/// reduce the violation count; it can only steal capacity from
/// feasible requests. Everything feasible somewhere is admitted
/// unchanged.
///
/// Deadline-free requests (saturated SLO) always project positive
/// slack and are never rejected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InfeasibleEverywhere;

impl InfeasibleEverywhere {
    /// Creates the reject-doomed-work admission policy.
    pub fn new() -> Self {
        InfeasibleEverywhere
    }

    /// True when no *live* node in the snapshot can hold the request's
    /// deadline under the projected-slack estimate (a down node cannot
    /// save a deadline; with the whole pool down, everything is
    /// infeasible).
    pub fn infeasible_everywhere(request: &Request, ctx: &DispatchContext<'_>) -> bool {
        ctx.nodes
            .iter()
            .filter(|n| n.health.accepts_work())
            .all(|n| crate::EarliestDeadlineFirst::projected_slack_ns(request, n, ctx) < 0)
    }
}

impl AdmissionPolicy for InfeasibleEverywhere {
    fn name(&self) -> &str {
        "infeasible-everywhere"
    }

    fn decide(
        &self,
        request: &Request,
        ctx: &DispatchContext<'_>,
        _cfg: &crate::AdmissionConfig,
    ) -> AdmissionDecision {
        if InfeasibleEverywhere::infeasible_everywhere(request, ctx) {
            AdmissionDecision::Reject
        } else {
            AdmissionDecision::Admit
        }
    }
}

/// Load shedding with a configurable headroom threshold: requests whose
/// deadline is infeasible everywhere are rejected (as
/// [`InfeasibleEverywhere`]); requests that are feasible somewhere but
/// whose *best* projected slack across the pool is thinner than
/// [`crate::AdmissionConfig::min_slack_fraction`] of their SLO are
/// admitted in the degraded class (their deadline is unlikely to
/// survive estimation error, so they are re-classed rather than
/// allowed to count against the tight class); everything with real
/// headroom is admitted unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlackLoadShedding;

impl SlackLoadShedding {
    /// Creates the headroom-thresholded load-shedding policy.
    pub fn new() -> Self {
        SlackLoadShedding
    }
}

impl AdmissionPolicy for SlackLoadShedding {
    fn name(&self) -> &str {
        "slack-load-shed"
    }

    fn decide(
        &self,
        request: &Request,
        ctx: &DispatchContext<'_>,
        cfg: &crate::AdmissionConfig,
    ) -> AdmissionDecision {
        let Some(best) = ctx
            .nodes
            .iter()
            .filter(|n| n.health.accepts_work())
            .map(|n| crate::EarliestDeadlineFirst::projected_slack_ns(request, n, ctx))
            .max()
        else {
            // The whole pool is down: nothing can be served.
            return AdmissionDecision::Reject;
        };
        if best < 0 {
            return AdmissionDecision::Reject;
        }
        // A deadline-free request (saturated SLO, slack clamped at
        // i64::MAX) has infinite headroom by definition: admit it
        // outright. Without this guard a fraction above ~0.5 would
        // degrade it, because the clamped slack (~9.2e18) undershoots
        // the threshold computed from the unclamped u64::MAX SLO.
        if request.slo_ns == u64::MAX || best == i64::MAX {
            return AdmissionDecision::Admit;
        }
        // f64 comparison so a huge-but-finite SLO cannot overflow.
        if (best as f64) < cfg.min_slack_fraction * request.slo_ns as f64 {
            AdmissionDecision::Degrade
        } else {
            AdmissionDecision::Admit
        }
    }
}

/// The full cluster control surface: admission gating and request
/// routing plus the steal and migration sides, consulted by
/// [`crate::simulate_cluster_with`].
///
/// [`crate::simulate_cluster`] wraps a bare dispatcher in this bundle
/// with the default admission/steal/migration policies, which keeps
/// the four-argument call sites (and their behavior) unchanged.
pub struct ClusterPolicy {
    /// Gates each request at batch-dispatch time (default:
    /// [`AdmitAll`]).
    pub admission: Box<dyn AdmissionPolicy>,
    /// Routes each admitted (or re-offered) request to a node.
    pub dispatcher: Box<dyn Dispatcher>,
    /// Chooses what idle nodes steal.
    pub steal: Box<dyn StealPolicy>,
    /// Gates the periodic rebalance pass.
    pub migration: Box<dyn MigrationPolicy>,
}

impl ClusterPolicy {
    /// Bundles `dispatcher` with the default admission, steal, and
    /// migration policies.
    pub fn new(dispatcher: Box<dyn Dispatcher>) -> Self {
        ClusterPolicy {
            admission: Box::new(AdmitAll::new()),
            dispatcher,
            steal: Box::new(BacklogGainSteal::new()),
            migration: Box::new(BacklogThresholdMigration::new()),
        }
    }

    /// Convenience: the bundle for a shipped [`DispatchPolicy`].
    pub fn from_dispatch(policy: DispatchPolicy) -> Self {
        ClusterPolicy::new(policy.build())
    }

    /// Replaces the admission policy.
    pub fn with_admission(mut self, admission: Box<dyn AdmissionPolicy>) -> Self {
        self.admission = admission;
        self
    }

    /// Replaces the steal policy.
    pub fn with_steal(mut self, steal: Box<dyn StealPolicy>) -> Self {
        self.steal = steal;
        self
    }

    /// Replaces the migration policy.
    pub fn with_migration(mut self, migration: Box<dyn MigrationPolicy>) -> Self {
        self.migration = migration;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::NodeView;
    use crate::{AcceleratorKind, TransferCostConfig};
    use dysta_core::ModelInfoLut;

    fn view(id: usize, backlog: f64) -> NodeView {
        NodeView {
            id,
            accelerator: AcceleratorKind::EyerissV2,
            capacity: 1.0,
            mismatch_slowdown: 2.5,
            now_ns: 0,
            queue_len: 0,
            lut_backlog_ns: backlog,
            predicted_backlog_ns: backlog,
            earliest_deadline_ns: u64::MAX,
            total_slack_ns: 0.0,
            transfer_cost_ns: 0,
            busy_ns: 0,
            health: crate::NodeHealth::Up,
        }
    }

    fn candidate(victim: usize, task_id: u64, est: f64, cost: u64) -> StealCandidate {
        StealCandidate {
            victim,
            task_id,
            arrival_ns: 0,
            deadline_ns: u64::MAX,
            est_ns: est,
            on_victim_ns: est,
            on_thief_ns: est,
            transfer_cost_ns: cost,
        }
    }

    #[test]
    fn steal_targets_most_backlogged_victim_and_respects_threshold() {
        let lut = ModelInfoLut::default();
        let views = [view(0, 0.0), view(1, 40.0), view(2, 100.0)];
        let ctx = DispatchContext {
            now_ns: 0,
            nodes: &views,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        let candidates = [candidate(1, 10, 5.0, 0), candidate(2, 20, 5.0, 0)];
        let policy = BacklogGainSteal::new();
        let cfg = StealConfig::default();
        // Node 2 is the most backlogged: its candidate wins.
        let pick = policy.choose(0, &candidates, &ctx, &cfg).unwrap();
        assert_eq!(candidates[pick].task_id, 20);
        // A tight threshold (victim must exceed 3x the mean ~46.7)
        // suppresses the steal entirely.
        let strict = StealConfig {
            min_imbalance: 3.0,
            ..cfg
        };
        assert_eq!(policy.choose(0, &candidates, &ctx, &strict), None);
    }

    #[test]
    fn transfer_cost_disqualifies_marginal_steals() {
        let lut = ModelInfoLut::default();
        let views = [view(0, 0.0), view(1, 100.0)];
        let ctx = DispatchContext {
            now_ns: 0,
            nodes: &views,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        let cfg = StealConfig {
            min_imbalance: 1.0,
            ..StealConfig::default()
        };
        let policy = BacklogGainSteal::new();
        // Free: on_thief (60) < victim backlog (100) qualifies.
        let free = [candidate(1, 1, 60.0, 0)];
        assert!(policy.choose(0, &free, &ctx, &cfg).is_some());
        // Costed: 60 + 50 >= 100 — the move would outlast the victim's
        // whole backlog, so it never fires.
        let costed = [candidate(1, 1, 60.0, 50)];
        assert_eq!(policy.choose(0, &costed, &ctx, &cfg), None);
    }

    fn admission_request(arrival_ns: u64, slo_ns: u64) -> dysta_workload::Request {
        use dysta_models::ModelId;
        use dysta_sparsity::SparsityPattern;
        use dysta_trace::SparseModelSpec;
        dysta_workload::Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::Dense, 0.0),
            sample_index: 0,
            arrival_ns,
            slo_ns,
        }
    }

    #[test]
    fn admit_all_admits_unconditionally() {
        let lut = ModelInfoLut::default();
        let views = [view(0, 1.0e18)];
        let ctx = DispatchContext {
            now_ns: 0,
            nodes: &views,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        let cfg = crate::AdmissionConfig::default();
        // Even a request whose deadline is hopeless everywhere.
        let doomed = admission_request(0, 1);
        assert_eq!(
            AdmitAll::new().decide(&doomed, &ctx, &cfg),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn infeasible_everywhere_rejects_only_when_no_node_can_hold_the_deadline() {
        // Empty LUT: the request's own estimate is 0, so per-node slack
        // is deadline − predicted backlog.
        let lut = ModelInfoLut::default();
        let cfg = crate::AdmissionConfig::default();
        let policy = InfeasibleEverywhere::new();
        let req = admission_request(0, 50);

        let hopeless = [view(0, 100.0), view(1, 200.0)];
        let ctx = DispatchContext {
            now_ns: 0,
            nodes: &hopeless,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        assert_eq!(policy.decide(&req, &ctx, &cfg), AdmissionDecision::Reject);

        // One feasible node is enough to admit.
        let one_open = [view(0, 100.0), view(1, 10.0)];
        let ctx_open = DispatchContext {
            nodes: &one_open,
            ..ctx
        };
        assert_eq!(
            policy.decide(&req, &ctx_open, &cfg),
            AdmissionDecision::Admit
        );

        // A deadline-free request is never rejected, no matter the load.
        let relaxed = admission_request(0, u64::MAX);
        assert_eq!(
            policy.decide(&relaxed, &ctx, &cfg),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn slack_load_shedding_degrades_thin_headroom_and_rejects_infeasible() {
        let lut = ModelInfoLut::default();
        let cfg = crate::AdmissionConfig {
            min_slack_fraction: 0.25,
            degrade_slo_multiplier: 4.0,
        };
        let policy = SlackLoadShedding::new();
        // SLO 1000 ⇒ full-class admission needs 250 ns of slack on the
        // best node.
        let req = admission_request(0, 1_000);
        let wide = [view(0, 100.0), view(1, 900.0)];
        let thin = [view(0, 800.0), view(1, 900.0)];
        let none = [view(0, 1_200.0), view(1, 1_500.0)];
        let base = DispatchContext {
            now_ns: 0,
            nodes: &wide,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        assert_eq!(policy.decide(&req, &base, &cfg), AdmissionDecision::Admit);
        let thin_ctx = DispatchContext {
            nodes: &thin,
            ..base
        };
        assert_eq!(
            policy.decide(&req, &thin_ctx, &cfg),
            AdmissionDecision::Degrade
        );
        let none_ctx = DispatchContext {
            nodes: &none,
            ..base
        };
        assert_eq!(
            policy.decide(&req, &none_ctx, &cfg),
            AdmissionDecision::Reject
        );
        // At fraction 0 the policy collapses to InfeasibleEverywhere.
        let strict0 = crate::AdmissionConfig {
            min_slack_fraction: 0.0,
            ..cfg
        };
        assert_eq!(
            policy.decide(&req, &thin_ctx, &strict0),
            AdmissionDecision::Admit
        );
        // A deadline-free request has infinite headroom: it is admitted
        // at full class even under a fraction high enough that the
        // clamped slack (i64::MAX) undershoots a threshold computed
        // from its unclamped u64::MAX SLO.
        let free = admission_request(0, u64::MAX);
        let greedy = crate::AdmissionConfig {
            min_slack_fraction: 0.9,
            ..cfg
        };
        assert_eq!(
            policy.decide(&free, &none_ctx, &greedy),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn health_gates_every_policy_kind() {
        let lut = ModelInfoLut::default();
        let cfg = crate::AdmissionConfig::default();
        let mcfg = MigrationConfig::default();
        let scfg = StealConfig {
            min_imbalance: 1.0,
            ..StealConfig::default()
        };
        // Node 1 is the obviously-best target for everything — but down.
        let mut views = [view(0, 100.0), view(1, 0.0)];
        views[1].health = crate::NodeHealth::Down { until_ns: None };
        let ctx = DispatchContext {
            now_ns: 0,
            nodes: &views,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        // Migration never lands on a down node.
        let req = admission_request(0, u64::MAX);
        assert!(!BacklogThresholdMigration::new().accept(&req, 0, 1, &ctx, &mcfg));
        // A down thief steals nothing.
        let candidates = [candidate(0, 1, 5.0, 0)];
        assert_eq!(
            BacklogGainSteal::new().choose(1, &candidates, &ctx, &scfg),
            None
        );
        // Admission ignores the down node's (empty) headroom: with only
        // the overcommitted node alive, a tight deadline is infeasible.
        let tight = admission_request(0, 50);
        assert!(InfeasibleEverywhere::infeasible_everywhere(&tight, &ctx));
        assert_eq!(
            SlackLoadShedding::new().decide(&tight, &ctx, &cfg),
            AdmissionDecision::Reject
        );
        // With the whole pool down everything is rejected, even
        // deadline-free work.
        let mut all_down = views;
        all_down[0].health = crate::NodeHealth::Down { until_ns: Some(9) };
        let ctx_down = DispatchContext {
            nodes: &all_down,
            ..ctx
        };
        assert!(InfeasibleEverywhere::infeasible_everywhere(&req, &ctx_down));
        assert_eq!(
            SlackLoadShedding::new().decide(&req, &ctx_down, &cfg),
            AdmissionDecision::Reject
        );
    }

    #[test]
    fn admission_policy_names_are_stable() {
        assert_eq!(AdmitAll::new().name(), "admit-all");
        assert_eq!(InfeasibleEverywhere::new().name(), "infeasible-everywhere");
        assert_eq!(SlackLoadShedding::new().name(), "slack-load-shed");
    }

    #[test]
    fn migration_accepts_only_strictly_cheaper_targets_net_of_cost() {
        use dysta_models::ModelId;
        use dysta_sparsity::SparsityPattern;
        use dysta_trace::SparseModelSpec;
        use dysta_workload::Request;

        let lut = ModelInfoLut::default();
        let views = [view(0, 100.0), view(1, 99.0)];
        let ctx = DispatchContext {
            now_ns: 0,
            nodes: &views,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        let req = Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::Dense, 0.0),
            sample_index: 0,
            arrival_ns: 0,
            slo_ns: u64::MAX,
        };
        let policy = BacklogThresholdMigration::new();
        let cfg = MigrationConfig::default();
        assert!(policy.accept(&req, 0, 1, &ctx, &cfg));
        assert!(!policy.accept(&req, 0, 0, &ctx, &cfg), "self-move");
        assert!(!policy.accept(&req, 1, 0, &ctx, &cfg), "uphill move");
        // With a base cost wider than the 1 ns gap the move stops
        // paying for itself. (An unprofiled spec prices at base only.)
        let costed = TransferCostConfig {
            base_ns: 10,
            compute_fraction: 0.0,
        };
        let ctx_costed = DispatchContext {
            transfer_cost: &costed,
            ..ctx
        };
        assert!(!policy.accept(&req, 0, 1, &ctx_costed, &cfg));
    }
}
